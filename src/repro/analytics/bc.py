"""Single-source betweenness centrality (Brandes) over CuSP partitions.

D-Galois ships a bc benchmark alongside the paper's four; this module
adds it to the reproduction.  Brandes' algorithm for one source s:

1. **Forward**: level-synchronous BFS computing, per vertex, its distance
   and its shortest-path count sigma(v) — sigma flows along tree edges
   (dist(d) = dist(s)+1) with add-reduction at the masters.
2. **Backward**: dependencies delta(v) = sum over successors w of
   sigma(v)/sigma(w) * (1 + delta(w)) accumulate level by level from the
   deepest level upward, again add-reduced at the masters.

Each level is one bulk-synchronous round with the usual mirror->master
reduce and master->mirror broadcast, all byte-counted.  The result is
exact (verified against a sequential Brandes in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.partition import DistributedGraph
from ..graph.csr import CSRGraph
from ..runtime.cluster import SimulatedCluster
from ..runtime.cost_model import STAMPEDE2, CostModel
from ..runtime.stats import TimeBreakdown
from .apps import INF, bfs_reference
from .engine import Engine
from .apps import BFS

__all__ = ["betweenness_centrality", "bc_reference", "BCResult"]

_VALUE_ENTRY_BYTES = 16


@dataclass
class BCResult:
    """Betweenness dependencies from one source."""

    source: int
    dependencies: np.ndarray  # delta(v) per vertex
    sigma: np.ndarray  # shortest-path counts
    distances: np.ndarray
    breakdown: TimeBreakdown

    @property
    def time(self) -> float:
        return self.breakdown.total


def _exchange_add(phase, dg, local_vals, masks, tag):
    """Add-reduce per-proxy values of flagged locals to their masters,
    then return the per-partition canonical arrays."""
    k = dg.num_partitions
    for q, part in enumerate(dg.partitions):
        flagged = np.flatnonzero(masks[q])
        mirrors = flagged[flagged >= part.num_masters]
        if mirrors.size == 0:
            continue
        gids = part.global_ids[mirrors]
        owners = dg.masters[gids]
        order = np.argsort(owners, kind="stable")
        mirrors, gids, owners = mirrors[order], gids[order], owners[order]
        cuts = np.searchsorted(owners, np.arange(k + 1))
        for m in range(k):
            sl = slice(cuts[m], cuts[m + 1])
            cnt = cuts[m + 1] - cuts[m]
            if cnt == 0:
                continue
            phase.comm.send(
                q, m, (gids[sl], local_vals[q][mirrors[sl]]), tag=tag,
                nbytes=int(cnt) * _VALUE_ENTRY_BYTES, logical_messages=1,
            )
    for m, part in enumerate(dg.partitions):
        for _, (gids, vals) in phase.comm.recv_all(m, tag):
            locals_ = part.to_local(gids)
            np.add.at(local_vals[m], locals_, vals)
            phase.add_compute(m, float(len(gids)))


def _full_mirror_book(dg):
    """Broadcast routing over *all* mirrors (not just read mirrors).

    Brandes reads values at destination proxies during the backward
    sweep, so every mirror needs the canonical value — unlike the
    vertex programs, where write-only mirrors never read it.
    """
    k = dg.num_partitions
    book = [dict() for _ in range(k)]
    for q, part in enumerate(dg.partitions):
        mirrors = np.arange(part.num_masters, part.num_proxies)
        if mirrors.size == 0:
            continue
        gids = part.global_ids[mirrors]
        owners = dg.masters[gids]
        order = np.argsort(owners, kind="stable")
        mirrors, gids, owners = mirrors[order], gids[order], owners[order]
        cuts = np.searchsorted(owners, np.arange(k + 1))
        for m in range(k):
            sl = slice(cuts[m], cuts[m + 1])
            if cuts[m + 1] > cuts[m]:
                m_local = dg.partitions[m].to_local(gids[sl])
                book[m][q] = (m_local, mirrors[sl])
    return book


def _broadcast(phase, book, dg, local_vals, master_mask, tag):
    """Ship flagged masters' canonical values along ``book``."""
    for m, part in enumerate(dg.partitions):
        changed = master_mask[m]
        for q, (m_local, q_local) in book[m].items():
            sel = changed[m_local]
            cnt = int(sel.sum())
            if cnt == 0:
                continue
            phase.comm.send(
                m, q, (q_local[sel], local_vals[m][m_local[sel]]), tag=tag,
                nbytes=cnt * _VALUE_ENTRY_BYTES, logical_messages=1,
            )
    for q, part in enumerate(dg.partitions):
        for _, (locals_, vals) in phase.comm.recv_all(q, tag):
            local_vals[q][locals_] = vals
            phase.add_compute(q, float(len(locals_)))


def betweenness_centrality(
    dg: DistributedGraph,
    source: int,
    cost_model: CostModel = STAMPEDE2,
) -> BCResult:
    """Brandes dependencies delta(v) for one source over ``dg``."""
    k = dg.num_partitions
    cluster = SimulatedCluster(k, cost_model=cost_model)
    engine = Engine(dg, cost_model=cost_model)
    book = _full_mirror_book(dg)

    # Distances via the engine's BFS (charged to this run's clock).
    bfs = engine.run(BFS(source))
    dist_global = bfs.values
    for p in bfs.breakdown.phases:
        cluster._phases.append(_ReplayPhase(p))
    max_level = int(dist_global[dist_global < INF].max(initial=0))

    # Per-partition local arrays.
    dist = [dist_global[p.global_ids] for p in dg.partitions]
    sigma = [np.zeros(p.num_proxies, dtype=np.float64) for p in dg.partitions]
    delta = [np.zeros(p.num_proxies, dtype=np.float64) for p in dg.partitions]
    for p in dg.partitions:
        local = p.to_local(np.array([source]))[0]
        if local >= 0:
            sigma[p.host][local] = 1.0

    # Forward sweep: sigma level by level.
    for level in range(max_level):
        with cluster.phase(f"forward {level}") as ph:
            contrib = [np.zeros(p.num_proxies) for p in dg.partitions]
            for q, part in enumerate(dg.partitions):
                frontier = np.flatnonzero(
                    (dist[q] == level) & (sigma[q] > 0)
                )
                total = _push(part, frontier, sigma[q], dist[q], level + 1,
                              contrib[q])
                ph.add_compute(q, total)
            masks = [c != 0 for c in contrib]
            _exchange_add(ph, dg, contrib, masks, tag=f"sig{level}")
            # Fold canonical contributions into sigma at masters, then
            # broadcast the new sigma to read mirrors.
            master_mask = []
            for m, part in enumerate(dg.partitions):
                mm = contrib[m] != 0
                mm[part.num_masters :] = False
                sigma[m][: part.num_masters] += contrib[m][: part.num_masters]
                master_mask.append(mm)
            _broadcast(ph, book, dg, sigma, master_mask, tag=f"sigb{level}")

    # Backward sweep: dependencies from the deepest level up.
    for level in range(max_level, 0, -1):
        with cluster.phase(f"backward {level}") as ph:
            contrib = [np.zeros(p.num_proxies) for p in dg.partitions]
            for q, part in enumerate(dg.partitions):
                # Edges (v, w) with dist v = level-1, dist w = level:
                # v accumulates sigma(v)/sigma(w) * (1 + delta(w)).
                frontier = np.flatnonzero(dist[q] == level - 1)
                total = _pull_dependencies(
                    part, frontier, sigma[q], delta[q], dist[q], level,
                    contrib[q],
                )
                ph.add_compute(q, total)
            masks = [c != 0 for c in contrib]
            _exchange_add(ph, dg, contrib, masks, tag=f"dep{level}")
            master_mask = []
            for m, part in enumerate(dg.partitions):
                mm = contrib[m] != 0
                mm[part.num_masters :] = False
                delta[m][: part.num_masters] += contrib[m][: part.num_masters]
                master_mask.append(mm)
            _broadcast(ph, book, dg, delta, master_mask, tag=f"depb{level}")

    # Gather canonical results.
    n = dg.num_global_nodes
    out_delta = np.zeros(n)
    out_sigma = np.zeros(n)
    for q, part in enumerate(dg.partitions):
        m = part.num_masters
        out_delta[part.master_global_ids] = delta[q][:m]
        out_sigma[part.master_global_ids] = sigma[q][:m]
    return BCResult(
        source=source,
        dependencies=out_delta,
        sigma=out_sigma,
        distances=dist_global,
        breakdown=cluster.breakdown(),
    )


class _ReplayPhase:
    """Adapter folding an already-evaluated PhaseReport into a cluster."""

    def __init__(self, report):
        self._report = report
        self.name = report.name

    def report(self, model):
        return self._report


def _edge_slices(part, frontier):
    indptr = part.local_graph.indptr
    starts = indptr[frontier]
    counts = (indptr[frontier + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return None
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    edge_idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
    src_rep = np.repeat(frontier, counts)
    return src_rep, part.local_graph.indices[edge_idx], total


def _push(part, frontier, sigma, dist, next_level, contrib):
    """sigma contributions along tree edges frontier -> next level."""
    if frontier.size == 0:
        return 0.0
    sl = _edge_slices(part, frontier)
    if sl is None:
        return float(frontier.size)
    src_rep, dst, total = sl
    tree = dist[dst] == next_level
    np.add.at(contrib, dst[tree], sigma[src_rep[tree]])
    return float(total)


def _pull_dependencies(part, frontier, sigma, delta, dist, level, contrib):
    """delta contributions pulled from successors at ``level``."""
    if frontier.size == 0:
        return 0.0
    sl = _edge_slices(part, frontier)
    if sl is None:
        return float(frontier.size)
    src_rep, dst, total = sl
    tree = dist[dst] == level
    src_t, dst_t = src_rep[tree], dst[tree]
    valid = sigma[dst_t] > 0
    src_t, dst_t = src_t[valid], dst_t[valid]
    np.add.at(
        contrib,
        src_t,
        sigma[src_t] / sigma[dst_t] * (1.0 + delta[dst_t]),
    )
    return float(total)


def bc_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Sequential Brandes dependencies for one source."""
    n = graph.num_nodes
    dist = bfs_reference(graph, source)
    sigma = np.zeros(n, dtype=np.float64)
    sigma[source] = 1.0
    max_level = int(dist[dist < INF].max(initial=0))
    src_all, dst_all = graph.edges()
    # Forward: level by level.
    for level in range(max_level):
        tree = (dist[src_all] == level) & (dist[dst_all] == level + 1)
        np.add.at(sigma, dst_all[tree], sigma[src_all[tree]])
    delta = np.zeros(n, dtype=np.float64)
    for level in range(max_level, 0, -1):
        tree = (dist[src_all] == level - 1) & (dist[dst_all] == level)
        s, d = src_all[tree], dst_all[tree]
        ok = sigma[d] > 0
        s, d = s[ok], d[ok]
        np.add.at(delta, s, sigma[s] / sigma[d] * (1.0 + delta[d]))
    return delta
