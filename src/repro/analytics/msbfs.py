"""Multi-source BFS (MS-BFS style) — batched reachability.

Runs up to 64 BFS traversals simultaneously by packing each source into
one bit of a 64-bit mask per vertex and propagating with bitwise OR.
This is the classic MS-BFS trick [Then et al., VLDB'14]; here it doubles
as a demonstration that the engine's reduction machinery is not limited
to min/add — the program supplies its own OR combine through the
``apply_reduce`` hook.

The result value of vertex ``v`` has bit ``i`` set iff ``v`` is reachable
from ``sources[i]``.
"""

from __future__ import annotations

import numpy as np

from .apps import _gather_edges
from .engine import Engine, VertexProgram

__all__ = ["MultiSourceBFS", "msbfs_reference"]


class MultiSourceBFS(VertexProgram):
    """Batched reachability from up to 64 sources via bitmask OR."""

    name = "msbfs"
    reduce_op = "or"  # informational; apply_reduce implements it

    def __init__(self, sources):
        sources = list(sources)
        if not 1 <= len(sources) <= 64:
            raise ValueError("between 1 and 64 sources required")
        if len(set(sources)) != len(sources):
            raise ValueError("sources must be distinct")
        self.sources = sources

    def init_values(self, dg, engine: Engine):
        values = []
        for part in dg.partitions:
            v = np.zeros(part.num_proxies, dtype=np.uint64)
            locals_ = part.to_local(np.asarray(self.sources, dtype=np.int64))
            for bit, local in enumerate(locals_):
                if local >= 0:
                    v[local] |= np.uint64(1) << np.uint64(bit)
            values.append(v)
        return values

    def initial_frontier(self, dg):
        fronts = []
        for part in dg.partitions:
            f = np.zeros(part.num_proxies, dtype=bool)
            locals_ = part.to_local(np.asarray(self.sources, dtype=np.int64))
            f[locals_[locals_ >= 0]] = True
            fronts.append(f)
        return fronts

    def compute(self, part, values, frontier):
        active = np.flatnonzero(frontier)
        if active.size == 0:
            return np.zeros(part.num_proxies, dtype=bool), 0.0
        src_rep, edge_idx, total = _gather_edges(part, active)
        if total == 0:
            return np.zeros(part.num_proxies, dtype=bool), float(active.size)
        dst = part.local_graph.indices[edge_idx]
        old = values.copy()
        np.bitwise_or.at(values, dst, values[src_rep])
        changed = values != old
        return changed, float(total + active.size)

    def apply_reduce(self, part, values, locals_, vals):
        before = values[locals_].copy()
        np.bitwise_or.at(values, locals_, vals)
        return values[locals_] != before


def msbfs_reference(graph, sources) -> np.ndarray:
    """Reachability bitmasks by running one frontier BFS per source."""
    n = graph.num_nodes
    out = np.zeros(n, dtype=np.uint64)
    for bit, source in enumerate(sources):
        visited = np.zeros(n, dtype=bool)
        visited[source] = True
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            starts = graph.indptr[frontier]
            counts = (graph.indptr[frontier + 1] - starts).astype(np.int64)
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.repeat(np.cumsum(counts) - counts, counts)
            edge_idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
            nxt = np.unique(graph.indices[edge_idx])
            nxt = nxt[~visited[nxt]]
            visited[nxt] = True
            frontier = nxt
        out[visited] |= np.uint64(1) << np.uint64(bit)
    return out
