"""The paper's four benchmark applications (§V-A) as vertex programs.

bfs, sssp, and cc are data-driven *min-propagation* programs sharing one
push-style kernel; pagerank is topology-driven with add-reduction of
partial sums.  Each app also ships a single-machine reference
implementation used by the tests (and by the experiments' sanity checks)
to confirm the distributed execution computes exactly the right answer on
every policy's partitions.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import LocalPartition
from ..graph.csr import CSRGraph
from .engine import Engine, VertexProgram

__all__ = [
    "BFS",
    "SSSP",
    "ConnectedComponents",
    "PageRank",
    "INF",
    "bfs_reference",
    "sssp_reference",
    "cc_reference",
    "pagerank_reference",
    "default_source",
    "APPS",
]

#: Sentinel distance for unreached vertices (fits in int64 with headroom).
INF = np.int64(2**62)


def default_source(graph: CSRGraph) -> int:
    """The paper's source choice: the node with the highest out-degree."""
    return int(np.argmax(graph.out_degree()))


def _gather_edges(part: LocalPartition, active: np.ndarray):
    """Edge arrays (src_local, edge_index) for the active locals' out-edges."""
    indptr = part.local_graph.indptr
    starts = indptr[active]
    counts = (indptr[active + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            0,
        )
    # Positions 0..total-1 mapped into each active node's edge range.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    edge_idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
    src_rep = np.repeat(active, counts)
    return src_rep, edge_idx, total


class _MinPropagation(VertexProgram):
    """Shared push-style kernel: relax out-edges of frontier vertices."""

    reduce_op = "min"
    dtype = np.int64

    def _candidate(self, part, values, src_rep, edge_idx) -> np.ndarray:
        """Tentative values pushed along the selected edges."""
        raise NotImplementedError

    def compute(self, part, values, frontier):
        active = np.flatnonzero(frontier)
        if active.size == 0:
            return np.zeros(part.num_proxies, dtype=bool), 0.0
        src_rep, edge_idx, total = _gather_edges(part, active)
        if total == 0:
            return np.zeros(part.num_proxies, dtype=bool), float(active.size)
        dst = part.local_graph.indices[edge_idx]
        cand = self._candidate(part, values, src_rep, edge_idx)
        old = values.copy()
        np.minimum.at(values, dst, cand)
        changed = values < old
        return changed, float(total + active.size)


class BFS(_MinPropagation):
    """Breadth-first search: hop distance from a source vertex."""

    name = "bfs"

    def __init__(self, source: int):
        self.source = source

    def init_values(self, dg, engine):
        values = []
        for part in dg.partitions:
            v = np.full(part.num_proxies, INF, dtype=np.int64)
            local = part.to_local(np.array([self.source]))[0]
            if local >= 0:
                v[local] = 0
            values.append(v)
        return values

    def initial_frontier(self, dg):
        fronts = []
        for part in dg.partitions:
            f = np.zeros(part.num_proxies, dtype=bool)
            local = part.to_local(np.array([self.source]))[0]
            if local >= 0:
                f[local] = True
            fronts.append(f)
        return fronts

    def _candidate(self, part, values, src_rep, edge_idx):
        return values[src_rep] + 1


class SSSP(_MinPropagation):
    """Single-source shortest paths (Bellman-Ford style relaxation).

    Requires the partitioned graph to carry integer edge weights.
    """

    name = "sssp"

    def __init__(self, source: int):
        self.source = source

    def init_values(self, dg, engine):
        for part in dg.partitions:
            if not part.local_graph.is_weighted:
                raise ValueError("sssp needs a weighted graph")
            if part.local_graph.num_edges and part.local_graph.edge_data.min() < 0:
                # Min-propagation diverges on negative cycles; refuse the
                # whole class rather than silently looping.
                raise ValueError("sssp requires non-negative edge weights")
        return BFS(self.source).init_values(dg, engine)

    def initial_frontier(self, dg):
        return BFS(self.source).initial_frontier(dg)

    def _candidate(self, part, values, src_rep, edge_idx):
        return values[src_rep] + part.local_graph.edge_data[edge_idx]


class ConnectedComponents(_MinPropagation):
    """Label propagation: every vertex converges to the minimum global id
    in its (weakly) connected component.

    As in the paper (§V-A), run it on the symmetric version of the graph
    so label exchange flows both ways.
    """

    name = "cc"

    def init_values(self, dg, engine):
        return [part.global_ids.astype(np.int64).copy() for part in dg.partitions]

    def initial_frontier(self, dg):
        return [np.ones(part.num_proxies, dtype=bool) for part in dg.partitions]

    def _candidate(self, part, values, src_rep, edge_idx):
        return values[src_rep]


class PageRank(VertexProgram):
    """Topology-driven pull-style PageRank with add-reduction.

    Every round each partition accumulates ``pr[u] / outdeg(u)`` over its
    local edges into per-proxy partial sums; partials reduce (add) to the
    masters, which form the new rank and broadcast it to read mirrors.
    Runs for at most ``max_rounds`` iterations or until every rank moves
    by less than ``tolerance`` (paper: 100 iterations, 1e-6).
    """

    name = "pagerank"
    reduce_op = "add"

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-6,
                 max_rounds: int = 100):
        if not (0 < damping < 1):
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self._partials: list[np.ndarray] = []
        self._degrees: list[np.ndarray] = []
        self._teleport = 0.0

    def init_values(self, dg, engine: Engine):
        n = dg.num_global_nodes
        self._teleport = (1.0 - self.damping) / n if n else 0.0
        self._degrees = engine.global_out_degrees()
        self._partials = [
            np.zeros(part.num_proxies, dtype=np.float64) for part in dg.partitions
        ]
        self._unconverged = [0] * dg.num_partitions
        init = 1.0 / n if n else 0.0
        return [
            np.full(part.num_proxies, init, dtype=np.float64)
            for part in dg.partitions
        ]

    def initial_frontier(self, dg):
        # Topology-driven: compute ignores the frontier and touches every
        # local edge each round.
        return [np.ones(part.num_proxies, dtype=bool) for part in dg.partitions]

    def compute(self, part, values, frontier):
        partial = self._partials[part.host]
        partial[:] = 0.0
        g = part.local_graph
        if g.num_edges:
            src = g.edge_sources()
            contrib = values[src] / self._degrees[part.host][src]
            np.add.at(partial, g.indices, contrib)
        changed = np.zeros(part.num_proxies, dtype=bool)
        in_deg = np.bincount(g.indices, minlength=part.num_proxies)
        changed[in_deg > 0] = True
        return changed, float(g.num_edges + part.num_proxies)

    def reduce_payload(self, part, values, mirror_locals):
        return self._partials[part.host][mirror_locals]

    def apply_reduce(self, part, values, locals_, vals):
        np.add.at(self._partials[part.host], locals_, vals)
        return np.ones(len(locals_), dtype=bool)

    def post_reduce(self, part, values, reduced_mask):
        m = part.num_masters
        new_rank = self._teleport + self.damping * self._partials[part.host][:m]
        delta = np.abs(new_rank - values[:m])
        # Broadcast any meaningful rank movement so mirror copies cannot
        # drift, but only count movement above the tolerance toward
        # convergence (otherwise sub-tolerance residue accumulating on
        # hubs goes stale on their mirrors).
        broadcast = delta > self.tolerance * 1e-3
        self._unconverged[part.host] = int((delta > self.tolerance).sum())
        values[:m] = new_rank
        out = np.zeros(len(values), dtype=bool)
        out[:m] = broadcast
        return out

    def convergence_contribution(self, part, values, canon_changed):
        return self._unconverged[part.host]


# ----------------------------------------------------------------------
# Single-machine references (test oracles)
# ----------------------------------------------------------------------

def bfs_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distances by level-synchronous BFS (INF where unreachable)."""
    n = graph.num_nodes
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        src_rep, edge_idx, total = _gather_edges_plain(graph, frontier)
        if total == 0:
            break
        dst = graph.indices[edge_idx]
        fresh = dst[dist[dst] == INF]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def _gather_edges_plain(graph: CSRGraph, active: np.ndarray):
    starts = graph.indptr[active]
    counts = (graph.indptr[active + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64), 0
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    edge_idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
    return np.repeat(active, counts), edge_idx, total


def sssp_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Shortest path distances via scipy's Dijkstra (INF where unreachable)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    n = graph.num_nodes
    if graph.edge_data is None:
        raise ValueError("sssp needs a weighted graph")
    # scipy treats explicit zeros as missing; our weights are >= 1.
    mat = csr_matrix(
        (graph.edge_data.astype(np.float64), graph.indices, graph.indptr),
        shape=(n, n),
    )
    dist = dijkstra(mat, directed=True, indices=source)
    out = np.full(n, INF, dtype=np.int64)
    reachable = np.isfinite(dist)
    out[reachable] = dist[reachable].astype(np.int64)
    return out


def cc_reference(graph: CSRGraph) -> np.ndarray:
    """Minimum node id per weakly-connected component."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = graph.num_nodes
    mat = csr_matrix(
        (np.ones(graph.num_edges, dtype=np.int8), graph.indices, graph.indptr),
        shape=(n, n),
    )
    _, labels = connected_components(mat, directed=True, connection="weak")
    # Normalize: label each component by its minimum node id.
    min_id = np.full(labels.max() + 1 if n else 0, n, dtype=np.int64)
    np.minimum.at(min_id, labels, np.arange(n, dtype=np.int64))
    return min_id[labels]


def pagerank_reference(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_rounds: int = 100,
) -> np.ndarray:
    """Power iteration with the same update rule as the distributed app.

    Matches the distributed semantics exactly: dangling mass is dropped
    (no redistribution), updates stop when every rank moves <= tolerance.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    pr = np.full(n, 1.0 / n, dtype=np.float64)
    deg = np.maximum(graph.out_degree(), 1)
    src, dst = graph.edges()
    teleport = (1.0 - damping) / n
    for _ in range(max_rounds):
        partial = np.zeros(n, dtype=np.float64)
        np.add.at(partial, dst, pr[src] / graph.out_degree()[src])
        new_pr = teleport + damping * partial
        if np.all(np.abs(new_pr - pr) <= tolerance):
            pr = new_pr
            break
        pr = new_pr
    return pr


APPS = {
    "bfs": BFS,
    "sssp": SSSP,
    "cc": ConnectedComponents,
    "pagerank": PageRank,
}
