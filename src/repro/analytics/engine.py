"""D-Galois-style bulk-synchronous analytics engine over CuSP partitions.

The paper evaluates partition quality by running bfs/cc/pagerank/sssp in
D-Galois [1] on each policy's partitions (§V-C).  This engine reproduces
D-Galois' execution and communication structure:

* every host executes a vertex program over its local partition each
  round (vectorized NumPy kernels);
* **reduce**: mirrors whose value changed ship it to their master, which
  combines contributions with the program's reduction (min / add);
* **broadcast**: masters whose canonical value changed ship it to every
  partition holding a *read* proxy of that vertex (one with local
  outgoing edges — a write-only mirror never needs the canonical value
  back, which is Gluon's invariant-driven optimization);
* a global reduction detects convergence.

The communication advantages the paper attributes to each policy emerge
from the partition structure itself, with no per-policy code: outgoing
edge-cuts (XtraPulp/EEC/FEC) have write-only mirrors, so the broadcast
direction vanishes; CVC's mirrors only live in the master's grid row or
column, so each host exchanges messages with O(sqrt k) partners; general
vertex-cuts (HVC/GVC) pay both directions against all partners.

All values are computed *for real* — the engine's outputs are verified
against single-machine references in the test suite — while every byte
and message is charged to the simulated cluster to produce the execution
times of Figures 5/6.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..core.partition import DistributedGraph
from ..runtime.cluster import SimulatedCluster
from ..runtime.cost_model import STAMPEDE2, CostModel
from ..runtime.stats import TimeBreakdown

__all__ = ["Engine", "AppResult", "VertexProgram"]

logger = logging.getLogger("repro.analytics")

_VALUE_ENTRY_BYTES = 12  # node id + 4-byte packed value on the wire


class VertexProgram:
    """Interface the analytics applications implement."""

    name: str = "abstract"
    #: "min" or "add" — how mirror contributions fold into the master.
    reduce_op: str = "min"
    #: Upper bound on rounds (None = run to convergence).
    max_rounds: int | None = None

    def init_values(self, dg: DistributedGraph, engine: "Engine") -> list[np.ndarray]:
        """Per-partition local value arrays (indexed by local id)."""
        raise NotImplementedError

    def initial_frontier(self, dg: DistributedGraph) -> list[np.ndarray]:
        """Per-partition boolean masks of initially-active locals."""
        raise NotImplementedError

    def compute(
        self,
        part,
        values: np.ndarray,
        frontier: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """One local round.

        Returns ``(changed_mask, work_units)`` where ``changed_mask``
        flags locals whose value this round's local work updated.
        """
        raise NotImplementedError

    def post_reduce(
        self, part, values: np.ndarray, reduced_mask: np.ndarray
    ) -> np.ndarray:
        """Master-side hook after mirror contributions are folded in.

        Returns the mask of master locals whose *canonical* value changed
        (defaults to the reduced mask itself; PageRank overrides it to
        turn accumulated partial sums into new ranks).
        """
        return reduced_mask

    def convergence_contribution(
        self, part, values: np.ndarray, canon_changed: np.ndarray
    ) -> int:
        """How many of this partition's masters are still unconverged.

        Defaults to the number of changed canonical values.  Programs may
        broadcast more eagerly than they converge (PageRank ships any
        meaningful rank movement but only counts movement above its
        tolerance), so the two signals are separate hooks.
        """
        return int(canon_changed.sum())

    def on_quiescence(self, dg: DistributedGraph, values, frontier) -> bool:
        """Called when a round produced no canonical changes.

        Return True to continue running (after mutating app state and
        re-seeding ``frontier`` masks in place — e.g. delta-stepping
        advancing to its next bucket); False (the default) ends the run.
        """
        return False

    def reduce_payload(self, part, values: np.ndarray, mirror_locals: np.ndarray):
        """Values a partition ships for its changed mirrors.

        Defaults to the mirrors' current values; PageRank overrides it to
        ship accumulated partial sums instead.
        """
        return values[mirror_locals]

    def apply_reduce(
        self, part, values: np.ndarray, locals_: np.ndarray, vals: np.ndarray
    ) -> np.ndarray:
        """Fold received contributions into the master partition.

        Returns a boolean array aligned with ``locals_`` flagging entries
        whose folded value actually changed.  The default implements the
        declared ``reduce_op``.
        """
        if self.reduce_op == "min":
            better = vals < values[locals_]
            np.minimum.at(values, locals_, vals)
            return better
        np.add.at(values, locals_, vals)
        return np.ones(len(locals_), dtype=bool)

    def extract(self, dg: DistributedGraph, values: list[np.ndarray]) -> np.ndarray:
        """Global result array gathered from the masters."""
        n = dg.num_global_nodes
        out = np.zeros(n, dtype=values[0].dtype if values else np.float64)
        for part, vals in zip(dg.partitions, values):
            m = part.num_masters
            out[part.master_global_ids] = vals[:m]
        return out


@dataclass
class AppResult:
    """Outcome of one distributed application run."""

    name: str
    values: np.ndarray  # global, canonical (master) values
    rounds: int
    breakdown: TimeBreakdown
    comm_bytes: float

    @property
    def time(self) -> float:
        return self.breakdown.total

    def per_round_comm_bytes(self) -> list[float]:
        """Bytes exchanged in each round (one breakdown phase per round)."""
        return [p.comm_bytes for p in self.breakdown.phases]


class Engine:
    """Executes vertex programs over a :class:`DistributedGraph`."""

    def __init__(self, dg: DistributedGraph, cost_model: CostModel = STAMPEDE2,
                 buffer_size: int = 8 << 20):
        self.dg = dg
        self.cost_model = cost_model
        self.buffer_size = buffer_size
        self._build_address_books()

    # ------------------------------------------------------------------
    # Gluon-style address books, built once per partitioned graph
    # ------------------------------------------------------------------
    def _build_address_books(self) -> None:
        dg = self.dg
        k = dg.num_partitions
        #: read proxies have local out-edges (their value is an input).
        self.read_mask: list[np.ndarray] = []
        for part in dg.partitions:
            self.read_mask.append(part.local_graph.out_degree() > 0)
        # Broadcast routing: for master partition m and holder q, the
        # aligned (master-local ids, holder-local ids) of read mirrors.
        self.bcast: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
            {} for _ in range(k)
        ]
        for q, part in enumerate(dg.partitions):
            mirrors_local = np.arange(part.num_masters, part.num_proxies)
            if mirrors_local.size == 0:
                continue
            readable = mirrors_local[self.read_mask[q][mirrors_local]]
            if readable.size == 0:
                continue
            gids = part.global_ids[readable]
            owners = dg.masters[gids]
            order = np.argsort(owners, kind="stable")
            readable, gids, owners = readable[order], gids[order], owners[order]
            cuts = np.searchsorted(owners, np.arange(k + 1))
            for m in range(k):
                sl = slice(cuts[m], cuts[m + 1])
                if cuts[m + 1] > cuts[m]:
                    m_local = dg.partitions[m].to_local(gids[sl])
                    self.bcast[m][q] = (m_local, readable[sl])

    # ------------------------------------------------------------------
    def run(self, app: VertexProgram, max_rounds: int | None = None) -> AppResult:
        """Run ``app`` to convergence (or its round limit)."""
        dg = self.dg
        k = dg.num_partitions
        cluster = SimulatedCluster(k, cost_model=self.cost_model,
                                   buffer_size=self.buffer_size)
        values = app.init_values(dg, self)
        frontier = app.initial_frontier(dg)
        limit = max_rounds if max_rounds is not None else app.max_rounds

        rounds = 0
        while True:
            with cluster.phase(f"round {rounds}") as phase:
                changed_masks = []
                for q, part in enumerate(dg.partitions):
                    changed, units = app.compute(part, values[q], frontier[q])
                    changed_masks.append(changed)
                    phase.add_compute(q, units)
                    frontier[q] = np.zeros_like(frontier[q])

                # Reduce: changed mirrors -> masters.
                reduced = [
                    np.zeros(p.num_proxies, dtype=bool) for p in dg.partitions
                ]
                for q, part in enumerate(dg.partitions):
                    ch = changed_masks[q]
                    mirrors = np.flatnonzero(ch[part.num_masters :]) + part.num_masters
                    if mirrors.size == 0:
                        continue
                    gids = part.global_ids[mirrors]
                    owners = dg.masters[gids]
                    order = np.argsort(owners, kind="stable")
                    mirrors, gids, owners = (
                        mirrors[order], gids[order], owners[order]
                    )
                    cuts = np.searchsorted(owners, np.arange(k + 1))
                    for m in range(k):
                        sl = slice(cuts[m], cuts[m + 1])
                        cnt = cuts[m + 1] - cuts[m]
                        if cnt == 0:
                            continue
                        payload = (
                            gids[sl],
                            app.reduce_payload(part, values[q], mirrors[sl]),
                        )
                        phase.comm.send(
                            q, m, payload, tag="reduce",
                            nbytes=int(cnt) * _VALUE_ENTRY_BYTES,
                            logical_messages=1,
                        )
                for m, part in enumerate(dg.partitions):
                    for src_host, (gids, vals) in phase.comm.recv_all(m, "reduce"):
                        locals_ = part.to_local(gids)
                        better = app.apply_reduce(part, values[m], locals_, vals)
                        reduced[m][locals_[better]] = True
                        phase.add_compute(m, float(len(gids)))
                    # Locally-changed masters count as reduced too.
                    local_master_changed = changed_masks[m].copy()
                    local_master_changed[part.num_masters :] = False
                    reduced[m] |= local_master_changed

                # Master-side post-processing (e.g. PageRank rank update).
                canon_changed = []
                for m, part in enumerate(dg.partitions):
                    cm = app.post_reduce(part, values[m], reduced[m])
                    cm = cm.copy()
                    cm[part.num_masters :] = False
                    canon_changed.append(cm)

                # Broadcast: changed masters -> read mirrors.
                total_changed = 0
                for m, part in enumerate(dg.partitions):
                    changed_local = canon_changed[m]
                    total_changed += app.convergence_contribution(
                        part, values[m], changed_local
                    )
                    # Masters whose value changed re-enter the frontier
                    # where they are readable.
                    frontier[m] |= changed_local & self.read_mask[m]
                    for q, (m_local, q_local) in self.bcast[m].items():
                        sel = changed_local[m_local]
                        cnt = int(sel.sum())
                        if cnt == 0:
                            continue
                        payload = (q_local[sel], values[m][m_local[sel]])
                        phase.comm.send(
                            m, q, payload, tag="bcast",
                            nbytes=cnt * _VALUE_ENTRY_BYTES,
                            logical_messages=1,
                        )
                for q, part in enumerate(dg.partitions):
                    for _, (locals_, vals) in phase.comm.recv_all(q, "bcast"):
                        values[q][locals_] = vals
                        frontier[q][locals_] = True
                        phase.add_compute(q, float(len(locals_)))

                # Convergence check (global reduction every round).
                phase.comm.allreduce_sum(
                    [np.array([total_changed], dtype=np.int64)] * k
                )
            rounds += 1
            if total_changed == 0 and not app.on_quiescence(dg, values, frontier):
                break
            if limit is not None and rounds >= limit:
                break

        breakdown = cluster.breakdown()
        logger.info(
            "%s converged in %d rounds, %.6f simulated seconds",
            app.name, rounds, breakdown.total,
        )
        return AppResult(
            name=app.name,
            values=app.extract(dg, values),
            rounds=rounds,
            breakdown=breakdown,
            comm_bytes=breakdown.comm_bytes(),
        )

    # ------------------------------------------------------------------
    # Shared setup collectives
    # ------------------------------------------------------------------
    def global_out_degrees(self) -> list[np.ndarray]:
        """Per-partition global out-degree of every local proxy.

        Computed the way a real system would: local degrees reduce (add)
        to masters, canonical degrees broadcast back.  Used by PageRank.
        This setup exchange is not charged to an application run.
        """
        dg = self.dg
        n = dg.num_global_nodes
        total = np.zeros(n, dtype=np.int64)
        for part in dg.partitions:
            np.add.at(total, part.global_ids, part.local_graph.out_degree())
        return [total[part.global_ids].copy() for part in dg.partitions]
