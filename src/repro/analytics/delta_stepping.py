"""Delta-stepping SSSP (bucketed label-correcting shortest paths).

Plain distributed Bellman-Ford (the :class:`~repro.analytics.apps.SSSP`
program) relaxes every improved vertex immediately, which can re-relax
the same vertex many times with successively better distances.
Delta-stepping [Meyer & Sanders] imposes priority order coarsely: only
vertices whose tentative distance falls inside the current bucket
``[b*delta, (b+1)*delta)`` relax their edges; once the bucket is
quiescent the algorithm advances to the next non-empty bucket.  Larger
``delta`` degrades toward Bellman-Ford, tiny ``delta`` toward Dijkstra.

This is D-Galois' workhorse sssp scheduling policy, implemented here on
the engine's new quiescence hook: the engine detects a globally quiet
round, the program advances its bucket and re-seeds the frontier, and
execution resumes — with all the usual reduce/broadcast accounting.
Final distances are exact (equal to Dijkstra) for any ``delta``.
"""

from __future__ import annotations

from .apps import INF, SSSP

__all__ = ["DeltaSteppingSSSP"]


class DeltaSteppingSSSP(SSSP):
    """Bucketed SSSP: relax only the current distance bucket."""

    name = "sssp-delta"

    def __init__(self, source: int, delta: int = 16):
        super().__init__(source)
        if delta < 1:
            raise ValueError("delta must be >= 1")
        self.delta = int(delta)
        self._bucket = 0

    def init_values(self, dg, engine):
        self._bucket = 0
        self.buckets_processed = 0
        return super().init_values(dg, engine)

    def _bucket_end(self) -> int:
        return (self._bucket + 1) * self.delta

    def compute(self, part, values, frontier):
        # Only frontier vertices inside the current bucket may relax.
        eligible = frontier & (values < self._bucket_end())
        return super().compute(part, values, eligible)

    def on_quiescence(self, dg, values, frontier) -> bool:
        """Advance to the next non-empty bucket; stop when none remain."""
        self.buckets_processed += 1
        # Smallest unsettled tentative distance at/above the bucket end.
        cutoff = self._bucket_end()
        best = None
        for part, vals in zip(dg.partitions, values):
            masters = vals[: part.num_masters]
            pending = masters[(masters >= cutoff) & (masters < INF)]
            if pending.size:
                lo = int(pending.min())
                best = lo if best is None else min(best, lo)
        if best is None:
            return False
        self._bucket = best // self.delta
        end = self._bucket_end()
        # Re-seed: every proxy inside the new bucket becomes frontier.
        for part, vals, mask in zip(dg.partitions, values, frontier):
            mask |= (vals >= best) & (vals < end)
        return True
