"""Distributed graph analytics: BSP engine and the paper's applications."""

from .apps import (
    APPS,
    BFS,
    ConnectedComponents,
    INF,
    PageRank,
    SSSP,
    bfs_reference,
    cc_reference,
    default_source,
    pagerank_reference,
    sssp_reference,
)
from .bc import BCResult, bc_reference, betweenness_centrality
from .bfs_variants import BFSDirectionOptimizing, BFSPull
from .delta_stepping import DeltaSteppingSSSP
from .diameter import DiameterResult, approximate_diameter
from .engine import AppResult, Engine, VertexProgram
from .kcore import KCore, kcore_reference
from .msbfs import MultiSourceBFS, msbfs_reference
from .triangles import TriangleResult, count_triangles, triangles_reference

__all__ = [
    "Engine",
    "VertexProgram",
    "KCore",
    "kcore_reference",
    "MultiSourceBFS",
    "msbfs_reference",
    "count_triangles",
    "triangles_reference",
    "TriangleResult",
    "AppResult",
    "betweenness_centrality",
    "bc_reference",
    "BCResult",
    "approximate_diameter",
    "DiameterResult",
    "APPS",
    "BFS",
    "BFSPull",
    "BFSDirectionOptimizing",
    "SSSP",
    "DeltaSteppingSSSP",
    "ConnectedComponents",
    "PageRank",
    "INF",
    "bfs_reference",
    "sssp_reference",
    "cc_reference",
    "pagerank_reference",
    "default_source",
]
