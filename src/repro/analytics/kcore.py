"""Distributed k-core: an extension application beyond the paper's four.

Computes which vertices belong to the k-core of the (symmetric) graph —
the maximal subgraph where every vertex has degree >= k — by distributed
peeling: a vertex whose alive-degree drops below k dies and pushes a
degree decrement along its edges; decrements add-reduce to masters, and
newly-dead vertices broadcast out, until a fixed point.

Exercises engine paths the paper's apps do not combine: add-reduction
with *state transitions* (alive -> dead exactly once) and frontier-driven
topology updates.
"""

from __future__ import annotations

import numpy as np

from .engine import Engine, VertexProgram

__all__ = ["KCore", "kcore_reference"]


class KCore(VertexProgram):
    """k-core membership via distributed peeling.

    Run on the *symmetrized* graph (degree means undirected degree).
    The result values are the remaining alive-degree per vertex; a vertex
    is in the k-core iff its value is >= k (see :meth:`in_core`).
    """

    name = "kcore"
    reduce_op = "add"

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._alive: list[np.ndarray] = []
        self._decrements: list[np.ndarray] = []

    def init_values(self, dg, engine: Engine):
        degrees = engine.global_out_degrees()
        self._alive = [np.ones(p.num_proxies, dtype=bool) for p in dg.partitions]
        self._decrements = [
            np.zeros(p.num_proxies, dtype=np.int64) for p in dg.partitions
        ]
        return [d.astype(np.int64).copy() for d in degrees]

    def initial_frontier(self, dg):
        # Every proxy starts active so round 0 can kill under-k vertices.
        return [np.ones(p.num_proxies, dtype=bool) for p in dg.partitions]

    def compute(self, part, values, frontier):
        alive = self._alive[part.host]
        dec = self._decrements[part.host]
        dec[:] = 0
        # Vertices that just dropped below k (and were still alive) die
        # now and push decrements along their local out-edges.
        dying = np.flatnonzero(frontier & alive & (values < self.k))
        changed = np.zeros(part.num_proxies, dtype=bool)
        units = float(dying.size)
        if dying.size:
            alive[dying] = False
            indptr = part.local_graph.indptr
            starts = indptr[dying]
            counts = (indptr[dying + 1] - starts).astype(np.int64)
            total = int(counts.sum())
            if total:
                offsets = np.repeat(np.cumsum(counts) - counts, counts)
                edge_idx = np.repeat(starts, counts) + (
                    np.arange(total) - offsets
                )
                dsts = part.local_graph.indices[edge_idx]
                np.add.at(dec, dsts, 1)
                changed[dec > 0] = True
                units += float(total)
        return changed, units + 1.0

    def reduce_payload(self, part, values, mirror_locals):
        return self._decrements[part.host][mirror_locals]

    def apply_reduce(self, part, values, locals_, vals):
        np.add.at(self._decrements[part.host], locals_, vals)
        return np.ones(len(locals_), dtype=bool)

    def post_reduce(self, part, values, reduced_mask):
        m = part.num_masters
        dec = self._decrements[part.host]
        touched = dec[:m] > 0
        values[:m] -= dec[:m]
        # A master's canonical value changed iff it lost degree; it only
        # matters downstream while it is (or just stopped being) alive.
        out = np.zeros(len(values), dtype=bool)
        out[:m] = touched
        return out

    def in_core(self, result_values: np.ndarray) -> np.ndarray:
        """Boolean k-core membership from the result values."""
        return result_values >= self.k


def kcore_reference(graph, k: int) -> np.ndarray:
    """Single-machine peeling; returns remaining degree per vertex.

    ``graph`` must be symmetric (every edge present in both directions).
    A vertex is in the k-core iff its returned value is >= k.
    """
    deg = graph.out_degree().astype(np.int64)
    alive = np.ones(graph.num_nodes, dtype=bool)
    src, dst = graph.edges()
    while True:
        dying = np.flatnonzero(alive & (deg < k))
        if dying.size == 0:
            break
        alive[dying] = False
        dying_mask = np.zeros(graph.num_nodes, dtype=bool)
        dying_mask[dying] = True
        affected = dst[dying_mask[src]]
        deg -= np.bincount(affected, minlength=graph.num_nodes)
    return deg
