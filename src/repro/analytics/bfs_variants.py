"""Pull-model and direction-optimizing BFS (Beamer-style).

The push BFS in :mod:`repro.analytics.apps` scans the frontier's
*out*-edges; when the frontier is a large fraction of the graph it is
cheaper to flip direction and let each unvisited vertex scan its *in*-edges
for a visited parent (the bottom-up step of Beamer's direction-optimizing
BFS, which D-Galois also implements).  Both variants run through the same
engine and produce bit-identical distances; what changes is the local
work profile:

* **push**: work ~ sum of frontier out-degrees;
* **pull**: work ~ sum of unvisited in-degrees, and a round can stop
  scanning a vertex at its first visited parent;
* **direction-optimizing**: per round, pick push while the frontier is
  small, switch to pull once it crosses ``alpha`` of the vertices, and
  switch back when it shrinks below ``beta``.

The pull step needs each partition's local in-adjacency; it is built
lazily by an in-memory transpose of the local CSR (free of
communication, like the construction phase's CSC output).
"""

from __future__ import annotations

import numpy as np

from .apps import BFS, INF
from .engine import Engine

__all__ = ["BFSPull", "BFSDirectionOptimizing"]


class BFSPull(BFS):
    """Bottom-up BFS: unvisited vertices scan local in-edges for parents."""

    name = "bfs-pull"

    def __init__(self, source: int):
        super().__init__(source)
        self._csc_cache: dict[int, object] = {}
        self._level: int = 0

    def initial_frontier(self, dg):
        # Pull compute is driven by the level counter, not the frontier;
        # mark everything active so every partition participates each
        # round until convergence.
        self._level = 0
        self._csc_cache = {}
        return [np.ones(p.num_proxies, dtype=bool) for p in dg.partitions]

    def _local_csc(self, part):
        csc = self._csc_cache.get(part.host)
        if csc is None:
            csc = part.local_csc or part.local_graph.transpose()
            self._csc_cache[part.host] = csc
        return csc

    def compute(self, part, values, frontier):
        csc = self._local_csc(part)
        unvisited = np.flatnonzero(values == INF)
        changed = np.zeros(part.num_proxies, dtype=bool)
        if unvisited.size == 0:
            return changed, 1.0
        indptr = csc.indptr
        starts = indptr[unvisited]
        counts = (indptr[unvisited + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return changed, float(unvisited.size)
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        edge_idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
        parents = csc.indices[edge_idx]
        dst_rep = np.repeat(unvisited, counts)
        # A vertex joins level L+1 if any in-parent sits at level <= L.
        # (values of parents may be stale-high on mirrors, never stale-low,
        # so this can only delay, not corrupt, a distance.)
        cand = values[parents] + 1
        np.minimum.at(values, dst_rep, cand)
        changed[unvisited] = values[unvisited] < INF
        return changed, float(total + unvisited.size)


class BFSDirectionOptimizing(BFS):
    """Beamer's hybrid: push small frontiers, pull big ones.

    ``alpha`` is the local frontier fraction above which a partition's
    compute goes bottom-up; ``beta`` the fraction below which it returns
    to top-down (the mode controller is shared, so a flip mid-round
    carries to the remaining partitions — a scheduling detail, not a
    correctness concern).  The distances are identical to plain BFS; only
    the work/communication profile changes (visible in the AppResult's
    per-round stats).
    """

    name = "bfs-dopt"

    def __init__(self, source: int, alpha: float = 0.05, beta: float = 0.01):
        super().__init__(source)
        if not (0 < beta <= alpha < 1):
            raise ValueError("need 0 < beta <= alpha < 1")
        self.alpha = alpha
        self.beta = beta
        self._pull = None  # type: BFSPull | None
        self._mode = "push"
        self._num_global = 0

    def init_values(self, dg, engine: Engine):
        self._pull = BFSPull(self.source)
        self._pull.initial_frontier(dg)  # primes its caches
        self._mode = "push"
        self._num_global = dg.num_global_nodes
        self.mode_history: list[str] = []
        return super().init_values(dg, engine)

    def compute(self, part, values, frontier):
        frontier_size = int(frontier.sum())
        visited = int((values < INF).sum())
        # Heuristic on this partition's share (each partition decides for
        # its local round, mirroring D-Galois' per-host choice).
        n_local = max(1, part.num_proxies)
        frac = frontier_size / n_local
        if self._mode == "push" and frac >= self.alpha:
            self._mode = "pull"
        elif self._mode == "pull" and frac <= self.beta:
            self._mode = "push"
        self.mode_history.append(self._mode)
        if self._mode == "pull" and visited > 0:
            return self._pull.compute(part, values, frontier)
        return super().compute(part, values, frontier)
