"""Approximate diameter by the double-sweep heuristic.

Two BFS runs over the distributed partitions: one from a given (or
default) start vertex, a second from the farthest vertex the first sweep
found.  The second sweep's eccentricity is a lower bound on the diameter
that is exact on trees and extremely tight on real-world graphs — a
standard trick, and a two-line composition of the engine's BFS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.partition import DistributedGraph
from ..runtime.cost_model import STAMPEDE2, CostModel
from .apps import BFS, INF
from .engine import Engine

__all__ = ["approximate_diameter", "DiameterResult"]


@dataclass
class DiameterResult:
    """Double-sweep outcome."""

    lower_bound: int
    start: int
    far_vertex: int
    time: float

    def __int__(self) -> int:  # pragma: no cover - convenience
        return self.lower_bound


def approximate_diameter(
    dg: DistributedGraph,
    start: int | None = None,
    cost_model: CostModel = STAMPEDE2,
) -> DiameterResult:
    """Double-sweep lower bound on the diameter of the partitioned graph.

    Run it on a symmetric partitioning for the usual undirected notion of
    diameter; on a directed graph it bounds the directed eccentricity
    from the chosen start's reachable set.
    """
    engine = Engine(dg, cost_model=cost_model)
    if start is None:
        # Default: the globally highest out-degree vertex, like the apps.
        degrees = np.zeros(dg.num_global_nodes, dtype=np.int64)
        for p in dg.partitions:
            np.add.at(degrees, p.global_ids, p.local_graph.out_degree())
        start = int(np.argmax(degrees))
    first = engine.run(BFS(start))
    reachable = first.values < INF
    if not reachable.any():
        return DiameterResult(0, start, start, first.time)
    far = int(np.argmax(np.where(reachable, first.values, -1)))
    second = engine.run(BFS(far))
    reach2 = second.values < INF
    ecc = int(second.values[reach2].max(initial=0))
    ecc = max(ecc, int(first.values[reachable].max(initial=0)))
    return DiameterResult(ecc, start, far, first.time + second.time)
