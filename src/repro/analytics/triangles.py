"""Distributed triangle counting over CuSP partitions.

A second extension application, chosen because its communication pattern
is *neighborhood exchange* rather than the value reduce/broadcast the
vertex programs use — a different stress on the partitioning:

1. **Orient**: work on the symmetric simple graph, keeping each edge as
   (u, v) with u < v, so every triangle is counted exactly once.
2. **Gather**: each partition ships its local oriented adjacency slices
   to the source's master, so every master holds its vertices' complete
   oriented neighbor lists N+(v) (cost ~ cut-edge volume).
3. **Probe**: for every oriented edge (u, v), u's master sends
   (v, N+(u)) to v's master, which counts |N+(u) ∩ N+(v)| — the number
   of triangles closed over that edge (cost ~ sum of N+(u) over remote
   edges; this is the term 2-D partitions keep small).
4. **Reduce**: a global sum yields the triangle count.

The result is exact and verified against a sparse-matrix reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.partition import DistributedGraph
from ..graph.csr import CSRGraph
from ..runtime.cluster import SimulatedCluster
from ..runtime.cost_model import STAMPEDE2, CostModel
from ..runtime.stats import TimeBreakdown

__all__ = ["count_triangles", "triangles_reference", "TriangleResult"]


@dataclass
class TriangleResult:
    count: int
    breakdown: TimeBreakdown

    @property
    def time(self) -> float:
        return self.breakdown.total


def count_triangles(
    dg: DistributedGraph, cost_model: CostModel = STAMPEDE2
) -> TriangleResult:
    """Count triangles of the (symmetrized interpretation of the)
    partitioned graph.  ``dg`` should partition a symmetric simple graph;
    duplicate and reverse edges are handled by the orientation step.
    """
    k = dg.num_partitions
    n = dg.num_global_nodes
    cluster = SimulatedCluster(k, cost_model=cost_model)

    # Phase 1: orient local edges u < v and deduplicate locally.
    oriented: list[np.ndarray] = []  # per partition: (2, m) arrays
    with cluster.phase("Orient") as ph:
        for p in dg.partitions:
            src, dst = p.global_edges()
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            keep = lo != hi
            lo, hi = lo[keep], hi[keep]
            key = lo * n + hi
            uniq = np.unique(key)
            oriented.append(np.stack([uniq // n, uniq % n]))
            ph.add_compute(p.host, float(src.size))

    # Phase 2: gather complete oriented adjacency at each source's master.
    adjacency: dict[int, dict[int, np.ndarray]] = {m: {} for m in range(k)}
    with cluster.phase("Gather") as ph:
        per_master_chunks: list[list[np.ndarray]] = [[] for _ in range(k)]
        for p in dg.partitions:
            lo, hi = oriented[p.host]
            owners = dg.masters[lo]
            order = np.argsort(owners, kind="stable")
            lo, hi, owners = lo[order], hi[order], owners[order]
            cuts = np.searchsorted(owners, np.arange(k + 1))
            for m in range(k):
                sl = slice(cuts[m], cuts[m + 1])
                cnt = cuts[m + 1] - cuts[m]
                if cnt == 0:
                    continue
                payload = np.stack([lo[sl], hi[sl]])
                ph.comm.send(
                    p.host, m, payload, tag="adj",
                    nbytes=int(cnt) * 16, logical_messages=1,
                )
        for m in range(k):
            pieces = [payload for _, payload in ph.comm.recv_all(m, "adj")]
            if pieces:
                all_lo = np.concatenate([pc[0] for pc in pieces])
                all_hi = np.concatenate([pc[1] for pc in pieces])
                key = np.unique(all_lo * n + all_hi)
                lo, hi = key // n, key % n
                # Per-source slices of the sorted (lo, hi) arrays.
                starts = np.searchsorted(lo, np.arange(n))
                ends = np.searchsorted(lo, np.arange(n) + 1)
                srcs = np.unique(lo)
                for s in srcs:
                    adjacency[m][int(s)] = hi[starts[s] : ends[s]]
                ph.add_compute(m, float(key.size))

    # Phase 3: probe — ship (v, N+(u)) along each oriented edge (u, v).
    total = 0
    with cluster.phase("Probe") as ph:
        probes: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(k)]
        for m in range(k):
            for u, nbrs in adjacency[m].items():
                owners = dg.masters[nbrs]
                for v, owner in zip(nbrs.tolist(), owners.tolist()):
                    payload = (v, nbrs)
                    ph.comm.send(
                        m, owner, payload, tag="probe",
                        nbytes=8 + nbrs.size * 8, logical_messages=1,
                        coalesce=True,
                    )
            ph.add_compute(m, float(sum(a.size for a in adjacency[m].values())))
        for m in range(k):
            for _, (v, candidate) in ph.comm.recv_all(m, "probe"):
                mine = adjacency[m].get(int(v))
                if mine is None or mine.size == 0:
                    continue
                total += int(np.isin(candidate, mine, assume_unique=True).sum())
                ph.add_compute(m, float(candidate.size + mine.size))
        ph.comm.allreduce_sum([np.array([total])] + [np.array([0])] * (k - 1))

    return TriangleResult(count=total, breakdown=cluster.breakdown())


def triangles_reference(graph: CSRGraph) -> int:
    """Exact triangle count via the sparse-matrix identity
    ``sum((U @ U) * U)`` on the strictly-upper-triangular adjacency."""
    from scipy.sparse import csr_matrix

    src, dst = graph.symmetrize().edges()
    keep = src < dst
    src, dst = src[keep], dst[keep]
    n = graph.num_nodes
    u = csr_matrix(
        (np.ones(src.size, dtype=np.int64), (src, dst)), shape=(n, n)
    )
    u.sum_duplicates()
    u.data[:] = 1
    paths = u @ u
    return int(paths.multiply(u).sum())
