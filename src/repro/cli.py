"""Command-line interface: ``cusp`` (or ``python -m repro``).

Subcommands:

``convert``     convert between graph formats (.gr / .el / .metis)
``generate``    write a synthetic graph to disk
``partition``   partition a graph file and report quality + timing
                (``--inject-faults`` exercises crash recovery,
                ``--validate`` runs the full invariant checker,
                ``--resume DIR`` continues an interrupted checkpointed
                run, ``--supervise`` enables straggler mitigation)
``chaos``       run a seeded chaos campaign: N derived fault plans
                spanning the full fault family, each asserted
                bit-identical to the fault-free partition (exit 1 on
                any surviving divergence)
``experiment``  regenerate one of the paper's tables/figures
``info``        print a graph file's Table III properties
``validate``    check a saved partition directory (exit 1 if invalid)
``lint``        run the SPMD-safety lint over Python sources
                (exit 1 on errors; ``--strict`` escalates warnings)
``contracts``   statically diff the five phase modules against their
                declared communication contracts (exit 1 on undeclared
                ops; ``--strict`` escalates dead contract clauses)
``mutate``      run a seeded mutation campaign against the analyzers
                themselves: splice semantic faults into the package and
                assert the detector stack catches them (exit 1 on any
                untriaged survivor; ``--strict`` additionally wants
                >= 90% detection)

``lint``, ``contracts``, ``chaos``, ``mutate`` and ``validate`` are all
*checking* subcommands and share one verdict convention
(:func:`_check_exit`): a single summary line — ``OK:`` on stdout with
exit 0, or a failure line on stderr with exit 1.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .core import CheckpointCorruptionError, CuSP, make_policy, policy_names
from .graph import (
    compute_properties,
    convert,
    erdos_renyi,
    kronecker,
    read_gr,
    webcrawl_like,
    write_gr,
)
from .metrics import measure_quality
from .runtime.executor import EXECUTOR_NAMES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cusp",
        description="CuSP: customizable streaming edge partitioner (reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("convert", help="convert between graph formats")
    p.add_argument("src", help="input file (.gr, .el, .metis)")
    p.add_argument("dst", help="output file (.gr, .el, .metis)")

    p = sub.add_parser("generate", help="write a synthetic graph")
    p.add_argument("kind", choices=["kron", "webcrawl", "er"])
    p.add_argument("out", help="output .gr file")
    p.add_argument("--scale", type=int, default=12, help="kron: log2 nodes")
    p.add_argument("--nodes", type=int, default=10_000)
    p.add_argument("--degree", type=float, default=16.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("partition", help="partition a graph file")
    p.add_argument("graph", help=".gr file to partition")
    p.add_argument("-k", "--partitions", type=int, required=True)
    p.add_argument(
        "-p", "--policy", default="EEC",
        help=(
            f"one of {', '.join(policy_names())}, 'window[:SIZE]' for the "
            "streaming-window partitioner, or 'xtrapulp'/'multilevel' for "
            "the offline baselines"
        ),
    )
    p.add_argument("--sync-rounds", type=int, default=100)
    p.add_argument("--buffer-size", type=int, default=8 << 20)
    p.add_argument("--degree-threshold", type=int, default=100)
    p.add_argument("--output-format", choices=["csr", "csc"], default="csr")
    p.add_argument("--save", metavar="DIR",
                   help="write the constructed partitions to DIR")
    p.add_argument("--trace", action="store_true",
                   help="render an ASCII phase-breakdown bar chart")
    p.add_argument("--trace-json", metavar="FILE",
                   help="write the phase breakdown as JSON to FILE")
    p.add_argument(
        "--validate", action="store_true",
        help="run the full invariant checker on the result (exit 1 on failure)",
    )
    p.add_argument(
        "--inject-faults", metavar="SPEC",
        help=(
            "inject deterministic faults and recover from them; SPEC is "
            "'@plan.json', inline JSON, or e.g. "
            "'seed=42,send-fail=0.05,drop=0.01,crash=1@2,slow=3:0.5' "
            "(crash=HOST@PHASEINDEX[:OPS])"
        ),
    )
    p.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="durable per-phase checkpoints under DIR (in-memory otherwise)",
    )
    p.add_argument(
        "--resume", metavar="DIR",
        help=(
            "resume an interrupted run from the durable checkpoint in "
            "DIR: completed phases are verified against their recorded "
            "digests and skipped, and the run continues from the first "
            "unverified phase — bit-identical to an uninterrupted run"
        ),
    )
    p.add_argument(
        "--supervise", action="store_true",
        help=(
            "run under the phase-deadline supervisor: hosts breaching "
            "the hard deadline (from the cost model's healthy-host "
            "baseline) are quarantined and their read slices migrate "
            "to healthy hosts"
        ),
    )
    p.add_argument(
        "--max-retries", type=int, default=3,
        help="retry budget per send and per phase replay (default 3)",
    )
    p.add_argument(
        "--executor", choices=list(EXECUTOR_NAMES), default="serial",
        help=(
            "per-host execution engine: 'serial' (reference), "
            "'parallel' (thread pool; identical partitions and "
            "simulated breakdown by construction), 'process' (a "
            "persistent pool of forked workers mapping the graph "
            "zero-copy from shared memory and shipping ledger deltas "
            "over pipes; same guarantees, true multi-core), or "
            "their '-checked' variants (run under the host-isolation "
            "race detector)"
        ),
    )
    p.add_argument(
        "--fabric", choices=["columnar", "scalar"], default=None,
        help=(
            "message fabric for the phase pipeline: 'columnar' "
            "(default; typed MessageBatch columns, vectorized "
            "pack/unpack) or 'scalar' (per-payload compatibility "
            "path; bit-identical partitions and accounting)"
        ),
    )
    p.add_argument(
        "--commsan", action="store_true",
        help=(
            "run under the phase-communication sanitizer: every phase "
            "is audited against its declared contract and the ledger's "
            "conservation laws (exit 1 with the first violating "
            "(phase, host, op) on breach)"
        ),
    )

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", help="e.g. table3, fig3, fig7 (or 'all')")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "bench"])
    p.add_argument("--out", metavar="FILE",
                   help="also append the rendered tables to FILE")
    p.add_argument("--chart", action="store_true",
                   help="render an ASCII chart alongside each table")

    p = sub.add_parser("info", help="print a graph file's properties")
    p.add_argument("graph", help=".gr file")

    p = sub.add_parser(
        "validate",
        help="check a saved partition directory against its input graph",
    )
    p.add_argument("partition_dir", help="directory written by --save")
    p.add_argument("graph", nargs="?", help="optional .gr file to check against")

    p = sub.add_parser(
        "lint",
        help="run the SPMD-safety lint over Python sources",
        description=(
            "Statically check sources against the determinism contract: "
            "no unseeded randomness, no wall-clock reads in simulated "
            "code, no iteration over unordered sets, and no host task "
            "that touches shared communicator/stats state or another "
            "host's data.  See docs/ANALYSIS.md for the rule catalogue "
            "and suppression syntax."
        ),
    )
    p.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default text)")
    p.add_argument("--json", action="store_true",
                   help="shorthand for --format json")
    p.add_argument(
        "--rule", action="append", metavar="NAME",
        help="run only the named rule (repeatable; see --list-rules)",
    )
    p.add_argument("--list-rules", action="store_true",
                   help="print the available rules and exit")
    p.add_argument(
        "--deep", action="store_true",
        help=(
            "additionally run the whole-program interprocedural "
            "analyses (call graph, determinism taint, payload "
            "shippability; see the 'Whole-program analysis' section of "
            "docs/ANALYSIS.md)"
        ),
    )
    p.add_argument(
        "--cache", metavar="FILE",
        help=(
            "incremental cache file for --deep (default: a per-tree "
            "file under $XDG_CACHE_HOME/repro-lint)"
        ),
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="run --deep without reading or writing any cache",
    )

    p = sub.add_parser(
        "contracts",
        help="statically check phase code against its communication contracts",
        description=(
            "Extract every communication operation the five phase "
            "modules (and the rule/state modules they dispatch into) can "
            "emit, and diff the result against the declared "
            "PhaseContracts in repro.core.contracts: undeclared ops and "
            "non-constant tags are errors, contract clauses no code path "
            "can exercise are warnings.  See the 'Phase contracts & "
            "CommSan' section of docs/ANALYSIS.md."
        ),
    )
    p.add_argument(
        "root", nargs="?",
        help=(
            "package root to check: a repo root, src/repro, or any "
            "directory holding the core/ phase modules (default: the "
            "installed repro package)"
        ),
    )
    p.add_argument("--strict", action="store_true",
                   help="treat dead-clause warnings as errors")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default text)")
    p.add_argument("--json", action="store_true",
                   help="shorthand for --format json")

    p = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign over the full fault family",
        description=(
            "Derive N deterministic fault plans (message faults, payload "
            "corruption, host crashes, stragglers, torn checkpoint "
            "writes, kill+resume) and assert that every plan's partition "
            "is bit-identical to the fault-free run with zero sanitizer "
            "violations.  See the chaos section of docs/FAULTS.md."
        ),
    )
    p.add_argument("--plans", type=int, default=10,
                   help="number of fault plans to derive (default 10)")
    p.add_argument("--seed", type=int, default=7,
                   help="campaign seed (default 7)")
    p.add_argument("--hosts", type=int, default=4,
                   help="number of simulated hosts / partitions (default 4)")
    p.add_argument(
        "-p", "--policy", default="CVC",
        help=f"CuSP policy under test, one of {', '.join(policy_names())}",
    )
    p.add_argument(
        "--executor", choices=list(EXECUTOR_NAMES), default="serial",
        help=(
            "execution engine for every scenario run (the fault-free "
            "reference stays serial, so a non-serial campaign also "
            "proves executor equivalence under chaos)"
        ),
    )
    p.add_argument("--quiet", action="store_true",
                   help="suppress the per-plan result lines")

    p = sub.add_parser(
        "mutate",
        help="run a seeded mutation campaign against the analyzer stack",
        description=(
            "Generate semantic faults (unseeded RNG, dropped merges, "
            "skipped flushes, laundered communication, mutated contract "
            "clauses, ...) against the repro package, splice each into "
            "an isolated shadow copy, and run the full detector stack — "
            "shallow lint, --deep analyses, the contract diff, and a "
            "dynamic fixture tier — against every mutant.  Fails on any "
            "surviving mutant without a triage verdict, and on matrix "
            "drift when --reference is given.  See the 'Mutation "
            "soundness' section of docs/ANALYSIS.md."
        ),
    )
    p.add_argument(
        "target", nargs="?",
        help="repro package directory to mutate (default: the installed one)",
    )
    p.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help=(
            "number of mutants to campaign over, stratified per operator "
            "(default 24; 0 means every generated site)"
        ),
    )
    p.add_argument("--seed", type=int, default=None,
                   help="selection seed (default 7)")
    p.add_argument(
        "--static-only", action="store_true",
        help="skip the dynamic fixture tier (static detectors only)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="additionally require >= 90%% detection over non-equivalents",
    )
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default text)")
    p.add_argument("--json", action="store_true",
                   help="shorthand for --format json")
    p.add_argument(
        "--reference", metavar="FILE",
        help=(
            "committed detection matrix to diff against; any byte "
            "difference from this run's matrix is a failure"
        ),
    )
    p.add_argument(
        "--write-reference", metavar="FILE",
        help="write this run's matrix as the new committed reference",
    )
    p.add_argument("--list-operators", action="store_true",
                   help="print the registered mutation operators and exit")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the per-mutant progress lines")
    return parser


def _run_partitioner(graph, args):
    """Dispatch the ``partition`` subcommand's --policy string."""
    spec = args.policy.lower()
    if args.resume and args.checkpoint_dir and args.resume != args.checkpoint_dir:
        raise SystemExit(
            f"--resume {args.resume!r} and --checkpoint-dir "
            f"{args.checkpoint_dir!r} name different directories; --resume "
            "already implies checkpointing to the directory it resumes from"
        )
    checkpoint_dir = args.resume or args.checkpoint_dir
    fault_extras = spec.startswith("window") or spec in ("xtrapulp", "multilevel")
    if fault_extras and (args.inject_faults or checkpoint_dir or args.supervise):
        raise SystemExit(
            "--inject-faults/--checkpoint-dir/--resume/--supervise only "
            f"apply to CuSP policies, not to {args.policy!r}"
        )
    if fault_extras and args.fabric:
        raise SystemExit(
            f"--fabric only applies to CuSP policies, not to {args.policy!r}"
        )
    if spec.startswith("window"):
        from .core import WindowedPartitioner

        window = int(spec.split(":", 1)[1]) if ":" in spec else 64
        wp = WindowedPartitioner(
            args.partitions, window_size=window, buffer_size=args.buffer_size
        )
        return wp.partition(graph), f"streaming window (size {window})"
    if spec == "xtrapulp":
        from .baselines import XtraPulp

        return XtraPulp(args.partitions).partition(graph), "XtraPulp baseline"
    if spec == "multilevel":
        from .baselines import MultilevelPartitioner

        ml = MultilevelPartitioner(args.partitions)
        return ml.partition(graph), "multilevel baseline"
    policy = make_policy(args.policy, degree_threshold=args.degree_threshold)
    fault_plan = None
    if args.inject_faults:
        from .runtime.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_spec(args.inject_faults)
        except (ValueError, OSError) as exc:
            raise SystemExit(f"invalid --inject-faults spec: {exc}")
    try:
        cusp = CuSP(
            args.partitions,
            policy,
            sync_rounds=args.sync_rounds,
            buffer_size=args.buffer_size,
            fault_plan=fault_plan,
            checkpoint_dir=checkpoint_dir,
            resume=bool(args.resume),
            supervise=args.supervise,
            max_retries=args.max_retries,
            executor=args.executor,
            sanitizer=args.commsan,
            fabric=args.fabric,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    try:
        dg = cusp.partition(graph, output=args.output_format)
    except (ValueError, CheckpointCorruptionError) as exc:
        if args.resume:
            raise SystemExit(f"cannot resume from {args.resume!r}: {exc}")
        raise
    if args.commsan:
        san = cusp.sanitizer
        print(
            f"commsan            : {san.phases_checked} phase(s) audited, "
            f"{san.ops_observed} op(s) observed, "
            f"{len(san.violations)} violation(s)"
        )
    if cusp.last_fault_report is not None:
        print(f"fault injection    : {cusp.last_fault_report.summary()}")
        if dg.breakdown is not None and dg.breakdown.retry_bytes():
            print(
                f"recovery traffic   : "
                f"{dg.breakdown.retry_bytes():.0f} retry bytes in "
                f"{dg.breakdown.retry_messages():.0f} retransmissions"
            )
        replayed = [p.name for p in dg.breakdown.failed_phases()]
        if replayed:
            print(f"replayed phases    : {', '.join(replayed)}")
    if args.supervise and cusp.last_supervisor_report is not None:
        print(f"supervision        : {cusp.last_supervisor_report.summary()}")
    return dg, policy.describe()


def _check_exit(ok: bool, success: str, failure: str) -> int:
    """Shared verdict reporting for the checking subcommands.

    Both ``lint`` and ``validate`` end with exactly one verdict line:
    ``success`` on stdout and exit 0, or ``failure`` on stderr and
    exit 1 — so scripts can gate on the exit code and humans can grep
    for one stable prefix (``OK:`` / ``FAIL:`` / ``INVALID:``).
    """
    if ok:
        print(success)
        return 0
    print(failure, file=sys.stderr)
    return 1


def _default_deep_cache(paths: list) -> str:
    """Per-tree default cache file under the user's cache directory."""
    import hashlib

    base = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
    )
    key = hashlib.sha256(
        "\x00".join(os.path.abspath(str(p)) for p in paths).encode()
    ).hexdigest()[:16]
    return os.path.join(base, "repro-lint", f"deep-{key}.json")


def _run_lint_command(args) -> int:
    """The ``lint`` subcommand: drive :func:`repro.analysis.lint.run_lint`."""
    from .analysis.ipa import all_deep_rules
    from .analysis.lint import all_rules, run_lint

    registry = all_rules()
    deep_registry = all_deep_rules()
    if args.list_rules:
        names = list(registry) + list(deep_registry)
        width = max(len(name) for name in names)
        for name in sorted(registry):
            rule = registry[name]
            print(f"{name:<{width}}  [{rule.severity}] {rule.description}")
        for name in sorted(deep_registry):
            deep_rule = deep_registry[name]
            print(
                f"{name:<{width}}  [{deep_rule.severity}] "
                f"(--deep) {deep_rule.description}"
            )
        return 0
    rules = None
    deep_rules = None
    if args.rule:
        known = set(registry) | (set(deep_registry) if args.deep else set())
        unknown = sorted(set(args.rule) - known)
        if unknown:
            raise SystemExit(
                f"unknown rule(s): {', '.join(unknown)} "
                "(see 'lint --list-rules'; deep-* rules need --deep)"
            )
        wanted = dict.fromkeys(args.rule)
        rules = [registry[n] for n in wanted if n in registry]
        deep_rules = [deep_registry[n] for n in wanted if n in deep_registry]
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    cache = None
    if args.deep and not args.no_cache:
        cache = args.cache or _default_deep_cache(paths)
    report = run_lint(
        paths, rules=rules, deep=args.deep, cache=cache,
        deep_rules=deep_rules,
    )
    ok = report.ok(strict=args.strict)
    if args.json or args.format == "json":
        print(report.to_json())
        return 0 if ok else 1
    for finding in report.findings:
        print(finding.render())
    strict_note = (
        " (strict: warnings are errors)"
        if args.strict and not ok and not report.errors
        else ""
    )
    return _check_exit(
        ok,
        f"OK: {report.summary()}",
        f"FAIL: {report.summary()}{strict_note}",
    )


def _run_contracts_command(args) -> int:
    """The ``contracts`` subcommand: drive the static extraction diff."""
    from .analysis.contracts import check_contracts

    root = args.root or os.path.dirname(os.path.abspath(__file__))
    report = check_contracts(root)
    ok = report.ok(strict=args.strict)
    if args.json or args.format == "json":
        print(report.to_json())
        return 0 if ok else 1
    for finding in report.findings:
        print(finding.render())
    strict_note = (
        " (strict: dead clauses are errors)"
        if args.strict and not ok and not report.errors
        else ""
    )
    return _check_exit(
        ok,
        f"OK: {report.summary()}",
        f"FAIL: {report.summary()}{strict_note}",
    )


def _run_mutate_command(args) -> int:
    """The ``mutate`` subcommand: drive the analyzer mutation campaign."""
    from .analysis.mutate import all_operators, run_campaign
    from .analysis.mutate.campaign import (
        DEFAULT_BUDGET,
        DEFAULT_SEED,
        CampaignError,
    )

    if args.list_operators:
        ops = all_operators()
        width = max(len(name) for name in ops)
        for name in sorted(ops):
            op = ops[name]
            print(f"{name:<{width}}  [{op.fault_class}] {op.description}")
        return 0
    budget = DEFAULT_BUDGET if args.budget is None else args.budget
    progress = None
    if not args.quiet and args.format != "json" and not args.json:
        progress = print
    try:
        report = run_campaign(
            target=args.target,
            budget=None if budget == 0 else budget,
            seed=DEFAULT_SEED if args.seed is None else args.seed,
            static_only=args.static_only,
            progress=progress,
        )
    except CampaignError as exc:
        raise SystemExit(f"mutation campaign aborted: {exc}")
    matrix = report.to_json()
    if args.write_reference:
        with open(args.write_reference, "w") as f:
            f.write(matrix)
        print(f"reference matrix written to {args.write_reference}")
    drift = ""
    if args.reference:
        try:
            with open(args.reference) as f:
                committed = f.read()
        except OSError as exc:
            raise SystemExit(f"cannot read --reference: {exc}")
        if committed != matrix:
            drift = (
                f" (matrix drifted from {args.reference}; inspect the diff"
                " and re-run with --write-reference if intended)"
            )
    ok = report.ok(strict=args.strict) and not drift
    if args.json or args.format == "json":
        print(matrix, end="")
        return 0 if ok else 1
    if not args.quiet:
        print(report.render_text())
    strict_note = (
        " (strict: detection rate below 90%)"
        if args.strict and not report.ok(strict=True) and report.ok()
        else ""
    )
    return _check_exit(
        ok,
        f"OK: {report.summary()}",
        f"FAIL: {report.summary()}{strict_note}{drift}",
    )


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; standard CLI etiquette.
        import os

        try:
            sys.stdout.close()
        # stdout already broke; closing can only fail the same way, and
        # os._exit follows immediately.
        # repro-lint: disable-next-line=swallowed-error -- broken-pipe exit path
        except Exception:
            pass
        os._exit(0)


def _dispatch(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "convert":
        graph = convert(args.src, args.dst)
        print(f"converted {args.src} -> {args.dst}: {graph}")

    elif args.command == "generate":
        if args.kind == "kron":
            graph = kronecker(args.scale, seed=args.seed)
        elif args.kind == "webcrawl":
            graph = webcrawl_like(args.nodes, args.degree, seed=args.seed)
        else:
            graph = erdos_renyi(
                args.nodes, int(args.nodes * args.degree), seed=args.seed
            )
        write_gr(graph, args.out)
        print(f"wrote {graph} to {args.out}")

    elif args.command == "partition":
        from .analysis.contracts import ContractViolationError
        from .runtime.faults import FaultError

        graph = read_gr(args.graph)
        try:
            dg, description = _run_partitioner(graph, args)
        except FaultError as exc:
            print(f"partitioning failed: {exc}", file=sys.stderr)
            return 1
        except ContractViolationError as exc:
            print(f"commsan violation: {exc}", file=sys.stderr)
            return 1
        if args.validate:
            from .core import check_partition

            report = check_partition(dg, original=graph)
            print(f"validation         : {report.summary()}")
            if not report.ok:
                return 1
        else:
            dg.validate(graph)
        q = measure_quality(dg, graph)
        print(f"partitioned {graph} with {description}")
        print(f"replication factor : {q.replication_factor:.3f}")
        print(f"node/edge balance  : {q.node_balance:.3f} / {q.edge_balance:.3f}")
        print(f"max comm partners  : {q.max_partners}")
        if dg.breakdown is None:
            print("(offline single-machine baseline: no simulated timing)")
        elif args.trace:
            from .runtime.trace import render_breakdown

            print(render_breakdown(dg.breakdown, title="simulated time by phase:"))
        else:
            print("simulated time by phase:")
            for phase in dg.breakdown.phases:
                print(f"  {phase.name:<24} {phase.total * 1e3:10.3f} ms")
            print(f"  {'TOTAL':<24} {dg.breakdown.total * 1e3:10.3f} ms")
        if args.trace_json and dg.breakdown is not None:
            from .runtime.trace import breakdown_to_json

            with open(args.trace_json, "w") as f:
                f.write(
                    breakdown_to_json(
                        dg.breakdown, policy=dg.policy_name,
                        num_partitions=dg.num_partitions,
                    )
                )
            print(f"trace written to {args.trace_json}")
        if args.save:
            from .core import save_partitions

            save_partitions(dg, args.save)
            print(f"partitions written to {args.save}")

    elif args.command == "experiment":
        from .experiments import EXPERIMENTS, ExperimentContext

        names = list(EXPERIMENTS) if args.name == "all" else [args.name]
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(
                f"unknown experiment(s) {unknown}; choose from "
                f"{list(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        ctx = ExperimentContext(scale=args.scale)
        chunks = []
        for name in names:
            result = EXPERIMENTS[name](ctx)
            text = result.format()
            if args.chart:
                from .experiments.charts import render_experiment

                text += "\n\n" + render_experiment(result)
            print(text)
            print()
            chunks.append(text)
        if args.out:
            with open(args.out, "a") as f:
                f.write("\n\n".join(chunks) + "\n")
            print(f"results appended to {args.out}")

    elif args.command == "validate":
        from .core import check_partition, load_partitions

        try:
            dg = load_partitions(args.partition_dir)
        except Exception as exc:
            return _check_exit(
                False, "",
                f"INVALID: cannot load {args.partition_dir}: {exc}",
            )
        reference = read_gr(args.graph) if args.graph else None
        report = check_partition(dg, original=reference)
        return _check_exit(
            report.ok,
            f"OK: {dg} — {report.summary()}"
            + (" (edge multiset matches the input graph)" if reference else ""),
            f"INVALID: {report.summary()}",
        )

    elif args.command == "chaos":
        from .chaos import run_campaign

        try:
            report = run_campaign(
                plans=args.plans, seed=args.seed, num_hosts=args.hosts,
                policy=args.policy, executor=args.executor,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        if not args.quiet:
            print(report.render_text())
        return _check_exit(
            report.ok(),
            f"OK: {report.summary()}",
            f"FAIL: {report.summary()}",
        )

    elif args.command == "lint":
        return _run_lint_command(args)

    elif args.command == "contracts":
        return _run_contracts_command(args)

    elif args.command == "mutate":
        return _run_mutate_command(args)

    elif args.command == "info":
        graph = read_gr(args.graph)
        for key, value in compute_properties(graph, args.graph).row().items():
            print(f"{key:<16} {value}")

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
