"""Partition quality metrics (paper §V-C's structural metrics).

The paper notes structural metrics (replication factor, balance) are not
perfectly correlated with application runtime, so its quality evaluation
runs real applications — which this reproduction also does — but the
structural metrics remain useful for analysis and testing.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

import numpy as np

from ..core.partition import DistributedGraph
from ..graph.csr import CSRGraph

__all__ = [
    "PartitionQuality",
    "measure_quality",
    "cut_fraction",
    "geomean",
    "master_agreement",
    "migration_volume",
]


@dataclass(frozen=True)
class PartitionQuality:
    """Structural quality summary of one partitioning."""

    policy: str
    num_partitions: int
    replication_factor: float
    node_balance: float  # max/mean masters per partition
    edge_balance: float  # max/mean edges per partition
    cut_fraction: float  # edges whose endpoints are mastered apart
    max_partners: int  # worst-case communication partner count

    def row(self) -> dict:
        return {
            "policy": self.policy,
            "k": self.num_partitions,
            "replication": round(self.replication_factor, 3),
            "node_balance": round(self.node_balance, 3),
            "edge_balance": round(self.edge_balance, 3),
            "cut_fraction": round(self.cut_fraction, 3),
            "max_partners": self.max_partners,
        }


def cut_fraction(graph: CSRGraph, masters: np.ndarray) -> float:
    """Fraction of edges whose endpoints have masters on different hosts."""
    if graph.num_edges == 0:
        return 0.0
    src, dst = graph.edges()
    return float((masters[src] != masters[dst]).mean())


def _max_partners(dg: DistributedGraph) -> int:
    """Max over hosts of the number of peers it shares proxies with.

    A host communicates with every host that masters one of its mirrors
    or mirrors one of its masters; this is the partner set the paper's
    CVC argument is about (§V-B).
    """
    k = dg.num_partitions
    shares = np.zeros((k, k), dtype=bool)
    for p in dg.partitions:
        owners = np.unique(dg.masters[p.mirror_global_ids])
        for m in owners:
            shares[p.host, m] = True
            shares[m, p.host] = True
    np.fill_diagonal(shares, False)
    return int(shares.sum(axis=1).max(initial=0))


def measure_quality(dg: DistributedGraph, graph: CSRGraph) -> PartitionQuality:
    """Compute all structural metrics for a partitioning of ``graph``."""
    return PartitionQuality(
        policy=dg.policy_name,
        num_partitions=dg.num_partitions,
        replication_factor=dg.replication_factor(),
        node_balance=dg.node_balance(),
        edge_balance=dg.edge_balance(),
        cut_fraction=cut_fraction(graph, dg.masters),
        max_partners=_max_partners(dg),
    )


def geomean(values) -> float:
    """Geometric mean (the paper's averaging for speedups)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def master_agreement(a: DistributedGraph, b: DistributedGraph) -> float:
    """Fraction of vertices whose master partition matches between two
    partitionings of the same graph (label-aligned, not permutation
    invariant — use for runs of the *same* policy family)."""
    if a.num_global_nodes != b.num_global_nodes:
        raise ValueError("partitionings cover different graphs")
    if a.num_global_nodes == 0:
        return 1.0
    return float((a.masters == b.masters).mean())


def migration_volume(a: DistributedGraph, b: DistributedGraph) -> int:
    """Edges that would move between hosts going from partitioning ``a``
    to partitioning ``b`` (repartitioning cost proxy)."""
    if a.num_global_nodes != b.num_global_nodes:
        raise ValueError("partitionings cover different graphs")
    moved = 0
    owner_a = _edge_owner_map(a)
    owner_b = _edge_owner_map(b)
    # Sorted so the traversal order is deterministic (set iteration
    # order is not), keeping this metric a pure function of its inputs.
    for key in sorted(set(owner_a) | set(owner_b)):
        ca = owner_a.get(key)
        cb = owner_b.get(key)
        if ca is None or cb is None:
            continue
        # Multisets per (src, dst): edges beyond the per-host overlap move.
        overlap = sum((collections.Counter(ca) & collections.Counter(cb)).values())
        moved += max(len(ca), len(cb)) - overlap
    return moved


def _edge_owner_map(dg: DistributedGraph) -> dict:
    owners: dict[tuple[int, int], list[int]] = {}
    for p in dg.partitions:
        src, dst = p.global_edges()
        for s, d in zip(src.tolist(), dst.tolist()):
            owners.setdefault((s, d), []).append(p.host)
    return owners
