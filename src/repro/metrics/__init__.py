"""Partition quality metrics."""

from .quality import (
    PartitionQuality,
    cut_fraction,
    geomean,
    master_agreement,
    measure_quality,
    migration_volume,
)

__all__ = [
    "PartitionQuality",
    "measure_quality",
    "cut_fraction",
    "geomean",
    "master_agreement",
    "migration_volume",
]
