"""Simulated message passing with exact byte/message accounting.

This is the reproduction's stand-in for MPI/LCI (paper §IV-D).  Hosts are
slots in a single process; a :class:`Communicator` carries *real* payloads
between them (so partitioning and analytics are functionally exact) while
recording, per (source, destination) pair, the bytes and network messages
the transfer would have cost on a real cluster.

Message counting honours the paper's buffering optimization (§IV-D3):
with a positive ``buffer_size`` a logical stream of ``nbytes`` to one peer
costs ``ceil(nbytes / buffer_size)`` messages; with ``buffer_size == 0``
each *logical* message (e.g. one node's serialized edge bundle) is sent
immediately and costs one network message — which is exactly the 0 MB
configuration of Figure 7.

When a :class:`~repro.runtime.faults.FaultInjector` is attached, sends
run over a *reliable transport on a lossy fabric*: transient failures,
in-flight drops and duplicated deliveries never corrupt or lose the
payload (delivery stays exactly-once), but every retransmission is
charged to dedicated retry counters — extra bytes, extra messages, and
exponential-backoff stalls — so recovery overhead is visible in the
simulated breakdown.

For the pluggable execution engine (:mod:`repro.runtime.executor`), a
host's traffic can be recorded on a *private* :class:`CommLedger`
instead of the shared matrices: :meth:`Communicator.ledger` hands out a
per-host recording view, and :meth:`Communicator.merge_ledger` folds
ledgers back in.  Merging in host order reproduces, bit for bit, the
accounting and message-queue order a serial host-by-host execution
would have produced — which is what lets a thread pool run the hosts
concurrently without perturbing a single counter.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from typing import Any, Iterable, Mapping, Protocol

import numpy as np

from ..analysis import isolation
from .colfab import BatchAccumulator, ColumnSchema, MessageBatch, ReceivedBatch
from .faults import FaultEvent, FaultInjector, SendRetriesExhausted

__all__ = ["Communicator", "CommLedger", "CommObserver", "payload_nbytes"]


class CommObserver(Protocol):
    """Passive witness of a communicator's message flow.

    The contract sanitizer (:class:`repro.analysis.contracts.CommSan`)
    implements this to mirror the accounting independently; the hooks
    fire only when :attr:`Communicator.observer` is set, so the default
    path costs one ``is None`` check.  Collectives and barriers need no
    hook — their event lists are read directly at the phase barrier.
    """

    def on_send(self, src: int, dst: int, tag: str, nbytes: int) -> None: ...

    def on_merge(self, ledger: "CommLedger") -> None: ...

    def on_recv(self, dst: int, tag: str, count: int) -> None: ...


class _RetrySink(Protocol):
    """Where the faulty transport charges wasted attempts: the shared
    matrices for a direct send, a private :class:`CommLedger` otherwise."""

    def charge_retry(self, dst: int, size: int, attempt: int) -> None: ...

    def charge_duplicate(self, dst: int, size: int) -> None: ...

    def charge_corruption(self, dst: int, size: int) -> None: ...


#: Scalar types that serialize to one machine word.  ``np.bool_`` is
#: listed explicitly: under NumPy 2 it is no longer a ``bool``/``int``
#: subclass, so it would otherwise fall through to the TypeError.
_WORD_SCALARS = (bool, int, float, np.bool_, np.integer, np.floating)


def payload_nbytes(payload: Any) -> int:
    """Approximate serialized size of a payload in bytes.

    NumPy arrays (including 0-d scalars-in-arrays) count their buffer
    size; :class:`~repro.runtime.colfab.MessageBatch` payloads answer in
    O(1) from their schema's memoized per-row size; containers count the
    sum of their elements; Python and NumPy scalars count 8 bytes (one
    machine word).  Homogeneous NumPy containers — the common wire shape
    ``(array, array, ...)`` — are sized in a single non-recursive pass.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        # Covers 0-d arrays too: np.asarray(3.0).nbytes == 8.
        return int(payload.nbytes)
    if isinstance(payload, MessageBatch):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        # Fast path: dispatch arrays and scalars inline instead of
        # recursing per element (sizes are identical either way).
        total = 0
        for p in payload:
            if isinstance(p, np.ndarray):
                total += p.nbytes
            elif isinstance(p, _WORD_SCALARS):
                total += 8
            elif p is not None:
                total += payload_nbytes(p)
        return int(total)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    if isinstance(payload, _WORD_SCALARS):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Communicator:
    """Point-to-point and collective communication among ``num_hosts`` slots.

    All accounting methods are cheap; payload delivery is by reference
    (hosts must not mutate received arrays they do not own).
    """

    def __init__(
        self,
        num_hosts: int,
        buffer_size: int = 8 << 20,
        injector: FaultInjector | None = None,
        max_retries: int = 5,
    ):
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        if buffer_size < 0:
            raise ValueError("buffer_size must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.num_hosts = num_hosts
        self.buffer_size = buffer_size
        self.injector = injector
        self.max_retries = max_retries
        self.sent_bytes = np.zeros((num_hosts, num_hosts), dtype=np.float64)
        self.sent_messages = np.zeros((num_hosts, num_hosts), dtype=np.float64)
        # Retransmissions caused by injected faults: charged on top of the
        # first-attempt accounting so recovery cost shows up per phase.
        self.retry_bytes = np.zeros((num_hosts, num_hosts), dtype=np.float64)
        self.retry_messages = np.zeros((num_hosts, num_hosts), dtype=np.float64)
        #: Per-source exponential-backoff units (sum of 2**attempt over
        #: failed attempts); the cost model converts them to stall time.
        self.backoff_units = np.zeros(num_hosts, dtype=np.float64)
        self.collective_events: list[tuple[str, float]] = []
        self.barriers = 0
        #: Optional passive witness (e.g. CommSan); installed per phase
        #: by the cluster, never consulted for accounting decisions.
        self.observer: CommObserver | None = None
        self._queues: dict[tuple[int, str], deque] = defaultdict(deque)
        # Bytes sent with coalesce=True, per (src, dst): the dedicated
        # communication thread batches consecutive small sends to the same
        # peer into buffer-sized network messages (paper §IV-D3), so their
        # message count is derived from the stream volume, not the number
        # of send calls.
        self._stream_bytes = np.zeros((num_hosts, num_hosts), dtype=np.float64)
        self._stream_logical = np.zeros((num_hosts, num_hosts), dtype=np.float64)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None:
        """Deliver ``payload`` from ``src`` to ``dst`` and account for it.

        ``logical_messages`` is the number of application-level messages
        in the stream (used only when unbuffered).  ``nbytes`` overrides
        the automatic payload sizing (e.g. to model elided metadata).
        ``coalesce=True`` marks the send as part of an ongoing stream to
        this peer: the comm thread batches such sends, so the stream's
        message count is ceil(total bytes / buffer) at the end rather than
        one per call.  Local "sends" (src == dst) are delivered but cost
        nothing: CuSP constructs local edges directly (§IV-B5).
        """
        if isolation._depth:
            # During a monitored parallel section, every charge must go
            # through the host's private ledger; a direct send from a
            # mapped task races the merge barrier.
            isolation.guard_shared(
                "Communicator.send",
                f"sent {src}->{dst} on the shared Communicator, "
                "bypassing its CommLedger",
            )
        self._check_host(src)
        self._check_host(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if src != dst and self.injector is not None:
            self._run_faulty_transport(
                src, dst, size, _DirectRetrySink(self, src)
            )
        if src != dst:
            self.sent_bytes[src, dst] += size
            if coalesce:
                self._stream_bytes[src, dst] += size
                self._stream_logical[src, dst] += max(1, logical_messages)
            else:
                self.sent_messages[src, dst] += self._message_count(
                    size, logical_messages
                )
        self._queues[(dst, tag)].append((src, payload))
        if self.observer is not None:
            self.observer.on_send(src, dst, tag, size)

    def _run_faulty_transport(
        self, src: int, dst: int, size: int, retry_sink: _RetrySink
    ) -> None:
        """Subject one remote send to the attached fault injector.

        May raise :class:`~repro.runtime.faults.HostCrashError` (a
        mid-phase crash triggered by this operation) or
        :class:`~repro.runtime.faults.SendRetriesExhausted`.  Charges
        every wasted attempt to ``retry_sink`` — the shared retry
        counters for a direct send, a private :class:`CommLedger` when
        the send is recorded on one.
        """
        channel = self.injector.channel(src)
        channel.tick()
        attempt = 0
        # Sender-side NACKs: retry with exponential backoff.
        while channel.transient_send_failure(dst):
            retry_sink.charge_retry(dst, size, attempt)
            attempt += 1
            if attempt > self.max_retries:
                raise SendRetriesExhausted(
                    f"send {src}->{dst} failed after {self.max_retries} retries"
                )
        # In-flight drops: ack timeout, then retransmit (which may drop too).
        while channel.dropped(dst):
            retry_sink.charge_retry(dst, size, attempt)
            attempt += 1
            if attempt > self.max_retries:
                raise SendRetriesExhausted(
                    f"send {src}->{dst} dropped {self.max_retries} times"
                )
        # Corrupted delivery: the receiver's block checksum rejects the
        # payload and sends a re-request; the sender retransmits (the
        # retransmission may be corrupted again).
        while channel.corrupted(dst):
            retry_sink.charge_corruption(dst, size)
            attempt += 1
            if attempt > self.max_retries:
                raise SendRetriesExhausted(
                    f"send {src}->{dst} corrupted {self.max_retries} times"
                )
        # Duplicated delivery: the receiver dedups, the wire paid twice.
        if channel.duplicated(dst):
            retry_sink.charge_duplicate(dst, size)

    # ------------------------------------------------------------------
    # Per-host ledger views (execution engine)
    # ------------------------------------------------------------------
    def ledger(self, host: int) -> "CommLedger":
        """A private recording view for traffic originated by ``host``."""
        self._check_host(host)
        return CommLedger(self, host)

    def merge_ledger(self, ledger: "CommLedger") -> None:
        """Fold one host's private ledger into the shared accounting.

        Calling this for every host's ledger *in host order* reproduces
        exactly the matrices and per-destination queue order a serial
        host-by-host execution over the shared state would have built.
        """
        isolation.guard_shared(
            "Communicator.merge_ledger",
            "merged a ledger from inside a mapped task; merging is the "
            "barrier's job",
        )
        if self.observer is not None:
            self.observer.on_merge(ledger)
        h = ledger.host
        self.sent_bytes[h, :] += ledger.sent_bytes
        self.sent_messages[h, :] += ledger.sent_messages
        self.retry_bytes[h, :] += ledger.retry_bytes
        self.retry_messages[h, :] += ledger.retry_messages
        self.backoff_units[h] += ledger.backoff_units
        self._stream_bytes[h, :] += ledger.stream_bytes
        self._stream_logical[h, :] += ledger.stream_logical
        for dst, tag, payload in ledger.queued:
            self._queues[(dst, tag)].append((h, payload))
        ledger.queued = []

    def _stream_messages(self) -> np.ndarray:
        """Network messages implied by the coalesced streams."""
        if self.buffer_size > 0:
            return np.ceil(self._stream_bytes / self.buffer_size)
        return self._stream_logical

    def _message_count(self, nbytes: int, logical_messages: int) -> int:
        if self.buffer_size > 0:
            return max(1, math.ceil(nbytes / self.buffer_size))
        return max(1, logical_messages)

    def recv_all(self, dst: int, tag: str = "default") -> list[tuple[int, Any]]:
        """All messages queued for ``dst`` under ``tag`` (drains the queue)."""
        if isolation._depth:
            # A mapped task may drain only its own queue: queues are
            # appended to exclusively at merge barriers, so own-queue
            # reads are race-free by construction.
            isolation.guard_owned(dst, "Communicator.recv_all")
        self._check_host(dst)
        q = self._queues.get((dst, tag))
        if not q:
            return []
        out = list(q)
        q.clear()
        if self.observer is not None:
            self.observer.on_recv(dst, tag, len(out))
        return out

    def pending(self, dst: int, tag: str = "default") -> int:
        """Number of undelivered messages for ``dst``."""
        return len(self._queues.get((dst, tag), ()))

    def replay_recv(self, dst: int, tag: str, count: int) -> None:
        """Re-play a worker process's drain of ``dst``'s queue.

        The process executor's workers drain queues against their
        copy-on-write snapshot of this communicator; at the barrier the
        parent removes the same ``count`` oldest entries here so queue
        state and the observer's drain tally match what a serial sweep
        would have produced.  Entries merged from other hosts at the
        same barrier are appended *behind* the snapshot the worker saw,
        so popping from the front removes exactly the drained messages.
        """
        self._check_host(dst)
        if count <= 0:
            return
        q = self._queues.get((dst, tag))
        if q is None or len(q) < count:
            have = 0 if q is None else len(q)
            raise RuntimeError(
                f"replay_recv({dst}, {tag!r}): worker drained {count} "
                f"message(s) but only {have} are queued; the queue was "
                "mutated outside the barrier protocol"
            )
        for _ in range(count):
            q.popleft()
        if self.observer is not None:
            self.observer.on_recv(dst, tag, count)

    def snapshot_queues(self, dst: int) -> dict[str, list[tuple[int, Any]]]:
        """Non-draining FIFO snapshot of every non-empty queue for ``dst``.

        The pooled process executor ships this to the worker that runs
        ``dst``'s task, where :meth:`preload_queues` installs it into a
        fresh worker-side communicator; the parent's queues stay intact
        until :meth:`replay_recv` re-plays the worker's drains at the
        barrier.  Iteration order is the queues' insertion order, which
        is deterministic under the barrier protocol.
        """
        self._check_host(dst)
        out: dict[str, list[tuple[int, Any]]] = {}
        for (d, tag), q in self._queues.items():
            if d == dst and q:
                out[tag] = list(q)
        return out

    def preload_queues(
        self, dst: int, snapshot: Mapping[str, list[tuple[int, Any]]]
    ) -> None:
        """Install a :meth:`snapshot_queues` snapshot (worker side)."""
        self._check_host(dst)
        for tag, entries in snapshot.items():
            self._queues[(dst, tag)].extend(entries)

    # ------------------------------------------------------------------
    # Columnar batch path (repro.runtime.colfab)
    # ------------------------------------------------------------------
    def send_batch(
        self,
        src: int,
        dst: int,
        batch: MessageBatch,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None:
        """Send one columnar block: exactly one transport send.

        Accounting, fault-injection draws, queue entries, and observer
        hooks are those of :meth:`send` with the same ``(nbytes,
        logical_messages, coalesce, tag)`` — the batch path never has
        its own cost model.  ``nbytes`` defaults to the batch's O(1)
        exact size.
        """
        if not isinstance(batch, MessageBatch):
            raise TypeError(
                f"send_batch wants a MessageBatch, got {type(batch).__name__}"
            )
        self.send(
            src, dst, batch, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all_batch(
        self, dst: int, tag: str, schema: ColumnSchema
    ) -> ReceivedBatch:
        """Drain ``dst``'s queue for ``tag`` as one concatenated batch.

        Every queued payload must be a :class:`MessageBatch` of
        ``schema``; blocks are concatenated in the same FIFO order
        :meth:`recv_all` would have returned them, with the per-block
        sources preserved (``srcs``/``src_column``).
        """
        return ReceivedBatch(schema, self.recv_all(dst, tag))

    def accumulator(self, src: int) -> BatchAccumulator:
        """A per-host batch accumulator flushing through :meth:`send_batch`."""
        self._check_host(src)
        return BatchAccumulator(_BoundBatchSender(self, src), host=src)

    # ------------------------------------------------------------------
    # Collectives (payload-carrying, with cost events)
    # ------------------------------------------------------------------
    def allreduce_sum(
        self,
        contributions: Iterable[np.ndarray],
        blocking: bool = True,
        nbytes: float | None = None,
    ) -> np.ndarray:
        """Element-wise sum across hosts; every host gets the result.

        ``blocking=False`` records the collective as asynchronous: hosts
        do not wait at the round boundary (CuSP's master-assignment
        synchronization, paper §IV-D5), so the cost model charges volume
        but not a latency tree.  ``nbytes`` overrides the charged volume
        when the exchanged representation is smaller than the dense
        result (e.g. sparse delta synchronization).
        """
        isolation.guard_shared("Communicator.allreduce_sum")
        arrays = [np.asarray(c) for c in contributions]
        if len(arrays) != self.num_hosts:
            raise ValueError("one contribution per host required")
        result = arrays[0].copy()
        for a in arrays[1:]:
            result = result + a
        kind = "allreduce" if blocking else "allreduce-async"
        charged = float(result.nbytes) if nbytes is None else float(nbytes)
        self.collective_events.append((kind, charged))
        return result

    def allreduce_max(
        self,
        contributions: Iterable[np.ndarray],
        nbytes: float | None = None,
    ) -> np.ndarray:
        isolation.guard_shared("Communicator.allreduce_max")
        arrays = [np.asarray(c) for c in contributions]
        if len(arrays) != self.num_hosts:
            raise ValueError("one contribution per host required")
        result = arrays[0].copy()
        for a in arrays[1:]:
            np.maximum(result, a, out=result)
        charged = float(result.nbytes) if nbytes is None else float(nbytes)
        self.collective_events.append(("allreduce", charged))
        return result

    def allgather(self, contributions: list[Any]) -> list[Any]:
        """Every host receives the list of all contributions."""
        isolation.guard_shared("Communicator.allgather")
        if len(contributions) != self.num_hosts:
            raise ValueError("one contribution per host required")
        nbytes = sum(payload_nbytes(c) for c in contributions)
        self.collective_events.append(("allgather", float(nbytes)))
        return list(contributions)

    def barrier(self) -> None:
        """Record a global synchronization point."""
        isolation.guard_shared("Communicator.barrier")
        self.barriers += 1

    # ------------------------------------------------------------------
    # Accounting queries
    # ------------------------------------------------------------------
    def total_bytes(self) -> float:
        """All bytes sent between distinct hosts, retransmissions included."""
        return float(self.sent_bytes.sum() + self.retry_bytes.sum())

    def total_messages(self) -> float:
        return float(
            self.sent_messages.sum()
            + self._stream_messages().sum()
            + self.retry_messages.sum()
        )

    def total_retry_bytes(self) -> float:
        """Bytes spent on fault-induced retransmissions only."""
        return float(self.retry_bytes.sum())

    def total_retry_messages(self) -> float:
        return float(self.retry_messages.sum())

    def host_sent(self, host: int) -> float:
        return float(self.sent_bytes[host, :].sum() + self.retry_bytes[host, :].sum())

    def host_received(self, host: int) -> float:
        return float(self.sent_bytes[:, host].sum() + self.retry_bytes[:, host].sum())

    def host_messages(self, host: int) -> float:
        """Messages originated by ``host``."""
        return float(
            self.sent_messages[host, :].sum()
            + self._stream_messages()[host, :].sum()
            + self.retry_messages[host, :].sum()
        )

    def partners(self, host: int) -> int:
        """Number of distinct peers ``host`` exchanged data with.

        Retry traffic counts: a peer reached only through charged
        retransmissions was still contacted.
        """
        out = self.sent_bytes[host, :] + self.retry_bytes[host, :]
        inc = self.sent_bytes[:, host] + self.retry_bytes[:, host]
        mask = (out > 0) | (inc > 0)
        mask[host] = False
        return int(mask.sum())

    def _check_host(self, h: int) -> None:
        if not (0 <= h < self.num_hosts):
            raise ValueError(f"host {h} out of range [0, {self.num_hosts})")


class _BoundBatchSender:
    """Adapter binding a communicator's batch send to one source host."""

    __slots__ = ("comm", "src")

    def __init__(self, comm: Communicator, src: int):
        self.comm = comm
        self.src = src

    def send_batch(
        self,
        dst: int,
        batch: MessageBatch,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None:
        self.comm.send_batch(
            self.src, dst, batch, tag=tag,
            logical_messages=logical_messages, nbytes=nbytes,
            coalesce=coalesce,
        )


class _DirectRetrySink:
    """Retry sink that charges straight to the shared matrices."""

    __slots__ = ("comm", "src")

    def __init__(self, comm: Communicator, src: int):
        self.comm = comm
        self.src = src

    def charge_retry(self, dst: int, size: int, attempt: int) -> None:
        self.comm.retry_bytes[self.src, dst] += size
        self.comm.retry_messages[self.src, dst] += 1
        self.comm.backoff_units[self.src] += 2.0 ** attempt

    def charge_duplicate(self, dst: int, size: int) -> None:
        self.comm.retry_bytes[self.src, dst] += size
        self.comm.retry_messages[self.src, dst] += 1

    def charge_corruption(self, dst: int, size: int) -> None:
        # A checksum failure costs two wire messages on the src->dst
        # channel: the receiver's one-word re-request plus the sender's
        # full retransmission (matching retry_event_channels' weight 2).
        self.comm.retry_bytes[self.src, dst] += size + 8
        self.comm.retry_messages[self.src, dst] += 2


class CommLedger:
    """Private per-host recording view over a :class:`Communicator`.

    A ledger accumulates one host's outbound accounting in private
    vectors (one slot per destination) and buffers its outbound payloads
    without touching the communicator's shared queues.  Fault-injection
    draws still happen live against the host's own
    :class:`~repro.runtime.faults.HostFaultChannel`, whose event stream
    is redirected into the ledger so discarded parallel work never
    leaks events.  :meth:`Communicator.merge_ledger` folds everything
    back in at a phase barrier.
    """

    def __init__(self, comm: Communicator, host: int):
        self.comm = comm
        self.host = host
        n = comm.num_hosts
        self.sent_bytes = np.zeros(n, dtype=np.float64)
        self.sent_messages = np.zeros(n, dtype=np.float64)
        self.retry_bytes = np.zeros(n, dtype=np.float64)
        self.retry_messages = np.zeros(n, dtype=np.float64)
        self.stream_bytes = np.zeros(n, dtype=np.float64)
        self.stream_logical = np.zeros(n, dtype=np.float64)
        self.backoff_units = 0.0
        #: Buffered outbound payloads as (dst, tag, payload), in send order.
        self.queued: list[tuple[int, str, Any]] = []
        #: Fault events drawn while recording on this ledger (merged into
        #: the injector's shared stream by the executor, in host order).
        self.fault_events: list[FaultEvent] = []

    def send(
        self,
        dst: int,
        payload: Any,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None:
        """Record a send from this ledger's host (same semantics as
        :meth:`Communicator.send`, minus the shared-state writes)."""
        if isolation._depth:
            isolation.guard_owned(self.host, "CommLedger.send")
        comm = self.comm
        comm._check_host(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if self.host != dst and comm.injector is not None:
            comm._run_faulty_transport(self.host, dst, size, self)
        if self.host != dst:
            self.sent_bytes[dst] += size
            if coalesce:
                self.stream_bytes[dst] += size
                self.stream_logical[dst] += max(1, logical_messages)
            else:
                self.sent_messages[dst] += comm._message_count(
                    size, logical_messages
                )
        self.queued.append((dst, tag, payload))

    def send_batch(
        self,
        dst: int,
        batch: MessageBatch,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None:
        """Record one columnar block (one send) on this ledger."""
        if not isinstance(batch, MessageBatch):
            raise TypeError(
                f"send_batch wants a MessageBatch, got {type(batch).__name__}"
            )
        self.send(
            dst, batch, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def accumulator(self) -> BatchAccumulator:
        """A batch accumulator flushing through this private ledger."""
        return BatchAccumulator(self, host=self.host)

    def charge_retry(self, dst: int, size: int, attempt: int) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "CommLedger.charge_retry")
        self.retry_bytes[dst] += size
        self.retry_messages[dst] += 1
        self.backoff_units += 2.0 ** attempt

    def charge_duplicate(self, dst: int, size: int) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "CommLedger.charge_duplicate")
        self.retry_bytes[dst] += size
        self.retry_messages[dst] += 1

    def charge_corruption(self, dst: int, size: int) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "CommLedger.charge_corruption")
        # Re-request (one word) + retransmission, as in _DirectRetrySink.
        self.retry_bytes[dst] += size + 8
        self.retry_messages[dst] += 2
