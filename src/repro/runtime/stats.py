"""Per-phase work accounting and simulated-time reports."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .comm import Communicator
from .cost_model import CostModel

__all__ = ["PhaseStats", "PhaseReport", "TimeBreakdown"]


@dataclass
class PhaseStats:
    """Everything one bulk-synchronous phase did, exactly counted."""

    name: str
    num_hosts: int
    comm: Communicator
    disk_bytes: np.ndarray = field(default=None)
    compute_units: np.ndarray = field(default=None)
    #: Optional per-host compute speed factors (straggler modeling).
    host_speeds: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.disk_bytes is None:
            self.disk_bytes = np.zeros(self.num_hosts, dtype=np.float64)
        if self.compute_units is None:
            self.compute_units = np.zeros(self.num_hosts, dtype=np.float64)

    def add_disk(self, host: int, nbytes: float) -> None:
        self.disk_bytes[host] += nbytes

    def add_compute(self, host: int, units: float) -> None:
        self.compute_units[host] += units

    def report(self, model: CostModel) -> "PhaseReport":
        """Evaluate this phase under ``model``.

        The phase is bulk-synchronous: its duration is the slowest host's
        disk + compute + point-to-point communication time, plus the cost
        of collectives and barriers (which involve every host).
        """
        disk_times = model.disk_time(list(self.disk_bytes))
        per_host = np.zeros(self.num_hosts, dtype=np.float64)
        disk_part = comp_part = comm_part = 0.0
        slowest = 0
        for h in range(self.num_hosts):
            d = disk_times[h]
            c = model.compute_time(float(self.compute_units[h]))
            if self.host_speeds is not None:
                c /= float(self.host_speeds[h])
            m = model.comm_time(
                self.comm.host_sent(h),
                self.comm.host_received(h),
                self.comm.host_messages(h),
            )
            # CuSP dedicates a communication hyperthread per host
            # (paper §IV-D1), so communication overlaps computation: a
            # host's phase time is its disk time plus whichever of
            # compute/communication dominates.
            per_host[h] = d + max(c, m)
            if per_host[h] >= per_host[slowest]:
                slowest = h
                disk_part, comp_part, comm_part = d, c, m
        collective = sum(
            model.allreduce_time(
                nbytes, self.num_hosts, blocking=(kind != "allreduce-async")
            )
            for kind, nbytes in self.comm.collective_events
        )
        collective += self.comm.barriers * model.barrier_latency
        total = float(per_host.max(initial=0.0)) + collective
        return PhaseReport(
            name=self.name,
            total=total,
            disk=disk_part,
            compute=comp_part,
            comm=comm_part,
            collective=collective,
            comm_bytes=self.comm.total_bytes(),
            comm_messages=self.comm.total_messages(),
        )


@dataclass(frozen=True)
class PhaseReport:
    """Simulated timing of one phase (one bar segment of Figure 4)."""

    name: str
    total: float
    disk: float
    compute: float
    comm: float
    collective: float
    comm_bytes: float
    comm_messages: float


@dataclass
class TimeBreakdown:
    """Partitioning (or application) time split by phase (Figure 4)."""

    phases: list[PhaseReport]

    @property
    def total(self) -> float:
        return sum(p.total for p in self.phases)

    def by_phase(self) -> dict[str, float]:
        return {p.name: p.total for p in self.phases}

    def phase(self, name: str) -> PhaseReport:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r}")

    def comm_bytes(self, name: str | None = None) -> float:
        """Bytes communicated, for one phase or in total."""
        if name is None:
            return sum(p.comm_bytes for p in self.phases)
        return self.phase(name).comm_bytes
