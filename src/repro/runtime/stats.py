"""Per-phase work accounting and simulated-time reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..analysis import isolation
from .comm import Communicator
from .cost_model import CostModel

if TYPE_CHECKING:
    from .executor import Executor

__all__ = ["PhaseStats", "PhaseReport", "TimeBreakdown"]


@dataclass
class PhaseStats:
    """Everything one bulk-synchronous phase did, exactly counted."""

    name: str
    num_hosts: int
    comm: Communicator
    disk_bytes: np.ndarray = field(default=None)
    compute_units: np.ndarray = field(default=None)
    #: Optional per-host compute speed factors (straggler modeling).
    host_speeds: np.ndarray = field(default=None)
    #: Optional logical-slot -> physical-host map (crash recovery): work
    #: recorded against a logical slot is executed — and timed — on the
    #: physical host a :class:`~repro.runtime.faults.RecoveryManager`
    #: reassigned it to.
    host_map: np.ndarray = field(default=None)
    #: True when the phase aborted (e.g. an injected host crash): its
    #: partial timing is excluded from the breakdown total, but its
    #: bytes/messages remain visible as recovery cost.
    failed: bool = False
    #: The execution engine driving this phase's per-host tasks
    #: (``None`` means serial reference semantics; see
    #: :mod:`repro.runtime.executor`).
    executor: "Executor | None" = None

    def __post_init__(self) -> None:
        if self.disk_bytes is None:
            self.disk_bytes = np.zeros(self.num_hosts, dtype=np.float64)
        if self.compute_units is None:
            self.compute_units = np.zeros(self.num_hosts, dtype=np.float64)
        if self.executor is None:
            from .executor import SerialExecutor

            self.executor = SerialExecutor()

    def add_disk(self, host: int, nbytes: float) -> None:
        if isolation._depth:
            # Mapped tasks must charge through their HostView: a direct
            # write to the shared per-host vectors races the barrier
            # merge (and dodges the private disk/compute accumulators).
            isolation.guard_shared(
                "PhaseStats.add_disk",
                f"charged disk for host {host} on shared PhaseStats, "
                "bypassing the HostView",
            )
        if self.comm.injector is not None:
            self.comm.injector.channel(host).tick()
        self.disk_bytes[host] += nbytes

    def add_compute(self, host: int, units: float) -> None:
        if isolation._depth:
            isolation.guard_shared(
                "PhaseStats.add_compute",
                f"charged compute for host {host} on shared PhaseStats, "
                "bypassing the HostView",
            )
        if self.comm.injector is not None:
            self.comm.injector.channel(host).tick()
        self.compute_units[host] += units

    def _executor_of(self) -> np.ndarray:
        if self.host_map is None:
            return np.arange(self.num_hosts, dtype=np.int64)
        return np.asarray(self.host_map, dtype=np.int64)

    def per_host_times(
        self, model: CostModel
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-physical-host phase times under ``model``.

        Folds each logical slot's recorded work onto the physical host
        executing it (the ``host_map``) and returns ``(total, disk,
        compute, comm)`` vectors indexed by physical host, excluding
        collectives/barriers (which involve every host equally).  This
        is both the inner loop of :meth:`report` and the signal the run
        supervisor's straggler detector reads: a host whose total is far
        above its peers' is holding the bulk-synchronous barrier hostage.
        """
        executor = self._executor_of()
        disk = np.zeros(self.num_hosts, dtype=np.float64)
        units = np.zeros(self.num_hosts, dtype=np.float64)
        sent = np.zeros(self.num_hosts, dtype=np.float64)
        recv = np.zeros(self.num_hosts, dtype=np.float64)
        msgs = np.zeros(self.num_hosts, dtype=np.float64)
        backoff = np.zeros(self.num_hosts, dtype=np.float64)
        for slot in range(self.num_hosts):
            p = int(executor[slot])
            disk[p] += self.disk_bytes[slot]
            units[p] += self.compute_units[slot]
            sent[p] += self.comm.host_sent(slot)
            recv[p] += self.comm.host_received(slot)
            msgs[p] += self.comm.host_messages(slot)
            backoff[p] += self.comm.backoff_units[slot]

        disk_times = model.disk_time(list(disk))
        per_host = np.zeros(self.num_hosts, dtype=np.float64)
        disk_v = np.zeros(self.num_hosts, dtype=np.float64)
        comp_v = np.zeros(self.num_hosts, dtype=np.float64)
        comm_v = np.zeros(self.num_hosts, dtype=np.float64)
        for h in range(self.num_hosts):
            d = disk_times[h]
            c = model.compute_time(float(units[h]))
            if self.host_speeds is not None:
                c /= float(self.host_speeds[h])
            m = model.comm_time(sent[h], recv[h], msgs[h])
            m += backoff[h] * model.retry_backoff
            # CuSP dedicates a communication hyperthread per host
            # (paper §IV-D1), so communication overlaps computation: a
            # host's phase time is its disk time plus whichever of
            # compute/communication dominates.
            disk_v[h], comp_v[h], comm_v[h] = d, c, m
            per_host[h] = d + max(c, m)
        return per_host, disk_v, comp_v, comm_v

    def report(self, model: CostModel) -> "PhaseReport":
        """Evaluate this phase under ``model``.

        The phase is bulk-synchronous: its duration is the slowest host's
        disk + compute + point-to-point communication time, plus the cost
        of collectives and barriers (which involve every host).  When a
        ``host_map`` is set, each logical slot's work is first folded onto
        the physical host executing it, so a survivor that adopted a dead
        host's slice pays for both.
        """
        per_host, disk_v, comp_v, comm_v = self.per_host_times(model)
        disk_part = comp_part = comm_part = 0.0
        slowest = 0
        for h in range(self.num_hosts):
            if per_host[h] >= per_host[slowest]:
                slowest = h
                disk_part = float(disk_v[h])
                comp_part = float(comp_v[h])
                comm_part = float(comm_v[h])
        collective = sum(
            model.allreduce_time(
                nbytes, self.num_hosts, blocking=(kind != "allreduce-async")
            )
            for kind, nbytes in self.comm.collective_events
        )
        collective += self.comm.barriers * model.barrier_latency
        total = float(per_host.max(initial=0.0)) + collective
        return PhaseReport(
            name=self.name,
            total=total,
            disk=disk_part,
            compute=comp_part,
            comm=comm_part,
            collective=collective,
            comm_bytes=self.comm.total_bytes(),
            comm_messages=self.comm.total_messages(),
            retry_bytes=self.comm.total_retry_bytes(),
            retry_messages=self.comm.total_retry_messages(),
            failed=self.failed,
        )


@dataclass(frozen=True)
class PhaseReport:
    """Simulated timing of one phase (one bar segment of Figure 4)."""

    name: str
    total: float
    disk: float
    compute: float
    comm: float
    collective: float
    comm_bytes: float
    comm_messages: float
    #: Bytes/messages spent on fault-induced retransmissions (subset of
    #: ``comm_bytes``/``comm_messages``).
    retry_bytes: float = 0.0
    retry_messages: float = 0.0
    #: True for a phase attempt that aborted (host crash) and was replayed.
    failed: bool = False

    def to_dict(self) -> dict[str, str | float | bool]:
        """JSON-serializable form (for checkpointed runtime state).

        Floats survive a JSON round-trip bit-exactly, so a resumed run's
        restored reports equal the originals — which is what makes the
        resumed :class:`TimeBreakdown` *exactly* the uninterrupted one.
        """
        return {
            "name": self.name,
            "total": self.total,
            "disk": self.disk,
            "compute": self.compute,
            "comm": self.comm,
            "collective": self.collective,
            "comm_bytes": self.comm_bytes,
            "comm_messages": self.comm_messages,
            "retry_bytes": self.retry_bytes,
            "retry_messages": self.retry_messages,
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PhaseReport":
        return cls(
            name=str(doc["name"]),
            total=float(doc["total"]),
            disk=float(doc["disk"]),
            compute=float(doc["compute"]),
            comm=float(doc["comm"]),
            collective=float(doc["collective"]),
            comm_bytes=float(doc["comm_bytes"]),
            comm_messages=float(doc["comm_messages"]),
            retry_bytes=float(doc["retry_bytes"]),
            retry_messages=float(doc["retry_messages"]),
            failed=bool(doc["failed"]),
        )


@dataclass
class TimeBreakdown:
    """Partitioning (or application) time split by phase (Figure 4).

    A fault-free run has one report per phase.  Under injected host
    crashes, aborted attempts stay in :attr:`phases` marked ``failed``
    (their bytes/messages are real recovery cost) followed by their
    successful replay; :attr:`total` counts only completed phases.
    """

    phases: list[PhaseReport]

    @property
    def total(self) -> float:
        return sum(p.total for p in self.phases if not p.failed)

    def by_phase(self) -> dict[str, float]:
        return {p.name: p.total for p in self.phases if not p.failed}

    def phase(self, name: str) -> PhaseReport:
        """The (last successful) report for ``name``.

        Falls back to the last failed attempt when the phase never
        completed.
        """
        matches = [p for p in self.phases if p.name == name]
        if not matches:
            raise KeyError(f"no phase named {name!r}")
        for p in reversed(matches):
            if not p.failed:
                return p
        return matches[-1]

    def failed_phases(self) -> list[PhaseReport]:
        """Aborted attempts (empty for a fault-free run)."""
        return [p for p in self.phases if p.failed]

    def comm_bytes(self, name: str | None = None) -> float:
        """Bytes communicated, for one phase or in total.

        The total includes failed attempts and retransmissions: recovery
        traffic is real traffic.
        """
        if name is None:
            return sum(p.comm_bytes for p in self.phases)
        return self.phase(name).comm_bytes

    def retry_bytes(self) -> float:
        """Bytes spent on fault-induced retransmissions across all phases."""
        return sum(p.retry_bytes for p in self.phases)

    def retry_messages(self) -> float:
        return sum(p.retry_messages for p in self.phases)
