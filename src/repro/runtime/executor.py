"""Pluggable per-host execution engine for the five CuSP phases.

Phase bodies used to drive hosts with inline ``for h in range(num_hosts)``
loops over shared accounting state, which welds the streaming algorithm
to single-threaded execution.  This module separates *what a host
computes* from *how the hosts are driven*:

* :class:`HostTask` — one host's closure over a phase's per-host work,
  expressed against a :class:`HostView` (send / recv / disk / compute
  charges);
* :class:`Executor` — the driving strategy.  :class:`SerialExecutor`
  runs tasks host-by-host against the shared ledgers (the deterministic
  reference, exactly the old inline-loop semantics).
  :class:`ParallelExecutor` runs them on a thread pool, each host
  recording onto a *private* :class:`~repro.runtime.comm.CommLedger`
  (plus private disk/compute accumulators and a redirected fault-event
  sink) that is merged back in **host order** at the barrier.

Determinism argument (why parallel is bit-identical to serial):

1. *Accounting*: merge adds each host's private vectors into its own row
   of the shared matrices — addition order across rows is irrelevant,
   and within a row the ledger preserved the host's own send order.
2. *Message queues*: merging in host order appends each destination's
   payloads in exactly the (src-major) order a serial sweep would have
   produced, so every receiver drains an identical queue.
3. *Faults*: fault draws come from per-host generators seeded by
   ``(plan.seed, phase attempt, host)`` and tick on the host's own
   logical-op counter (:mod:`repro.runtime.faults`), so the decision
   sequence is independent of thread interleaving.  Fault events are
   buffered per ledger and concatenated in host order.
4. *Failures*: if hosts raise, the executor keeps the outcome of the
   first raising host in host order — ledgers of earlier hosts merge
   fully, the raising host's partial ledger merges as-is (serial charges
   everything up to the raise), later hosts' ledgers are discarded along
   with any crash they fired (serial would never have run them) — and
   re-raises.  Phase bodies are replay-safe (fresh state per attempt),
   so the discarded extra work of concurrent hosts is unobservable.

Work whose *algorithm* is cross-host sequential — a stateful edge rule
where host ``h+1`` must score against the state host ``h`` just updated —
goes through :meth:`Executor.chain`, which every executor runs
sequentially against the shared ledgers: bit-identity forbids
parallelism there, and pretending otherwise would change the partition.

Collectives (``allreduce_*``/``allgather``/``barrier``) are phase-global
and must be issued between task submissions, never inside a mapped task.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..analysis import isolation
from .colfab import BatchAccumulator, ColumnSchema, MessageBatch, ReceivedBatch

if TYPE_CHECKING:
    from .stats import PhaseStats

__all__ = [
    "HostTask",
    "HostView",
    "DirectHostView",
    "LedgerHostView",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
]

EXECUTOR_NAMES = ("serial", "parallel", "parallel-checked")


@dataclass(frozen=True)
class HostTask:
    """One host's unit of phase work: a closure plus the host it charges.

    ``fn`` receives a :class:`HostView` and performs the host's compute,
    declaring its communication and compute/disk charges through the
    view.  It must touch shared structures only through the view (or
    through per-host slices no other task writes).
    """

    host: int
    fn: Callable[["HostView"], Any]
    label: str = ""


class HostView:
    """What one host's task sees of the cluster (interface).

    Concrete views route every charge either straight to the shared
    phase ledgers (:class:`DirectHostView`) or to private per-host
    ledgers merged at the barrier (:class:`LedgerHostView`).  Phase code
    is written against this interface only.
    """

    host: int
    _accumulators: "list[BatchAccumulator] | None"

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        raise NotImplementedError

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        raise NotImplementedError

    def send_batch(self, dst: int, batch: MessageBatch,
                   tag: str = "default", logical_messages: int = 1,
                   nbytes: int | None = None,
                   coalesce: bool = False) -> None:
        """One columnar block = one transport send (same cost model)."""
        self.send(
            dst, batch, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        raise NotImplementedError

    def accumulator(self) -> BatchAccumulator:
        """A batch accumulator owned by this host's task.

        Channels left staged when the task body returns are flushed by
        the executor at the phase barrier, in append order.
        """
        acc = BatchAccumulator(self, host=self.host)
        if self._accumulators is None:
            self._accumulators = []
        self._accumulators.append(acc)
        return acc

    def flush_accumulators(self) -> None:
        """Flush every accumulator handed out by :meth:`accumulator`."""
        if self._accumulators:
            for acc in self._accumulators:
                acc.flush_all()

    def add_disk(self, nbytes: float) -> None:
        raise NotImplementedError

    def add_compute(self, units: float) -> None:
        raise NotImplementedError


class DirectHostView(HostView):
    """Charges land immediately on the shared ``PhaseStats``/``Communicator``."""

    __slots__ = ("_stats", "host", "_accumulators")

    def __init__(self, stats: PhaseStats, host: int):
        self._stats = stats
        self.host = int(host)
        self._accumulators = None

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        self._stats.comm.send(
            self.host, dst, payload, tag=tag,
            logical_messages=logical_messages, nbytes=nbytes,
            coalesce=coalesce,
        )

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        return self._stats.comm.recv_all(self.host, tag)

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return self._stats.comm.recv_all_batch(self.host, tag, schema)

    def add_disk(self, nbytes: float) -> None:
        self._stats.add_disk(self.host, nbytes)

    def add_compute(self, units: float) -> None:
        self._stats.add_compute(self.host, units)


class LedgerHostView(HostView):
    """Charges accumulate privately; :meth:`merge` folds them in.

    Creating the view redirects the host's fault channel to the private
    ledger so events drawn by a concurrently-running host can be merged
    (or discarded) deterministically.  Receiving is read-only on the
    host's own queues — safe because queues are only ever appended to at
    merge barriers, and each host drains only its own.
    """

    __slots__ = ("_stats", "_channel", "host", "ledger",
                 "disk_bytes", "compute_units", "_accumulators")

    def __init__(self, stats: PhaseStats, host: int):
        self._stats = stats
        self.host = int(host)
        self.ledger = stats.comm.ledger(host)
        self.disk_bytes = 0.0
        self.compute_units = 0.0
        self._accumulators = None
        injector = stats.comm.injector
        self._channel = None
        if injector is not None:
            self._channel = injector.channel(host)
            self._channel.events_out = self.ledger.fault_events

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        self.ledger.send(
            dst, payload, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        return self._stats.comm.recv_all(self.host, tag)

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return self._stats.comm.recv_all_batch(self.host, tag, schema)

    def add_disk(self, nbytes: float) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "HostView.add_disk")
        if self._channel is not None:
            self._channel.tick()
        self.disk_bytes += nbytes

    def add_compute(self, units: float) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "HostView.add_compute")
        if self._channel is not None:
            self._channel.tick()
        self.compute_units += units

    def merge(self) -> None:
        """Fold this host's private charges into the shared state."""
        stats = self._stats
        stats.comm.merge_ledger(self.ledger)
        stats.disk_bytes[self.host] += self.disk_bytes
        stats.compute_units[self.host] += self.compute_units
        self.disk_bytes = 0.0
        self.compute_units = 0.0
        injector = stats.comm.injector
        if injector is not None and self._channel is not None:
            injector.events.extend(self.ledger.fault_events)
            self.ledger.fault_events = []
            injector.commit(self._channel)
            self._channel.events_out = injector.events

    def release(self) -> None:
        """Discard this host's private charges (work serial never ran)."""
        injector = self._stats.comm.injector
        if injector is not None and self._channel is not None:
            self._channel.fired.clear()
            self._channel.events_out = injector.events


class Executor:
    """Strategy for driving a phase's per-host tasks."""

    name = "abstract"

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        """Run independent per-host tasks; return results in task order.

        A barrier: every task has completed (and, for the parallel
        executor, every surviving ledger has merged) before this returns.
        Raises the first raising host's exception, in host order.
        """
        raise NotImplementedError

    def chain(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        """Run cross-host-*dependent* tasks sequentially in task order.

        Used when host h+1's algorithm reads state host h wrote (e.g.
        stateful streaming edge rules): identical under every executor
        by construction.
        """
        return [_run_direct(stats, task) for task in tasks]


def _run_direct(stats: PhaseStats, task: HostTask) -> Any:
    """Run one task on the shared ledgers, flushing staged batches at
    the end of the body (the serial phase barrier)."""
    view = DirectHostView(stats, task.host)
    result = task.fn(view)
    view.flush_accumulators()
    return result


class SerialExecutor(Executor):
    """Deterministic reference: host-by-host over the shared ledgers."""

    name = "serial"

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        return [_run_direct(stats, task) for task in tasks]


class ParallelExecutor(Executor):
    """Thread pool over private per-host ledgers, merged in host order.

    NumPy kernels release the GIL, so per-host work genuinely overlaps.
    The pool is created lazily and reused across phases.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        check_isolation: bool = False,
        monitor: "isolation.IsolationMonitor | None" = None,
    ):
        """``check_isolation=True`` attaches a fresh
        :class:`~repro.analysis.isolation.IsolationMonitor` (or pass
        your own via ``monitor=``): every mapped task then runs under a
        thread-local ownership context, any cross-host access raises
        :class:`~repro.analysis.isolation.IsolationViolation`, and the
        monitor logs each sanctioned (host, phase, op, attribute)
        access.  Off by default — the guards cost a few percent on
        charge-heavy phases."""
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        if monitor is None and check_isolation:
            monitor = isolation.IsolationMonitor()
        self.monitor = monitor

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        workers = self._max_workers
        if workers is None:
            workers = max(2, min(width, os.cpu_count() or 1))
        if self._pool is None or self._pool._max_workers < workers:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-host"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        hosts = [t.host for t in tasks]
        if len(set(hosts)) != len(hosts):
            raise ValueError("one task per host required in run()")
        if len(tasks) == 1:
            # No concurrency to gain; keep the direct (zero-copy) path.
            return [_run_direct(stats, tasks[0])]
        views = [LedgerHostView(stats, t.host) for t in tasks]
        pool = self._ensure_pool(len(tasks))
        phase_name = getattr(stats, "name", "")
        futures = [
            pool.submit(
                self._guarded, t.fn, v, self.monitor, phase_name, t.label
            )
            for t, v in zip(tasks, views)
        ]
        outcomes = [f.result() for f in futures]
        # Barrier: merge in host order; keep the first failure in host
        # order and discard everything a serial sweep would not have run.
        order = sorted(range(len(tasks)), key=lambda i: tasks[i].host)
        failed_at = None
        for pos, i in enumerate(order):
            result, exc = outcomes[i]
            views[i].merge()
            if exc is not None:
                failed_at = pos
                break
        if failed_at is not None:
            for i in order[failed_at + 1:]:
                views[i].release()
            raise outcomes[order[failed_at]][1]
        return [outcomes[i][0] for i in range(len(tasks))]

    @staticmethod
    def _guarded(
        fn: Callable[[HostView], Any],
        view: HostView,
        monitor: isolation.IsolationMonitor | None,
        phase_name: str,
        label: str,
    ) -> tuple[Any, Exception | None]:
        try:
            if monitor is not None:
                with monitor.task(view.host, phase_name, label):
                    result = fn(view)
                    view.flush_accumulators()
                    return result, None
            result = fn(view)
            view.flush_accumulators()
            return result, None
        except Exception as exc:  # noqa: BLE001 — re-raised at the barrier
            return None, exc


def make_executor(spec: str | Executor | None) -> Executor:
    """Resolve an executor from a name, ``None``, or an instance."""
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "parallel":
            return ParallelExecutor()
        if spec == "parallel-checked":
            # Parallel with the host-isolation race detector attached
            # (repro.analysis.isolation): same bit-identical results,
            # plus a proof that no task left its lane.
            return ParallelExecutor(check_isolation=True)
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {EXECUTOR_NAMES}"
        )
    raise TypeError(f"cannot build an executor from {type(spec).__name__}")
