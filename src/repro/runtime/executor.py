"""Pluggable per-host execution engine for the five CuSP phases.

Phase bodies used to drive hosts with inline ``for h in range(num_hosts)``
loops over shared accounting state, which welds the streaming algorithm
to single-threaded execution.  This module separates *what a host
computes* from *how the hosts are driven*:

* :class:`HostTask` — one host's closure over a phase's per-host work,
  expressed against a :class:`HostView` (send / recv / disk / compute
  charges);
* :class:`Executor` — the driving strategy.  :class:`SerialExecutor`
  runs tasks host-by-host against the shared ledgers (the deterministic
  reference, exactly the old inline-loop semantics).
  :class:`ParallelExecutor` runs them on a thread pool, each host
  recording onto a *private* :class:`~repro.runtime.comm.CommLedger`
  (plus private disk/compute accumulators and a redirected fault-event
  sink) that is merged back in **host order** at the barrier.
  :class:`ProcessExecutor` runs them in forked worker processes — the
  GIL-free engine: each worker gets a copy-on-write snapshot of the
  barrier-entry state, records the same private ledger, and ships a
  picklable delta (accounting vectors, queued payloads on the
  :mod:`~repro.runtime.colfab` wire format, fault-channel RNG state,
  isolation evidence) back over a pipe for the identical host-order
  merge.

The task-payload seam: because a worker's writes die with the worker,
task bodies must not mutate shared structures.  A :class:`HostTask` may
therefore declare a picklable per-host ``payload`` (passed to ``fn`` as
a second argument) and an ``apply`` callback that the executor runs *in
the parent, at the barrier, in host order* with the body's result —
that is where shared-state writes go.  The serial path runs ``apply``
immediately after each body, which is the same order (phases submit
tasks in host order), so the seam changes nothing observably.

Determinism argument (why parallel is bit-identical to serial):

1. *Accounting*: merge adds each host's private vectors into its own row
   of the shared matrices — addition order across rows is irrelevant,
   and within a row the ledger preserved the host's own send order.
2. *Message queues*: merging in host order appends each destination's
   payloads in exactly the (src-major) order a serial sweep would have
   produced, so every receiver drains an identical queue.
3. *Faults*: fault draws come from per-host generators seeded by
   ``(plan.seed, phase attempt, host)`` and tick on the host's own
   logical-op counter (:mod:`repro.runtime.faults`), so the decision
   sequence is independent of thread interleaving.  Fault events are
   buffered per ledger and concatenated in host order.
4. *Failures*: if hosts raise, the executor keeps the outcome of the
   first raising host in host order — ledgers of earlier hosts merge
   fully, the raising host's partial ledger merges as-is (serial charges
   everything up to the raise), later hosts' ledgers are discarded along
   with any crash they fired (serial would never have run them) — and
   re-raises.  Phase bodies are replay-safe (fresh state per attempt),
   so the discarded extra work of concurrent hosts is unobservable.

Work whose *algorithm* is cross-host sequential — a stateful edge rule
where host ``h+1`` must score against the state host ``h`` just updated —
goes through :meth:`Executor.chain`, which every executor runs
sequentially against the shared ledgers: bit-identity forbids
parallelism there, and pretending otherwise would change the partition.

Collectives (``allreduce_*``/``allgather``/``barrier``) are phase-global
and must be issued between task submissions, never inside a mapped task.
"""

from __future__ import annotations

import io
import os
import pickle
import signal
import struct
import sys
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..analysis import isolation
from . import colfab
from .colfab import BatchAccumulator, ColumnSchema, MessageBatch, ReceivedBatch

if TYPE_CHECKING:
    from .stats import PhaseStats

__all__ = [
    "HostTask",
    "HostView",
    "DirectHostView",
    "LedgerHostView",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
]

EXECUTOR_NAMES = (
    "serial", "parallel", "parallel-checked", "process", "process-checked",
)

#: Sentinel distinguishing "no declared payload" from ``payload=None``.
_NO_PAYLOAD = object()

#: Columns at or above this size ride POSIX shared memory instead of the
#: worker's result pipe (see :meth:`MessageBatch.to_bytes`).
_SHM_THRESHOLD = 64 * 1024

_CAN_FORK = hasattr(os, "fork")

#: True inside a resident pool worker (set by ``_pool_worker_main``).
#: Phase code keys worker-local recompute caches off this flag so they
#: never grow in the parent or in throwaway fork-per-barrier children.
_IN_POOL_WORKER = False


@dataclass(frozen=True)
class HostTask:
    """One host's unit of phase work: a closure plus the host it charges.

    ``fn`` receives a :class:`HostView` (plus ``payload``, when one is
    declared) and performs the host's compute, declaring its
    communication and compute/disk charges through the view.  It must
    touch shared structures only through the view (or through per-host
    slices no other task writes).

    ``payload`` is the task's declared input: a picklable value handed
    to ``fn`` as a second argument, which is what lets a worker process
    run the body against its own copy of the world.  ``apply`` is the
    declared output seam: the executor calls it in the parent, at the
    barrier, in host order, with the body's result, and its return
    value becomes the task's result — all shared-state writes belong
    there, never in ``fn``.
    """

    host: int
    fn: Callable[..., Any]
    label: str = ""
    payload: Any = _NO_PAYLOAD
    apply: Callable[[Any], Any] | None = None


class HostView:
    """What one host's task sees of the cluster (interface).

    Concrete views route every charge either straight to the shared
    phase ledgers (:class:`DirectHostView`) or to private per-host
    ledgers merged at the barrier (:class:`LedgerHostView`).  Phase code
    is written against this interface only.
    """

    host: int
    _accumulators: "list[BatchAccumulator] | None"

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        raise NotImplementedError

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        raise NotImplementedError

    def send_batch(self, dst: int, batch: MessageBatch,
                   tag: str = "default", logical_messages: int = 1,
                   nbytes: int | None = None,
                   coalesce: bool = False) -> None:
        """One columnar block = one transport send (same cost model)."""
        self.send(
            dst, batch, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        raise NotImplementedError

    def accumulator(self) -> BatchAccumulator:
        """A batch accumulator owned by this host's task.

        Channels left staged when the task body returns are flushed by
        the executor at the phase barrier, in append order.
        """
        acc = BatchAccumulator(self, host=self.host)
        if self._accumulators is None:
            self._accumulators = []
        self._accumulators.append(acc)
        return acc

    def flush_accumulators(self) -> None:
        """Flush every accumulator handed out by :meth:`accumulator`."""
        if self._accumulators:
            for acc in self._accumulators:
                acc.flush_all()

    def add_disk(self, nbytes: float) -> None:
        raise NotImplementedError

    def add_compute(self, units: float) -> None:
        raise NotImplementedError


class DirectHostView(HostView):
    """Charges land immediately on the shared ``PhaseStats``/``Communicator``."""

    __slots__ = ("_stats", "host", "_accumulators")

    def __init__(self, stats: PhaseStats, host: int):
        self._stats = stats
        self.host = int(host)
        self._accumulators = None

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        self._stats.comm.send(
            self.host, dst, payload, tag=tag,
            logical_messages=logical_messages, nbytes=nbytes,
            coalesce=coalesce,
        )

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        return self._stats.comm.recv_all(self.host, tag)

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return self._stats.comm.recv_all_batch(self.host, tag, schema)

    def add_disk(self, nbytes: float) -> None:
        self._stats.add_disk(self.host, nbytes)

    def add_compute(self, units: float) -> None:
        self._stats.add_compute(self.host, units)


class LedgerHostView(HostView):
    """Charges accumulate privately; :meth:`merge` folds them in.

    Creating the view redirects the host's fault channel to the private
    ledger so events drawn by a concurrently-running host can be merged
    (or discarded) deterministically.  Receiving is read-only on the
    host's own queues — safe because queues are only ever appended to at
    merge barriers, and each host drains only its own.
    """

    __slots__ = ("_stats", "_channel", "host", "ledger",
                 "disk_bytes", "compute_units", "_accumulators")

    def __init__(self, stats: PhaseStats, host: int):
        self._stats = stats
        self.host = int(host)
        self.ledger = stats.comm.ledger(host)
        self.disk_bytes = 0.0
        self.compute_units = 0.0
        self._accumulators = None
        injector = stats.comm.injector
        self._channel = None
        if injector is not None:
            self._channel = injector.channel(host)
            self._channel.events_out = self.ledger.fault_events

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        self.ledger.send(
            dst, payload, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        return self._stats.comm.recv_all(self.host, tag)

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return self._stats.comm.recv_all_batch(self.host, tag, schema)

    def add_disk(self, nbytes: float) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "HostView.add_disk")
        if self._channel is not None:
            self._channel.tick()
        self.disk_bytes += nbytes

    def add_compute(self, units: float) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "HostView.add_compute")
        if self._channel is not None:
            self._channel.tick()
        self.compute_units += units

    def merge(self) -> None:
        """Fold this host's private charges into the shared state."""
        stats = self._stats
        stats.comm.merge_ledger(self.ledger)
        stats.disk_bytes[self.host] += self.disk_bytes
        stats.compute_units[self.host] += self.compute_units
        self.disk_bytes = 0.0
        self.compute_units = 0.0
        injector = stats.comm.injector
        if injector is not None and self._channel is not None:
            injector.events.extend(self.ledger.fault_events)
            self.ledger.fault_events = []
            injector.commit(self._channel)
            self._channel.events_out = injector.events

    def release(self) -> None:
        """Discard this host's private charges (work serial never ran)."""
        injector = self._stats.comm.injector
        if injector is not None and self._channel is not None:
            self._channel.fired.clear()
            self._channel.events_out = injector.events


class Executor:
    """Strategy for driving a phase's per-host tasks."""

    name = "abstract"

    def publish(self, name: str, obj: Any) -> Any:
        """Register an immutable input under ``name`` for zero-copy reuse.

        The pooled process executor exports the object's large arrays
        into named shared-memory segments that its resident workers map
        as zero-copy NumPy views, so task payloads referencing the
        object never re-pickle the data across a pipe.  Every other
        executor shares the parent's address space already, so the
        default is the identity.  The published object must not be
        mutated afterwards (phases publish *after* checkpoint
        roundtrips, which is also when the object becomes immutable).
        """
        return obj

    def close(self) -> None:
        """Release executor-owned resources (pools, segments); idempotent."""

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        """Run independent per-host tasks; return results in task order.

        A barrier: every task has completed (and, for the parallel
        executor, every surviving ledger has merged) before this returns.
        Raises the first raising host's exception, in host order.
        """
        raise NotImplementedError

    def chain(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        """Run cross-host-*dependent* tasks sequentially in task order.

        Used when host h+1's algorithm reads state host h wrote (e.g.
        stateful streaming edge rules): identical under every executor
        by construction.
        """
        return [_run_direct(stats, task) for task in tasks]


def _invoke(task: HostTask, view: HostView) -> Any:
    """Call a task body, passing its declared payload when it has one."""
    if task.payload is _NO_PAYLOAD:
        return task.fn(view)
    return task.fn(view, task.payload)


def _run_direct(stats: PhaseStats, task: HostTask) -> Any:
    """Run one task on the shared ledgers, flushing staged batches at
    the end of the body (the serial phase barrier), then applying its
    declared output."""
    view = DirectHostView(stats, task.host)
    result = _invoke(task, view)
    view.flush_accumulators()
    if task.apply is not None:
        result = task.apply(result)
    return result


class SerialExecutor(Executor):
    """Deterministic reference: host-by-host over the shared ledgers."""

    name = "serial"

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        return [_run_direct(stats, task) for task in tasks]


class ParallelExecutor(Executor):
    """Thread pool over private per-host ledgers, merged in host order.

    NumPy kernels release the GIL, so per-host work genuinely overlaps.
    The pool is created lazily and reused across phases.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        check_isolation: bool = False,
        monitor: "isolation.IsolationMonitor | None" = None,
    ):
        """``check_isolation=True`` attaches a fresh
        :class:`~repro.analysis.isolation.IsolationMonitor` (or pass
        your own via ``monitor=``): every mapped task then runs under a
        thread-local ownership context, any cross-host access raises
        :class:`~repro.analysis.isolation.IsolationViolation`, and the
        monitor logs each sanctioned (host, phase, op, attribute)
        access.  Off by default — the guards cost a few percent on
        charge-heavy phases."""
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        if monitor is None and check_isolation:
            monitor = isolation.IsolationMonitor()
        self.monitor = monitor

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        workers = self._max_workers
        if workers is None:
            workers = max(2, min(width, os.cpu_count() or 1))
        if self._pool is None or self._pool_width < workers:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-host"
            )
            self._pool_width = workers
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_width = 0

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        hosts = [t.host for t in tasks]
        if len(set(hosts)) != len(hosts):
            raise ValueError("one task per host required in run()")
        if len(tasks) == 1:
            # No concurrency to gain; keep the direct (zero-copy) path.
            return [_run_direct(stats, tasks[0])]
        views = [LedgerHostView(stats, t.host) for t in tasks]
        pool = self._ensure_pool(len(tasks))
        phase_name = getattr(stats, "name", "")
        futures = [
            pool.submit(self._guarded, t, v, self.monitor, phase_name)
            for t, v in zip(tasks, views)
        ]
        outcomes = [f.result() for f in futures]
        # Barrier: merge in host order; keep the first failure in host
        # order and discard everything a serial sweep would not have run.
        # Applied outputs run right after each host's merge, so their
        # shared-state writes land in the same order serial produced.
        order = sorted(range(len(tasks)), key=lambda i: tasks[i].host)
        results: list[Any] = [None] * len(tasks)
        failed_at = None
        for pos, i in enumerate(order):
            result, exc = outcomes[i]
            views[i].merge()
            if exc is not None:
                failed_at = pos
                break
            if tasks[i].apply is not None:
                result = tasks[i].apply(result)
            results[i] = result
        if failed_at is not None:
            for i in order[failed_at + 1:]:
                views[i].release()
            raise outcomes[order[failed_at]][1]
        return results

    @staticmethod
    def _guarded(
        task: HostTask,
        view: HostView,
        monitor: isolation.IsolationMonitor | None,
        phase_name: str,
    ) -> tuple[Any, Exception | None]:
        try:
            if monitor is not None:
                with monitor.task(view.host, phase_name, task.label):
                    result = _invoke(task, view)
                    view.flush_accumulators()
                    return result, None
            result = _invoke(task, view)
            view.flush_accumulators()
            return result, None
        except Exception as exc:  # noqa: BLE001 — re-raised at the barrier
            return None, exc


class _ShippedHostView(LedgerHostView):
    """The ledger view a forked worker runs a task against.

    Identical to :class:`LedgerHostView` except every queue drain is
    logged: the worker drains its copy-on-write snapshot of the queues,
    so the parent must re-play the same drains against the real
    communicator at the barrier (:meth:`Communicator.replay_recv`).
    """

    __slots__ = ("recv_log",)

    def __init__(self, stats: PhaseStats, host: int):
        super().__init__(stats, host)
        #: ``(tag, count)`` per non-empty drain, in drain order.
        self.recv_log: list[tuple[str, int]] = []

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        out = self._stats.comm.recv_all(self.host, tag)
        if out:
            # Only non-empty drains are logged, matching when the
            # communicator notifies its observer.
            self.recv_log.append((tag, len(out)))
        return out

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return ReceivedBatch(schema, self.recv_all(tag))


def _split_chunks(n: int, k: int) -> list[list[int]]:
    """``n`` task indices split into ``min(k, n)`` contiguous chunks."""
    k = max(1, min(k, n))
    base, extra = divmod(n, k)
    chunks, start = [], 0
    for j in range(k):
        size = base + (1 if j < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def _encode_queued_payload(payload: Any, borrow: bool = False) -> tuple[str, Any]:
    """Wire-encode one queued payload for an executor pipe.

    Large columnar batches go through the shared-memory wire format so
    their columns never cross the pipe; everything else rides pickle
    (:class:`MessageBatch` itself pickles via the inline wire format).
    Both directions are intra-box, so blobs are marked trusted (the
    decoder skips the CRC re-verification pass).

    ``borrow=True`` is the parent -> worker direction (queue-snapshot
    shipping): the parent keeps segment ownership, already-mapped
    segments of previously decoded batches are re-shipped by name with
    zero bytes copied, and a worker can die — or simply never drain the
    tag — without leaking anything.
    """
    if isinstance(payload, MessageBatch) and payload.nbytes >= _SHM_THRESHOLD:
        return (
            "wire",
            payload.to_bytes(
                shm_threshold=_SHM_THRESHOLD, borrow=borrow, trusted=True
            ),
        )
    return ("obj", payload)


def _decode_queued_payload(enc: tuple[str, Any]) -> Any:
    kind, data = enc
    if kind == "wire":
        # Zero-copy: shared columns stay mapped in place.  Owned
        # segments (worker -> parent deltas) are unlinked by the
        # decoded batch itself — explicitly via ``release_shared`` on
        # reclaim paths, or by its finalizer when a queue entry is
        # drained/discarded — so a dropped delta can never leak one.
        # Borrowed segments (parent -> worker snapshots) were divorced
        # from their wrappers during decode and are never this side's
        # to unlink.
        return MessageBatch.from_bytes(data)
    return data


def _run_shipped_task(
    stats: PhaseStats,
    task: HostTask,
    monitor: isolation.IsolationMonitor | None,
    phase_name: str,
    precheck: bool = True,
) -> dict[str, Any]:
    """Worker-side: run one task, return its serializable delta.

    The delta is everything the parent needs to make its shared state
    bit-identical to a serial run of the task: the private ledger's
    accounting vectors and queued payloads, fault events and the
    channel's advanced RNG/op state, disk/compute charges, the drain
    log, and the isolation monitor's evidence.

    ``precheck=False`` skips the result's trial pickling — the pooled
    path serializes each delta itself (through the segment-exporting
    pickler) and substitutes the same diagnostic on failure, so the
    trial run would only double-serialize multi-megabyte results.
    """
    comm = stats.comm
    injector = comm.injector
    base_acc = len(monitor.accesses) if monitor is not None else 0
    base_num = monitor.num_accesses if monitor is not None else 0
    base_vio = len(monitor.violations) if monitor is not None else 0
    view = _ShippedHostView(stats, task.host)
    result: Any = None
    exc: Exception | None = None
    try:
        if monitor is not None:
            with monitor.task(view.host, phase_name, task.label):
                result = _invoke(task, view)
                view.flush_accumulators()
        else:
            result = _invoke(task, view)
            view.flush_accumulators()
    except Exception as e:  # noqa: BLE001 — re-raised at the barrier
        result, exc = None, e
    ledger = view.ledger
    channel_state = None
    if injector is not None and view._channel is not None:
        ch = view._channel
        channel_state = {
            "ops": ch.ops,
            "rng": ch._rng.bit_generator.state,
            "fired": list(ch.fired),
        }
    if exc is None and precheck:
        try:
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as perr:  # noqa: BLE001 — converted to task failure
            result, exc = None, RuntimeError(
                f"host {task.host} task {task.label!r} returned an "
                f"unshippable result ({perr}); task outputs must pickle"
            )
    if exc is not None:
        try:
            pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — substitute a shippable summary
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
    evidence = None
    if monitor is not None:
        evidence = {
            "accesses": monitor.accesses[base_acc:],
            "num_accesses": monitor.num_accesses - base_num,
            "violations": monitor.violations[base_vio:],
        }
    return {
        "host": task.host,
        "result": result,
        "exc": exc,
        "vectors": {
            "sent_bytes": ledger.sent_bytes,
            "sent_messages": ledger.sent_messages,
            "retry_bytes": ledger.retry_bytes,
            "retry_messages": ledger.retry_messages,
            "stream_bytes": ledger.stream_bytes,
            "stream_logical": ledger.stream_logical,
        },
        "backoff_units": ledger.backoff_units,
        "queued": [
            (dst, tag, _encode_queued_payload(p))
            for dst, tag, p in ledger.queued
        ],
        "fault_events": ledger.fault_events,
        "channel": channel_state,
        "disk_bytes": view.disk_bytes,
        "compute_units": view.compute_units,
        "recv_log": view.recv_log,
        "monitor": evidence,
    }


# ----------------------------------------------------------------------
# Pooled process executor plumbing: framed pipes, segment-exporting
# pickling, graph residency, and the resident worker main loop.
# ----------------------------------------------------------------------

def _write_frame(fd: int, blob: bytes) -> None:
    """Write one length-prefixed frame, handling short writes."""
    view = memoryview(struct.pack("<Q", len(blob)) + blob)
    while view:
        view = view[os.write(fd, view):]


def _read_exact(fd: int, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on EOF (peer died/closed)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        b = os.read(fd, n - got)
        if not b:
            return None
        chunks.append(b)
        got += len(b)
    return b"".join(chunks)


def _read_frame(fd: int) -> bytes | None:
    header = _read_exact(fd, 8)
    if header is None:
        return None
    (n,) = struct.unpack("<Q", header)
    return _read_exact(fd, n)


def _fn_shippable(fn: Callable[..., Any]) -> bool:
    """True when ``fn`` is resolvable by name in a pool worker.

    Pool workers fork once and then outlive the closures a phase builds
    per barrier, so only module-level functions can cross: anything else
    (closures, lambdas, methods) sends the whole barrier down the
    fork-per-barrier path, where copy-on-write snapshots keep closures
    working.
    """
    mod = getattr(fn, "__module__", None)
    qual = getattr(fn, "__qualname__", None)
    if not mod or not qual or "." in qual:
        return False
    module = sys.modules.get(mod)
    return module is not None and getattr(module, qual, None) is fn


def _resolve_body(ref: tuple[str, str]) -> Callable[..., Any]:
    """Worker-side inverse of :func:`_fn_shippable`'s name capture."""
    mod_name, qual = ref
    module = sys.modules.get(mod_name)
    if module is None:  # pragma: no cover - module imported post-fork
        import importlib

        module = importlib.import_module(mod_name)
    fn = getattr(module, qual, None)
    if fn is None:
        raise RuntimeError(
            f"cannot resolve task body {mod_name}.{qual} in pool worker"
        )
    return fn


def _discard_untracked_segment(seg: Any) -> None:
    """Unlink a creator-owned (tracker-unregistered) segment quietly.

    Balances the resource tracker by registering before the unlink
    (which unregisters internally); if the consumer already unlinked
    the segment, the provisional registration is rolled back — either
    way the tracker daemon never prints a KeyError or leak warning.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.register(seg._name, "shared_memory")  # noqa: SLF001
        seg.unlink()
    except FileNotFoundError:
        try:
            resource_tracker.unregister(seg._name, "shared_memory")  # noqa: SLF001
        # repro-lint: disable-next-line=swallowed-error -- tracker API is CPython-internal; registration was provisional
        except Exception:  # pragma: no cover
            pass
    # repro-lint: disable-next-line=swallowed-error -- cleanup on an already-failed path must not mask the original error
    except Exception:  # pragma: no cover
        pass


def _sweep_family_segments() -> None:
    """Unlink leftover family segments a dead worker failed to consume.

    Resident segments (still owned by the parent and valid across pool
    restarts) are exempt; everything else under this process family's
    prefix is, at teardown time, an orphan of the aborted dispatch.
    """
    from multiprocessing import shared_memory

    for name in colfab.leaked_segments():
        if name in colfab._resident_registry:
            continue
        try:
            seg = shared_memory.SharedMemory(name=name)
        # repro-lint: disable-next-line=swallowed-error -- segment vanished between listing and attach; nothing left to clean
        except FileNotFoundError:  # pragma: no cover
            continue
        seg.close()
        seg.unlink()


class _SegmentPickler(pickle.Pickler):
    """Pickler that exports large arrays into shared-memory segments.

    Resident objects (and the arrays already exported for them) become
    tiny persistent ids resolved against the worker's resident cache;
    any other contiguous-representable ndarray at or above the wire
    threshold rides an ephemeral segment whose ownership transfers to
    the decoding side.  Everything else pickles inline.
    """

    def __init__(self, file: Any, resident_pids: dict[int, tuple] | None = None):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._resident_pids = resident_pids or {}
        self._exported: dict[int, tuple] = {}
        #: Ephemeral segments created while pickling (creator-closed);
        #: the caller unlinks them if the dispatch never reaches a
        #: consumer.
        self.segments: list[Any] = []

    def persistent_id(self, obj: Any) -> tuple | None:
        pid = self._resident_pids.get(id(obj))
        if pid is not None:
            return pid
        if (
            isinstance(obj, np.ndarray)
            and not obj.dtype.hasobject
            and obj.nbytes >= _SHM_THRESHOLD
        ):
            cached = self._exported.get(id(obj))
            if cached is None:
                raw = np.ascontiguousarray(obj)
                seg = colfab._create_shared_segment(raw)
                seg.close()
                self.segments.append(seg)
                cached = (
                    "nd",
                    seg.name,
                    np.lib.format.dtype_to_descr(raw.dtype),
                    raw.shape,
                )
                # repro-lint: disable-next-line=deep-determinism-taint -- id() is a process-local dedupe key; segment names/indices come from deterministic insertion order
                self._exported[id(obj)] = cached
            return cached
        return None

    def unlink_segments(self) -> None:
        for seg in self.segments:
            _discard_untracked_segment(seg)
        self.segments = []


class _SegmentUnpickler(pickle.Unpickler):
    """Inverse of :class:`_SegmentPickler` (worker and parent side)."""

    def __init__(self, file: Any, residents: dict[str, dict] | None = None):
        super().__init__(file)
        self._residents = residents or {}
        self._loaded: dict[str, np.ndarray] = {}

    def persistent_load(self, pid: tuple) -> Any:
        kind = pid[0]
        if kind == "nd":
            _, name, descr, shape = pid
            arr = self._loaded.get(name)
            if arr is None:
                arr = _load_ephemeral_array(name, descr, shape)
                self._loaded[name] = arr
            return arr
        if kind == "res":
            entry = self._resident_entry(pid[1], pid[2])
            return entry["obj"]
        if kind == "rref":
            entry = self._resident_entry(pid[1], pid[2])
            return entry["arrays"][pid[3]]
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")

    def _resident_entry(self, name: str, gen: int) -> dict:
        entry = self._residents.get(name)
        if entry is None or entry["gen"] != gen:
            have = None if entry is None else entry["gen"]
            raise pickle.UnpicklingError(
                f"resident {name!r} generation {gen} not installed in this "
                f"worker (have {have})"
            )
        return entry


def _load_ephemeral_array(
    name: str, descr: Any, shape: tuple[int, ...]
) -> np.ndarray:
    """Adopt one ephemeral segment as a zero-copy array, unlinking it.

    The returned array *is* the mapping: ``unlink`` drops the name
    immediately (exactly-once consumption, nothing to leak), and
    divorcing the mapping from its wrapper leaves the pages alive until
    the array's last view dies — refcounting munmaps them.  This is the
    difference between memcpy-ing every multi-megabyte result/payload
    through private heap and just keeping the pages the producer already
    wrote.
    """
    seg = colfab._attach_shared_segment(name)
    dtype = np.lib.format.descr_to_dtype(descr)
    count = 1
    for dim in shape:
        count *= int(dim)
    arr = np.frombuffer(seg.buf, dtype=dtype, count=count).reshape(shape)
    seg.unlink()
    colfab._defuse_segment(seg)
    return arr


def _dumps_with_segments(
    obj: Any, resident_pids: dict[int, tuple] | None = None
) -> tuple[bytes, list[Any]]:
    """Pickle ``obj`` through the segment exporter; unlink on failure."""
    buf = io.BytesIO()
    pickler = _SegmentPickler(buf, resident_pids)
    try:
        pickler.dump(obj)
    except Exception:
        pickler.unlink_segments()
        raise
    return buf.getvalue(), pickler.segments


def _loads_with_segments(
    blob: bytes, residents: dict[str, dict] | None = None
) -> Any:
    return _SegmentUnpickler(io.BytesIO(blob), residents).load()


def _export_resident(obj: Any) -> dict[str, Any]:
    """Export one immutable object as shared segments plus a pickle blob.

    Returns the parent-side registry entry body: the blob (with large
    arrays replaced by manifest indices), the segment manifest
    ``(name, dtype descr, shape)`` workers attach zero-copy, the live
    ``SharedMemory`` handles (parent owns the unlink), strong references
    to the exported source arrays (id-stability for the ``rref`` map),
    and the ``id(array) -> manifest index`` map itself.
    """
    manifest: list[tuple[str, Any, tuple[int, ...]]] = []
    segments: list[Any] = []
    arrays: list[np.ndarray] = []
    array_ids: dict[int, int] = {}

    class _ResidentPickler(pickle.Pickler):
        def persistent_id(self, o: Any) -> tuple | None:
            if (
                isinstance(o, np.ndarray)
                and not o.dtype.hasobject
                and o.nbytes >= _SHM_THRESHOLD
            ):
                idx = array_ids.get(id(o))
                if idx is None:
                    raw = np.ascontiguousarray(o)
                    seg = colfab._create_shared_segment(raw, tracked=True)
                    seg.close()
                    colfab.register_resident_segment(seg.name, raw.nbytes)
                    idx = len(arrays)
                    arrays.append(o)
                    segments.append(seg)
                    manifest.append(
                        (
                            seg.name,
                            np.lib.format.dtype_to_descr(raw.dtype),
                            raw.shape,
                        )
                    )
                    # repro-lint: disable-next-line=deep-determinism-taint -- id() is a process-local dedupe key; manifest indices come from deterministic insertion order
                    array_ids[id(o)] = idx
                return ("rarr", idx)
            return None

    buf = io.BytesIO()
    try:
        _ResidentPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except Exception:
        for seg in segments:
            try:
                seg.unlink()
            # repro-lint: disable-next-line=swallowed-error -- cleanup of a half-built export; the pickling error propagates
            except FileNotFoundError:  # pragma: no cover
                pass
            colfab.unregister_resident_segment(seg.name)
        raise
    return {
        "blob": buf.getvalue(),
        "manifest": manifest,
        "segments": segments,
        "arrays": arrays,
        "array_ids": array_ids,
    }


def _install_resident(
    residents: dict[str, dict],
    name: str,
    gen: int,
    blob: bytes,
    manifest: list[tuple[str, Any, tuple[int, ...]]],
) -> None:
    """Worker-side: map a resident's segments zero-copy and cache it."""
    old = residents.pop(name, None)
    if old is not None:
        for seg in old["shms"]:
            seg.close()
    arrays: list[np.ndarray] = []
    shms: list[Any] = []
    for seg_name, descr, shape in manifest:
        seg = colfab._attach_shared_segment(seg_name)
        dtype = np.lib.format.descr_to_dtype(descr)
        count = 1
        for dim in shape:
            count *= int(dim)
        arr = np.frombuffer(seg.buf, dtype=dtype, count=count).reshape(shape)
        # Residents are immutable by contract; a task body that tries to
        # write through a zero-copy view fails loudly instead of
        # corrupting every sibling worker's view.
        arr.flags.writeable = False
        arrays.append(arr)
        shms.append(seg)

    class _ResidentUnpickler(pickle.Unpickler):
        def persistent_load(self, pid: tuple) -> Any:
            if pid[0] == "rarr":
                return arrays[pid[1]]
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")

    obj = _ResidentUnpickler(io.BytesIO(blob)).load()
    residents[name] = {"gen": gen, "obj": obj, "arrays": arrays, "shms": shms}


def _dump_delta(task: HostTask, delta: dict[str, Any]) -> bytes:
    """Worker-side: serialize one delta, preserving the unshippable
    diagnostic the per-barrier fork path produces via its pre-check."""
    try:
        blob, _segments = _dumps_with_segments(delta)
        return blob
    except Exception as perr:  # noqa: BLE001 — converted to task failure
        delta = dict(
            delta,
            result=None,
            exc=RuntimeError(
                f"host {task.host} task {task.label!r} returned an "
                f"unshippable result ({perr}); task outputs must pickle"
            ),
        )
        blob, _segments = _dumps_with_segments(delta)
        return blob


def _run_spec(spec_blob: bytes, residents: dict[str, dict]) -> tuple[str, Any]:
    """Worker-side: run one dispatch spec, return the reply envelope."""
    from .comm import Communicator
    from .faults import FaultInjector
    from .stats import PhaseStats

    spec = _loads_with_segments(spec_blob, residents)
    injector = None
    if spec["injector"] is not None:
        injector = FaultInjector.from_live_state(spec["injector"])
    comm = Communicator(
        spec["num_hosts"],
        buffer_size=spec["buffer_size"],
        injector=injector,
        max_retries=spec["max_retries"],
    )
    stats = PhaseStats(
        name=spec["phase"], comm=comm, num_hosts=spec["num_hosts"]
    )
    monitor = isolation.IsolationMonitor() if spec["monitor"] else None
    blobs: list[bytes] = []
    for tspec in spec["tasks"]:
        comm.preload_queues(
            tspec["host"],
            {
                tag: [(src, _decode_queued_payload(enc)) for src, enc in entries]
                for tag, entries in tspec["queues"].items()
            },
        )
        task = HostTask(
            tspec["host"],
            _resolve_body(tspec["fn"]),
            label=tspec["label"],
            payload=tspec["payload"] if tspec["has_payload"] else _NO_PAYLOAD,
        )
        delta = _run_shipped_task(
            stats, task, monitor, spec["phase"], precheck=False
        )
        blobs.append(_dump_delta(task, delta))
    return ("ok", blobs)


def _pool_worker_main(cmd_r: int, reply_w: int) -> None:
    """Resident worker: serve framed commands until EOF or ``exit``."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    residents: dict[str, dict] = {}
    while True:
        frame = _read_frame(cmd_r)
        if frame is None:
            os._exit(0)
        msg = pickle.loads(frame)
        kind = msg[0]
        if kind == "exit":
            os._exit(0)
        if kind == "resident":
            _install_resident(residents, msg[1], msg[2], msg[3], msg[4])
            continue
        try:
            reply: tuple[str, Any] = _run_spec(msg[1], residents)
        except BaseException as exc:  # noqa: BLE001 — worker must keep serving
            reply = ("error", f"{type(exc).__name__}: {exc}")
        _write_frame(reply_w, pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))


class ProcessExecutor(Executor):
    """A persistent pool of forked workers over private per-host ledgers.

    The GIL-free engine.  Workers fork once (lazily, at the first
    pooled barrier) and stay resident for the life of a
    ``CuSP.partition`` run: immutable inputs — the CSR graph, master
    array, edge assignment, proxy tables — are published once into
    named POSIX shared-memory segments (:meth:`publish`) that workers
    map as zero-copy NumPy views, and each barrier ships only a small
    dispatch spec (task refs, payload references, queue snapshots,
    live fault-channel state) over a framed pipe.  No graph bytes ever
    cross a pipe: payload arrays at or above the wire threshold ride
    ephemeral segments, and results/ledger deltas come back the same
    way.  The parent merges deltas in **host order** through the exact
    same ``merge_ledger`` path the thread executor uses, re-plays
    queue drains, adopts the fault channels' advanced RNG/op state,
    and folds in isolation evidence — so fault plans, crash recovery,
    sanitizer audits, and every accounting counter stay bit-identical
    to serial.

    Barriers whose task bodies are closures (not resolvable by name in
    a resident worker) fall back to the original fork-per-barrier
    path, where copy-on-write snapshots keep closures working — same
    deltas, same merge.

    Task bodies must not write shared structures (worker writes die
    with the worker); declared outputs go through ``HostTask.apply``,
    which runs in the parent at the barrier.  The
    ``unshippable-task-capture`` lint rule enforces this statically.

    On platforms without ``os.fork`` the executor degrades to the
    serial direct path (still correct, no speedup).  :meth:`close`
    retires the pool and unlinks every resident segment; an abnormal
    worker death tears the pool down, reclaims every in-flight
    segment, and lets the next barrier respawn cleanly.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        check_isolation: bool = False,
        monitor: "isolation.IsolationMonitor | None" = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        if monitor is None and check_isolation:
            monitor = isolation.IsolationMonitor()
        self.monitor = monitor
        #: Live pool workers: ``{"pid", "cmd_w", "reply_r"}`` each.
        self._workers: list[dict[str, int]] = []
        #: Published residents by name: ``{"gen", "obj", "blob",
        #: "manifest", "segments", "arrays", "array_ids"}``.
        self._residents: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Graph residency
    # ------------------------------------------------------------------
    def publish(self, name: str, obj: Any) -> Any:
        """Export ``obj`` into shared segments and install it pool-wide.

        Idempotent per object identity; republishing a new object under
        an existing name bumps the generation, unlinks the old
        segments, and re-installs in every live worker (crash replays
        rebuild phase outputs, so names are stable but objects are
        not).
        """
        if not _CAN_FORK:  # pragma: no cover - non-POSIX platform
            return obj
        entry = self._residents.get(name)
        if entry is not None and entry["obj"] is obj and entry["blob"] is not None:
            return obj
        gen = entry["gen"] + 1 if entry is not None else 0
        if entry is not None:
            self._unlink_resident(entry)
        exported = _export_resident(obj)
        exported["gen"] = gen
        exported["obj"] = obj
        self._residents[name] = exported
        self._broadcast_resident(name, exported)
        return obj

    def _unlink_resident(self, entry: dict[str, Any]) -> None:
        for seg in entry["segments"]:
            try:
                seg.unlink()
            # repro-lint: disable-next-line=swallowed-error -- already unlinked by an earlier teardown; accounting below stays exact
            except FileNotFoundError:  # pragma: no cover
                pass
            colfab.unregister_resident_segment(seg.name)
        entry["segments"] = []
        entry["blob"] = None

    def _broadcast_resident(self, name: str, entry: dict[str, Any]) -> None:
        if not self._workers:
            return
        msg = pickle.dumps(
            ("resident", name, entry["gen"], entry["blob"], entry["manifest"]),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for worker in self._workers:
            try:
                _write_frame(worker["cmd_w"], msg)
            except OSError:
                # A worker died idle; retire the pool (residents stay
                # valid — the parent still owns their segments) and let
                # the next barrier respawn and replay them.
                self._destroy_pool()
                return

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, width: int) -> None:
        if len(self._workers) >= width:
            return
        with warnings.catch_warnings():
            # CPython warns on fork() in a threaded process; pool
            # workers only touch the snapshot and their own pipes.
            warnings.simplefilter("ignore", DeprecationWarning)
            while len(self._workers) < width:
                self._spawn_worker()

    def _spawn_worker(self) -> None:
        cmd_r, cmd_w = os.pipe()
        reply_r, reply_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                os.close(cmd_w)
                os.close(reply_r)
                # Drop inherited parent-side pipe ends of sibling
                # workers, so a sibling's death yields EOF in the
                # parent instead of a silent hang.
                for sibling in self._workers:
                    os.close(sibling["cmd_w"])
                    os.close(sibling["reply_r"])
                _pool_worker_main(cmd_r, reply_w)
            except BaseException:  # noqa: BLE001 — worker must exit
                status = 1
            os._exit(status)
        os.close(cmd_r)
        os.close(reply_w)
        worker = {"pid": pid, "cmd_w": cmd_w, "reply_r": reply_r}
        self._workers.append(worker)
        # Replay every published resident into the fresh worker.
        for name, entry in self._residents.items():
            if entry["blob"] is None:
                entry_new = _export_resident(entry["obj"])
                entry_new["gen"] = entry["gen"] + 1
                entry_new["obj"] = entry["obj"]
                self._residents[name] = entry_new
                entry = entry_new
            _write_frame(
                worker["cmd_w"],
                pickle.dumps(
                    (
                        "resident",
                        name,
                        entry["gen"],
                        entry["blob"],
                        entry["manifest"],
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            )

    def _destroy_pool(self, graceful: bool = False) -> dict[int, int]:
        """Retire every worker; returns ``pid -> exit code``.

        ``graceful`` sends ``exit`` and lets idle workers leave on
        their own; otherwise workers are SIGKILLed first — a worker
        blocked writing a reply into a full pipe nobody will read must
        not deadlock the reaper.
        """
        codes: dict[int, int] = {}
        for worker in self._workers:
            if graceful:
                try:
                    _write_frame(worker["cmd_w"], pickle.dumps(("exit",)))
                # repro-lint: disable-next-line=swallowed-error -- worker already died; the waitpid below still reaps it
                except OSError:  # pragma: no cover
                    pass
            else:
                try:
                    os.kill(worker["pid"], signal.SIGKILL)
                # repro-lint: disable-next-line=swallowed-error -- worker already exited; the waitpid below still reaps it
                except ProcessLookupError:  # pragma: no cover
                    pass
            os.close(worker["cmd_w"])
        for worker in self._workers:
            try:
                _, status = os.waitpid(worker["pid"], 0)
                codes[worker["pid"]] = os.waitstatus_to_exitcode(status)
            # repro-lint: disable-next-line=swallowed-error -- already reaped elsewhere (e.g. a test harness); exit code defaults below
            except ChildProcessError:  # pragma: no cover
                codes[worker["pid"]] = -1
            os.close(worker["reply_r"])
        self._workers = []
        return codes

    def close(self) -> None:
        """Retire the pool and unlink every resident segment."""
        self._destroy_pool(graceful=True)
        for entry in self._residents.values():
            self._unlink_resident(entry)
        self._residents.clear()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        # repro-lint: disable-next-line=swallowed-error -- interpreter teardown; best-effort release only
        except Exception:
            pass

    def _width(self, num_tasks: int) -> int:
        workers = self._max_workers
        if workers is None:
            # One worker per core: on a single-core box a second worker
            # only adds context-switching and duplicate group-cache
            # hydration (measurably slower); pass max_workers explicitly
            # to exercise multi-worker paths regardless of core count.
            workers = min(num_tasks, os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        hosts = [t.host for t in tasks]
        if len(set(hosts)) != len(hosts):
            raise ValueError("one task per host required in run()")
        if len(tasks) == 1 or not _CAN_FORK:
            # Single task: no concurrency to gain.  No fork(): degrade
            # to the reference semantics rather than fail.
            return [_run_direct(stats, t) for t in tasks]
        deltas = None
        if all(_fn_shippable(t.fn) for t in tasks):
            deltas = self._pool_dispatch(stats, tasks)
        if deltas is None:
            deltas = self._fork_and_collect(stats, tasks)
        # Decode queued payloads for *every* delta up front — a delta
        # discarded on the failure path below must still reclaim its
        # shared-memory segments, which the decoded batches do
        # themselves (``release_shared`` runs from their finalizer when
        # the discarded dict is dropped).
        for delta in deltas:
            delta["queued"] = [
                (dst, tag, _decode_queued_payload(p))
                for dst, tag, p in delta["queued"]
            ]
        order = sorted(range(len(tasks)), key=lambda i: tasks[i].host)
        if self.monitor is not None:
            # All workers ran (as with threads), so all evidence counts;
            # host order keeps the merged log deterministic.
            for i in order:
                self._merge_evidence(deltas[i]["monitor"])
        results: list[Any] = [None] * len(tasks)
        failure: Exception | None = None
        for i in order:
            delta = deltas[i]
            self._merge_delta(stats, tasks[i], delta)
            if delta["exc"] is not None:
                # First failure in host order wins; later hosts' deltas
                # are discarded unmerged (their parent-side channels
                # were never touched, so there is nothing to release).
                failure = delta["exc"]
                break
            result = delta["result"]
            if tasks[i].apply is not None:
                result = tasks[i].apply(result)
            results[i] = result
        if failure is not None:
            raise failure
        return results

    def _resident_pids(self) -> dict[int, tuple]:
        """``id(object) -> persistent id`` map for the spec pickler."""
        pids: dict[int, tuple] = {}
        for name, entry in self._residents.items():
            if entry["blob"] is None:
                continue
            pids[id(entry["obj"])] = ("res", name, entry["gen"])
            for aid, idx in entry["array_ids"].items():
                pids[aid] = ("rref", name, entry["gen"], idx)
        return pids

    def _pool_dispatch(
        self, stats: PhaseStats, tasks: list[HostTask]
    ) -> list[dict[str, Any]] | None:
        """Run one barrier on the resident pool; collect every delta.

        Returns ``None`` when the dispatch spec cannot be pickled (an
        undeclared-payload edge the fork path's copy-on-write snapshot
        still handles) — with every segment created so far reclaimed.
        Worker death or a worker-side error tears the pool down,
        reclaims every in-flight segment, and raises.
        """
        chunks = _split_chunks(len(tasks), self._width(len(tasks)))
        phase_name = getattr(stats, "name", "")
        comm = stats.comm
        injector = comm.injector
        inj_state = injector.export_live_state() if injector is not None else None
        resident_pids = self._resident_pids()
        spec_blobs: list[bytes] = []
        spec_segments: list[list[Any]] = []
        try:
            for chunk in chunks:
                task_specs = []
                for i in chunk:
                    task = tasks[i]
                    queues: dict[str, list[tuple[int, Any]]] = {}
                    for tag, entries in comm.snapshot_queues(task.host).items():
                        # borrow=True: the parent keeps ownership of
                        # every segment these blobs reference, so a
                        # fallback to fork (below), a dead worker, or a
                        # tag the task never drains cannot leak or
                        # double-free — the queue entries themselves
                        # release the segments when they are drained or
                        # dropped.
                        queues[tag] = [
                            (src, _encode_queued_payload(payload, borrow=True))
                            for src, payload in entries
                        ]
                    task_specs.append(
                        {
                            "host": task.host,
                            "fn": (task.fn.__module__, task.fn.__qualname__),
                            "label": task.label,
                            "has_payload": task.payload is not _NO_PAYLOAD,
                            "payload": (
                                None
                                if task.payload is _NO_PAYLOAD
                                else task.payload
                            ),
                            "queues": queues,
                        }
                    )
                spec = {
                    "phase": phase_name,
                    "num_hosts": comm.num_hosts,
                    "buffer_size": comm.buffer_size,
                    "max_retries": comm.max_retries,
                    "monitor": self.monitor is not None,
                    "injector": inj_state,
                    "tasks": task_specs,
                }
                blob, segments = _dumps_with_segments(spec, resident_pids)
                spec_blobs.append(blob)
                spec_segments.append(segments)
        except Exception:  # noqa: BLE001 — reclaim, then fall back to fork
            for segments in spec_segments:
                for seg in segments:
                    _discard_untracked_segment(seg)
            # Queue entries already wire-encoded for this spec need no
            # reclaim: borrow-mode encoding left every segment owned by
            # the still-queued parent batches.
            return None
        self._ensure_pool(len(chunks))
        workers = self._workers[: len(chunks)]
        sent = 0
        for worker, blob in zip(workers, spec_blobs):
            try:
                _write_frame(
                    worker["cmd_w"],
                    pickle.dumps(("run", blob), protocol=pickle.HIGHEST_PROTOCOL),
                )
                sent += 1
            except OSError:
                break
        outcomes: list[tuple[str, Any] | None] = []
        for worker in workers[:sent]:
            frame = _read_frame(worker["reply_r"])
            outcomes.append(None if frame is None else pickle.loads(frame))
        outcomes.extend([None] * (len(workers) - sent))
        deltas: list[dict[str, Any] | None] = [None] * len(tasks)
        broken: list[tuple[list[int], dict[str, int]]] = []
        errors: list[str] = []
        for worker, chunk, outcome in zip(workers, chunks, outcomes):
            if outcome is None:
                broken.append((chunk, worker))
                continue
            if outcome[0] == "error":
                errors.append(outcome[1])
                continue
            for i, blob in zip(chunk, outcome[1]):
                deltas[i] = _loads_with_segments(blob)
        if not broken and not errors:
            return [d for d in deltas if d is not None]
        # Failure path: reclaim every in-flight segment before raising.
        # Deltas already decoded adopted their reply segments (unlinked
        # on load); decoding + releasing the queued wire payloads of
        # surviving deltas reclaims those too; the family sweep below
        # unlinks whatever a dead worker never consumed (spec segments,
        # a half-shipped reply).
        for delta in deltas:
            if delta is not None:
                for _dst, _tag, enc in delta["queued"]:
                    payload = _decode_queued_payload(enc)
                    if isinstance(payload, MessageBatch):
                        payload.release_shared()
        codes = self._destroy_pool()
        _sweep_family_segments()
        if errors:
            raise RuntimeError(
                f"process executor worker failed: {'; '.join(errors)}"
            )
        parts = [
            f"hosts {[tasks[i].host for i in chunk]} "
            f"(exit {codes.get(worker['pid'], -1)})"
            for chunk, worker in broken
        ]
        raise RuntimeError(
            "process executor worker(s) died without shipping their "
            f"deltas: {', '.join(parts)}"
        )

    def _fork_and_collect(
        self, stats: PhaseStats, tasks: list[HostTask]
    ) -> list[dict[str, Any]]:
        """Fork one worker per chunk; gather every task's delta."""
        chunks = _split_chunks(len(tasks), self._width(len(tasks)))
        phase_name = getattr(stats, "name", "")
        children: list[tuple[int, int, list[int]]] = []
        with warnings.catch_warnings():
            # CPython warns on fork() in a threaded process; the workers
            # only touch the snapshot and never take inherited locks.
            warnings.simplefilter("ignore", DeprecationWarning)
            for chunk in chunks:
                r, w = os.pipe()
                pid = os.fork()
                if pid == 0:
                    status = 0
                    try:
                        os.close(r)
                        shipped = [
                            _run_shipped_task(
                                stats, tasks[i], self.monitor, phase_name
                            )
                            for i in chunk
                        ]
                        blob = pickle.dumps(
                            shipped, protocol=pickle.HIGHEST_PROTOCOL
                        )
                        with os.fdopen(w, "wb") as out:
                            out.write(blob)
                    except BaseException:  # noqa: BLE001 — worker must exit
                        status = 1
                    os._exit(status)
                os.close(w)
                children.append((pid, r, chunk))
        deltas: list[dict[str, Any] | None] = [None] * len(tasks)
        broken: list[str] = []
        for pid, r, chunk in children:
            # Read the pipe fully *before* waiting: a worker blocked on
            # a full pipe buffer never exits.
            with os.fdopen(r, "rb") as reader:
                blob = reader.read()
            _, status = os.waitpid(pid, 0)
            code = os.waitstatus_to_exitcode(status)
            if code != 0 or not blob:
                hosts = [tasks[i].host for i in chunk]
                broken.append(f"hosts {hosts} (exit {code})")
                continue
            for i, delta in zip(chunk, pickle.loads(blob)):
                deltas[i] = delta
        if broken:
            raise RuntimeError(
                "process executor worker(s) died without shipping their "
                f"deltas: {', '.join(broken)}"
            )
        return [d for d in deltas if d is not None]

    def _merge_evidence(self, evidence: dict[str, Any] | None) -> None:
        if evidence is None or self.monitor is None:
            return
        mon = self.monitor
        for access in evidence["accesses"]:
            if len(mon.accesses) < mon.max_recorded:
                mon.accesses.append(access)
        mon.num_accesses += evidence["num_accesses"]
        mon.violations.extend(evidence["violations"])

    @staticmethod
    def _merge_delta(
        stats: PhaseStats, task: HostTask, delta: dict[str, Any]
    ) -> None:
        """Parent-side mirror of :meth:`LedgerHostView.merge`."""
        comm = stats.comm
        ledger = comm.ledger(task.host)
        vectors = delta["vectors"]
        ledger.sent_bytes[:] = vectors["sent_bytes"]
        ledger.sent_messages[:] = vectors["sent_messages"]
        ledger.retry_bytes[:] = vectors["retry_bytes"]
        ledger.retry_messages[:] = vectors["retry_messages"]
        ledger.stream_bytes[:] = vectors["stream_bytes"]
        ledger.stream_logical[:] = vectors["stream_logical"]
        ledger.backoff_units = delta["backoff_units"]
        # queued and fault_events must be in place *before* merge_ledger:
        # CommSan's on_merge mirrors both.
        ledger.queued = list(delta["queued"])
        ledger.fault_events = list(delta["fault_events"])
        comm.merge_ledger(ledger)
        stats.disk_bytes[task.host] += delta["disk_bytes"]
        stats.compute_units[task.host] += delta["compute_units"]
        injector = comm.injector
        if injector is not None:
            injector.events.extend(ledger.fault_events)
            channel_state = delta["channel"]
            if channel_state is not None:
                channel = injector.channel(task.host)
                channel.ops = channel_state["ops"]
                channel._rng.bit_generator.state = channel_state["rng"]
                channel.fired = list(channel_state["fired"])
                injector.commit(channel)
        for tag, count in delta["recv_log"]:
            comm.replay_recv(task.host, tag, count)


def make_executor(spec: str | Executor | None) -> Executor:
    """Resolve an executor from a name, ``None``, or an instance."""
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "parallel":
            return ParallelExecutor()
        if spec == "parallel-checked":
            # Parallel with the host-isolation race detector attached
            # (repro.analysis.isolation): same bit-identical results,
            # plus a proof that no task left its lane.
            return ParallelExecutor(check_isolation=True)
        if spec == "process":
            return ProcessExecutor()
        if spec == "process-checked":
            return ProcessExecutor(check_isolation=True)
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {EXECUTOR_NAMES}"
        )
    raise TypeError(f"cannot build an executor from {type(spec).__name__}")
