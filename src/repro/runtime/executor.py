"""Pluggable per-host execution engine for the five CuSP phases.

Phase bodies used to drive hosts with inline ``for h in range(num_hosts)``
loops over shared accounting state, which welds the streaming algorithm
to single-threaded execution.  This module separates *what a host
computes* from *how the hosts are driven*:

* :class:`HostTask` — one host's closure over a phase's per-host work,
  expressed against a :class:`HostView` (send / recv / disk / compute
  charges);
* :class:`Executor` — the driving strategy.  :class:`SerialExecutor`
  runs tasks host-by-host against the shared ledgers (the deterministic
  reference, exactly the old inline-loop semantics).
  :class:`ParallelExecutor` runs them on a thread pool, each host
  recording onto a *private* :class:`~repro.runtime.comm.CommLedger`
  (plus private disk/compute accumulators and a redirected fault-event
  sink) that is merged back in **host order** at the barrier.
  :class:`ProcessExecutor` runs them in forked worker processes — the
  GIL-free engine: each worker gets a copy-on-write snapshot of the
  barrier-entry state, records the same private ledger, and ships a
  picklable delta (accounting vectors, queued payloads on the
  :mod:`~repro.runtime.colfab` wire format, fault-channel RNG state,
  isolation evidence) back over a pipe for the identical host-order
  merge.

The task-payload seam: because a worker's writes die with the worker,
task bodies must not mutate shared structures.  A :class:`HostTask` may
therefore declare a picklable per-host ``payload`` (passed to ``fn`` as
a second argument) and an ``apply`` callback that the executor runs *in
the parent, at the barrier, in host order* with the body's result —
that is where shared-state writes go.  The serial path runs ``apply``
immediately after each body, which is the same order (phases submit
tasks in host order), so the seam changes nothing observably.

Determinism argument (why parallel is bit-identical to serial):

1. *Accounting*: merge adds each host's private vectors into its own row
   of the shared matrices — addition order across rows is irrelevant,
   and within a row the ledger preserved the host's own send order.
2. *Message queues*: merging in host order appends each destination's
   payloads in exactly the (src-major) order a serial sweep would have
   produced, so every receiver drains an identical queue.
3. *Faults*: fault draws come from per-host generators seeded by
   ``(plan.seed, phase attempt, host)`` and tick on the host's own
   logical-op counter (:mod:`repro.runtime.faults`), so the decision
   sequence is independent of thread interleaving.  Fault events are
   buffered per ledger and concatenated in host order.
4. *Failures*: if hosts raise, the executor keeps the outcome of the
   first raising host in host order — ledgers of earlier hosts merge
   fully, the raising host's partial ledger merges as-is (serial charges
   everything up to the raise), later hosts' ledgers are discarded along
   with any crash they fired (serial would never have run them) — and
   re-raises.  Phase bodies are replay-safe (fresh state per attempt),
   so the discarded extra work of concurrent hosts is unobservable.

Work whose *algorithm* is cross-host sequential — a stateful edge rule
where host ``h+1`` must score against the state host ``h`` just updated —
goes through :meth:`Executor.chain`, which every executor runs
sequentially against the shared ledgers: bit-identity forbids
parallelism there, and pretending otherwise would change the partition.

Collectives (``allreduce_*``/``allgather``/``barrier``) are phase-global
and must be issued between task submissions, never inside a mapped task.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..analysis import isolation
from .colfab import BatchAccumulator, ColumnSchema, MessageBatch, ReceivedBatch

if TYPE_CHECKING:
    from .stats import PhaseStats

__all__ = [
    "HostTask",
    "HostView",
    "DirectHostView",
    "LedgerHostView",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
]

EXECUTOR_NAMES = (
    "serial", "parallel", "parallel-checked", "process", "process-checked",
)

#: Sentinel distinguishing "no declared payload" from ``payload=None``.
_NO_PAYLOAD = object()

#: Columns at or above this size ride POSIX shared memory instead of the
#: worker's result pipe (see :meth:`MessageBatch.to_bytes`).
_SHM_THRESHOLD = 64 * 1024

_CAN_FORK = hasattr(os, "fork")


@dataclass(frozen=True)
class HostTask:
    """One host's unit of phase work: a closure plus the host it charges.

    ``fn`` receives a :class:`HostView` (plus ``payload``, when one is
    declared) and performs the host's compute, declaring its
    communication and compute/disk charges through the view.  It must
    touch shared structures only through the view (or through per-host
    slices no other task writes).

    ``payload`` is the task's declared input: a picklable value handed
    to ``fn`` as a second argument, which is what lets a worker process
    run the body against its own copy of the world.  ``apply`` is the
    declared output seam: the executor calls it in the parent, at the
    barrier, in host order, with the body's result, and its return
    value becomes the task's result — all shared-state writes belong
    there, never in ``fn``.
    """

    host: int
    fn: Callable[..., Any]
    label: str = ""
    payload: Any = _NO_PAYLOAD
    apply: Callable[[Any], Any] | None = None


class HostView:
    """What one host's task sees of the cluster (interface).

    Concrete views route every charge either straight to the shared
    phase ledgers (:class:`DirectHostView`) or to private per-host
    ledgers merged at the barrier (:class:`LedgerHostView`).  Phase code
    is written against this interface only.
    """

    host: int
    _accumulators: "list[BatchAccumulator] | None"

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        raise NotImplementedError

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        raise NotImplementedError

    def send_batch(self, dst: int, batch: MessageBatch,
                   tag: str = "default", logical_messages: int = 1,
                   nbytes: int | None = None,
                   coalesce: bool = False) -> None:
        """One columnar block = one transport send (same cost model)."""
        self.send(
            dst, batch, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        raise NotImplementedError

    def accumulator(self) -> BatchAccumulator:
        """A batch accumulator owned by this host's task.

        Channels left staged when the task body returns are flushed by
        the executor at the phase barrier, in append order.
        """
        acc = BatchAccumulator(self, host=self.host)
        if self._accumulators is None:
            self._accumulators = []
        self._accumulators.append(acc)
        return acc

    def flush_accumulators(self) -> None:
        """Flush every accumulator handed out by :meth:`accumulator`."""
        if self._accumulators:
            for acc in self._accumulators:
                acc.flush_all()

    def add_disk(self, nbytes: float) -> None:
        raise NotImplementedError

    def add_compute(self, units: float) -> None:
        raise NotImplementedError


class DirectHostView(HostView):
    """Charges land immediately on the shared ``PhaseStats``/``Communicator``."""

    __slots__ = ("_stats", "host", "_accumulators")

    def __init__(self, stats: PhaseStats, host: int):
        self._stats = stats
        self.host = int(host)
        self._accumulators = None

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        self._stats.comm.send(
            self.host, dst, payload, tag=tag,
            logical_messages=logical_messages, nbytes=nbytes,
            coalesce=coalesce,
        )

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        return self._stats.comm.recv_all(self.host, tag)

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return self._stats.comm.recv_all_batch(self.host, tag, schema)

    def add_disk(self, nbytes: float) -> None:
        self._stats.add_disk(self.host, nbytes)

    def add_compute(self, units: float) -> None:
        self._stats.add_compute(self.host, units)


class LedgerHostView(HostView):
    """Charges accumulate privately; :meth:`merge` folds them in.

    Creating the view redirects the host's fault channel to the private
    ledger so events drawn by a concurrently-running host can be merged
    (or discarded) deterministically.  Receiving is read-only on the
    host's own queues — safe because queues are only ever appended to at
    merge barriers, and each host drains only its own.
    """

    __slots__ = ("_stats", "_channel", "host", "ledger",
                 "disk_bytes", "compute_units", "_accumulators")

    def __init__(self, stats: PhaseStats, host: int):
        self._stats = stats
        self.host = int(host)
        self.ledger = stats.comm.ledger(host)
        self.disk_bytes = 0.0
        self.compute_units = 0.0
        self._accumulators = None
        injector = stats.comm.injector
        self._channel = None
        if injector is not None:
            self._channel = injector.channel(host)
            self._channel.events_out = self.ledger.fault_events

    def send(self, dst: int, payload: Any, tag: str = "default",
             logical_messages: int = 1, nbytes: int | None = None,
             coalesce: bool = False) -> None:
        self.ledger.send(
            dst, payload, tag=tag, logical_messages=logical_messages,
            nbytes=nbytes, coalesce=coalesce,
        )

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        return self._stats.comm.recv_all(self.host, tag)

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return self._stats.comm.recv_all_batch(self.host, tag, schema)

    def add_disk(self, nbytes: float) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "HostView.add_disk")
        if self._channel is not None:
            self._channel.tick()
        self.disk_bytes += nbytes

    def add_compute(self, units: float) -> None:
        if isolation._depth:
            isolation.guard_owned(self.host, "HostView.add_compute")
        if self._channel is not None:
            self._channel.tick()
        self.compute_units += units

    def merge(self) -> None:
        """Fold this host's private charges into the shared state."""
        stats = self._stats
        stats.comm.merge_ledger(self.ledger)
        stats.disk_bytes[self.host] += self.disk_bytes
        stats.compute_units[self.host] += self.compute_units
        self.disk_bytes = 0.0
        self.compute_units = 0.0
        injector = stats.comm.injector
        if injector is not None and self._channel is not None:
            injector.events.extend(self.ledger.fault_events)
            self.ledger.fault_events = []
            injector.commit(self._channel)
            self._channel.events_out = injector.events

    def release(self) -> None:
        """Discard this host's private charges (work serial never ran)."""
        injector = self._stats.comm.injector
        if injector is not None and self._channel is not None:
            self._channel.fired.clear()
            self._channel.events_out = injector.events


class Executor:
    """Strategy for driving a phase's per-host tasks."""

    name = "abstract"

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        """Run independent per-host tasks; return results in task order.

        A barrier: every task has completed (and, for the parallel
        executor, every surviving ledger has merged) before this returns.
        Raises the first raising host's exception, in host order.
        """
        raise NotImplementedError

    def chain(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        """Run cross-host-*dependent* tasks sequentially in task order.

        Used when host h+1's algorithm reads state host h wrote (e.g.
        stateful streaming edge rules): identical under every executor
        by construction.
        """
        return [_run_direct(stats, task) for task in tasks]


def _invoke(task: HostTask, view: HostView) -> Any:
    """Call a task body, passing its declared payload when it has one."""
    if task.payload is _NO_PAYLOAD:
        return task.fn(view)
    return task.fn(view, task.payload)


def _run_direct(stats: PhaseStats, task: HostTask) -> Any:
    """Run one task on the shared ledgers, flushing staged batches at
    the end of the body (the serial phase barrier), then applying its
    declared output."""
    view = DirectHostView(stats, task.host)
    result = _invoke(task, view)
    view.flush_accumulators()
    if task.apply is not None:
        result = task.apply(result)
    return result


class SerialExecutor(Executor):
    """Deterministic reference: host-by-host over the shared ledgers."""

    name = "serial"

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        return [_run_direct(stats, task) for task in tasks]


class ParallelExecutor(Executor):
    """Thread pool over private per-host ledgers, merged in host order.

    NumPy kernels release the GIL, so per-host work genuinely overlaps.
    The pool is created lazily and reused across phases.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        check_isolation: bool = False,
        monitor: "isolation.IsolationMonitor | None" = None,
    ):
        """``check_isolation=True`` attaches a fresh
        :class:`~repro.analysis.isolation.IsolationMonitor` (or pass
        your own via ``monitor=``): every mapped task then runs under a
        thread-local ownership context, any cross-host access raises
        :class:`~repro.analysis.isolation.IsolationViolation`, and the
        monitor logs each sanctioned (host, phase, op, attribute)
        access.  Off by default — the guards cost a few percent on
        charge-heavy phases."""
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        if monitor is None and check_isolation:
            monitor = isolation.IsolationMonitor()
        self.monitor = monitor

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        workers = self._max_workers
        if workers is None:
            workers = max(2, min(width, os.cpu_count() or 1))
        if self._pool is None or self._pool_width < workers:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-host"
            )
            self._pool_width = workers
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_width = 0

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        hosts = [t.host for t in tasks]
        if len(set(hosts)) != len(hosts):
            raise ValueError("one task per host required in run()")
        if len(tasks) == 1:
            # No concurrency to gain; keep the direct (zero-copy) path.
            return [_run_direct(stats, tasks[0])]
        views = [LedgerHostView(stats, t.host) for t in tasks]
        pool = self._ensure_pool(len(tasks))
        phase_name = getattr(stats, "name", "")
        futures = [
            pool.submit(self._guarded, t, v, self.monitor, phase_name)
            for t, v in zip(tasks, views)
        ]
        outcomes = [f.result() for f in futures]
        # Barrier: merge in host order; keep the first failure in host
        # order and discard everything a serial sweep would not have run.
        # Applied outputs run right after each host's merge, so their
        # shared-state writes land in the same order serial produced.
        order = sorted(range(len(tasks)), key=lambda i: tasks[i].host)
        results: list[Any] = [None] * len(tasks)
        failed_at = None
        for pos, i in enumerate(order):
            result, exc = outcomes[i]
            views[i].merge()
            if exc is not None:
                failed_at = pos
                break
            if tasks[i].apply is not None:
                result = tasks[i].apply(result)
            results[i] = result
        if failed_at is not None:
            for i in order[failed_at + 1:]:
                views[i].release()
            raise outcomes[order[failed_at]][1]
        return results

    @staticmethod
    def _guarded(
        task: HostTask,
        view: HostView,
        monitor: isolation.IsolationMonitor | None,
        phase_name: str,
    ) -> tuple[Any, Exception | None]:
        try:
            if monitor is not None:
                with monitor.task(view.host, phase_name, task.label):
                    result = _invoke(task, view)
                    view.flush_accumulators()
                    return result, None
            result = _invoke(task, view)
            view.flush_accumulators()
            return result, None
        except Exception as exc:  # noqa: BLE001 — re-raised at the barrier
            return None, exc


class _ShippedHostView(LedgerHostView):
    """The ledger view a forked worker runs a task against.

    Identical to :class:`LedgerHostView` except every queue drain is
    logged: the worker drains its copy-on-write snapshot of the queues,
    so the parent must re-play the same drains against the real
    communicator at the barrier (:meth:`Communicator.replay_recv`).
    """

    __slots__ = ("recv_log",)

    def __init__(self, stats: PhaseStats, host: int):
        super().__init__(stats, host)
        #: ``(tag, count)`` per non-empty drain, in drain order.
        self.recv_log: list[tuple[str, int]] = []

    def recv_all(self, tag: str = "default") -> list[tuple[int, Any]]:
        out = self._stats.comm.recv_all(self.host, tag)
        if out:
            # Only non-empty drains are logged, matching when the
            # communicator notifies its observer.
            self.recv_log.append((tag, len(out)))
        return out

    def recv_all_batch(self, tag: str, schema: ColumnSchema) -> ReceivedBatch:
        return ReceivedBatch(schema, self.recv_all(tag))


def _split_chunks(n: int, k: int) -> list[list[int]]:
    """``n`` task indices split into ``min(k, n)`` contiguous chunks."""
    k = max(1, min(k, n))
    base, extra = divmod(n, k)
    chunks, start = [], 0
    for j in range(k):
        size = base + (1 if j < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def _encode_queued_payload(payload: Any) -> tuple[str, Any]:
    """Wire-encode one queued payload for the worker -> parent pipe.

    Large columnar batches go through the shared-memory wire format so
    their columns never cross the pipe; everything else rides pickle
    (:class:`MessageBatch` itself pickles via the inline wire format).
    """
    if isinstance(payload, MessageBatch) and payload.nbytes >= _SHM_THRESHOLD:
        return ("wire", payload.to_bytes(shm_threshold=_SHM_THRESHOLD))
    return ("obj", payload)


def _decode_queued_payload(enc: tuple[str, Any]) -> Any:
    kind, data = enc
    if kind == "wire":
        batch = MessageBatch.from_bytes(data)
        # Take ownership: copy shared columns private and unlink the
        # segments, so a discarded delta can never leak a segment.
        batch.detach_shared()
        return batch
    return data


def _run_shipped_task(
    stats: PhaseStats,
    task: HostTask,
    monitor: isolation.IsolationMonitor | None,
    phase_name: str,
) -> dict[str, Any]:
    """Worker-side: run one task, return its serializable delta.

    The delta is everything the parent needs to make its shared state
    bit-identical to a serial run of the task: the private ledger's
    accounting vectors and queued payloads, fault events and the
    channel's advanced RNG/op state, disk/compute charges, the drain
    log, and the isolation monitor's evidence.
    """
    comm = stats.comm
    injector = comm.injector
    base_acc = len(monitor.accesses) if monitor is not None else 0
    base_num = monitor.num_accesses if monitor is not None else 0
    base_vio = len(monitor.violations) if monitor is not None else 0
    view = _ShippedHostView(stats, task.host)
    result: Any = None
    exc: Exception | None = None
    try:
        if monitor is not None:
            with monitor.task(view.host, phase_name, task.label):
                result = _invoke(task, view)
                view.flush_accumulators()
        else:
            result = _invoke(task, view)
            view.flush_accumulators()
    except Exception as e:  # noqa: BLE001 — re-raised at the barrier
        result, exc = None, e
    ledger = view.ledger
    channel_state = None
    if injector is not None and view._channel is not None:
        ch = view._channel
        channel_state = {
            "ops": ch.ops,
            "rng": ch._rng.bit_generator.state,
            "fired": list(ch.fired),
        }
    if exc is None:
        try:
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as perr:  # noqa: BLE001 — converted to task failure
            result, exc = None, RuntimeError(
                f"host {task.host} task {task.label!r} returned an "
                f"unshippable result ({perr}); task outputs must pickle"
            )
    if exc is not None:
        try:
            pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — substitute a shippable summary
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
    evidence = None
    if monitor is not None:
        evidence = {
            "accesses": monitor.accesses[base_acc:],
            "num_accesses": monitor.num_accesses - base_num,
            "violations": monitor.violations[base_vio:],
        }
    return {
        "host": task.host,
        "result": result,
        "exc": exc,
        "vectors": {
            "sent_bytes": ledger.sent_bytes,
            "sent_messages": ledger.sent_messages,
            "retry_bytes": ledger.retry_bytes,
            "retry_messages": ledger.retry_messages,
            "stream_bytes": ledger.stream_bytes,
            "stream_logical": ledger.stream_logical,
        },
        "backoff_units": ledger.backoff_units,
        "queued": [
            (dst, tag, _encode_queued_payload(p))
            for dst, tag, p in ledger.queued
        ],
        "fault_events": ledger.fault_events,
        "channel": channel_state,
        "disk_bytes": view.disk_bytes,
        "compute_units": view.compute_units,
        "recv_log": view.recv_log,
        "monitor": evidence,
    }


class ProcessExecutor(Executor):
    """Forked worker processes over private per-host ledgers.

    The GIL-free engine: each :meth:`run` barrier forks workers that
    inherit a copy-on-write snapshot of the barrier-entry state (which
    is why task closures still work), runs each task against a
    :class:`_ShippedHostView`, and ships a picklable delta back over a
    pipe.  The parent reconstructs each host's
    :class:`~repro.runtime.comm.CommLedger`, merges in **host order**
    through the exact same ``merge_ledger`` path the thread executor
    uses, re-plays queue drains, adopts the fault channels' advanced
    RNG/op state, and folds in isolation evidence — so fault plans,
    crash recovery, sanitizer audits, and every accounting counter stay
    bit-identical to serial.

    Task bodies must not write shared structures (worker writes die
    with the worker); declared outputs go through ``HostTask.apply``,
    which runs in the parent at the barrier.  The
    ``unshippable-task-capture`` lint rule enforces this statically.

    On platforms without ``os.fork`` the executor degrades to the
    serial direct path (still correct, no speedup).
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        check_isolation: bool = False,
        monitor: "isolation.IsolationMonitor | None" = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        if monitor is None and check_isolation:
            monitor = isolation.IsolationMonitor()
        self.monitor = monitor

    def close(self) -> None:
        """Workers are per-barrier; nothing persistent to release."""

    def _width(self, num_tasks: int) -> int:
        workers = self._max_workers
        if workers is None:
            workers = max(2, min(num_tasks, os.cpu_count() or 1))
        return max(1, min(workers, num_tasks))

    def run(self, stats: PhaseStats, tasks: Sequence[HostTask]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        hosts = [t.host for t in tasks]
        if len(set(hosts)) != len(hosts):
            raise ValueError("one task per host required in run()")
        if len(tasks) == 1 or not _CAN_FORK:
            # Single task: no concurrency to gain.  No fork(): degrade
            # to the reference semantics rather than fail.
            return [_run_direct(stats, t) for t in tasks]
        deltas = self._fork_and_collect(stats, tasks)
        # Decode queued payloads for *every* delta up front — a delta
        # discarded on the failure path below must still have its
        # shared-memory segments unlinked.
        for delta in deltas:
            delta["queued"] = [
                (dst, tag, _decode_queued_payload(p))
                for dst, tag, p in delta["queued"]
            ]
        order = sorted(range(len(tasks)), key=lambda i: tasks[i].host)
        if self.monitor is not None:
            # All workers ran (as with threads), so all evidence counts;
            # host order keeps the merged log deterministic.
            for i in order:
                self._merge_evidence(deltas[i]["monitor"])
        results: list[Any] = [None] * len(tasks)
        failure: Exception | None = None
        for i in order:
            delta = deltas[i]
            self._merge_delta(stats, tasks[i], delta)
            if delta["exc"] is not None:
                # First failure in host order wins; later hosts' deltas
                # are discarded unmerged (their parent-side channels
                # were never touched, so there is nothing to release).
                failure = delta["exc"]
                break
            result = delta["result"]
            if tasks[i].apply is not None:
                result = tasks[i].apply(result)
            results[i] = result
        if failure is not None:
            raise failure
        return results

    def _fork_and_collect(
        self, stats: PhaseStats, tasks: list[HostTask]
    ) -> list[dict[str, Any]]:
        """Fork one worker per chunk; gather every task's delta."""
        chunks = _split_chunks(len(tasks), self._width(len(tasks)))
        phase_name = getattr(stats, "name", "")
        children: list[tuple[int, int, list[int]]] = []
        with warnings.catch_warnings():
            # CPython warns on fork() in a threaded process; the workers
            # only touch the snapshot and never take inherited locks.
            warnings.simplefilter("ignore", DeprecationWarning)
            for chunk in chunks:
                r, w = os.pipe()
                pid = os.fork()
                if pid == 0:
                    status = 0
                    try:
                        os.close(r)
                        shipped = [
                            _run_shipped_task(
                                stats, tasks[i], self.monitor, phase_name
                            )
                            for i in chunk
                        ]
                        blob = pickle.dumps(
                            shipped, protocol=pickle.HIGHEST_PROTOCOL
                        )
                        with os.fdopen(w, "wb") as out:
                            out.write(blob)
                    except BaseException:  # noqa: BLE001 — worker must exit
                        status = 1
                    os._exit(status)
                os.close(w)
                children.append((pid, r, chunk))
        deltas: list[dict[str, Any] | None] = [None] * len(tasks)
        broken: list[str] = []
        for pid, r, chunk in children:
            # Read the pipe fully *before* waiting: a worker blocked on
            # a full pipe buffer never exits.
            with os.fdopen(r, "rb") as reader:
                blob = reader.read()
            _, status = os.waitpid(pid, 0)
            code = os.waitstatus_to_exitcode(status)
            if code != 0 or not blob:
                hosts = [tasks[i].host for i in chunk]
                broken.append(f"hosts {hosts} (exit {code})")
                continue
            for i, delta in zip(chunk, pickle.loads(blob)):
                deltas[i] = delta
        if broken:
            raise RuntimeError(
                "process executor worker(s) died without shipping their "
                f"deltas: {', '.join(broken)}"
            )
        return [d for d in deltas if d is not None]

    def _merge_evidence(self, evidence: dict[str, Any] | None) -> None:
        if evidence is None or self.monitor is None:
            return
        mon = self.monitor
        for access in evidence["accesses"]:
            if len(mon.accesses) < mon.max_recorded:
                mon.accesses.append(access)
        mon.num_accesses += evidence["num_accesses"]
        mon.violations.extend(evidence["violations"])

    @staticmethod
    def _merge_delta(
        stats: PhaseStats, task: HostTask, delta: dict[str, Any]
    ) -> None:
        """Parent-side mirror of :meth:`LedgerHostView.merge`."""
        comm = stats.comm
        ledger = comm.ledger(task.host)
        vectors = delta["vectors"]
        ledger.sent_bytes[:] = vectors["sent_bytes"]
        ledger.sent_messages[:] = vectors["sent_messages"]
        ledger.retry_bytes[:] = vectors["retry_bytes"]
        ledger.retry_messages[:] = vectors["retry_messages"]
        ledger.stream_bytes[:] = vectors["stream_bytes"]
        ledger.stream_logical[:] = vectors["stream_logical"]
        ledger.backoff_units = delta["backoff_units"]
        # queued and fault_events must be in place *before* merge_ledger:
        # CommSan's on_merge mirrors both.
        ledger.queued = list(delta["queued"])
        ledger.fault_events = list(delta["fault_events"])
        comm.merge_ledger(ledger)
        stats.disk_bytes[task.host] += delta["disk_bytes"]
        stats.compute_units[task.host] += delta["compute_units"]
        injector = comm.injector
        if injector is not None:
            injector.events.extend(ledger.fault_events)
            channel_state = delta["channel"]
            if channel_state is not None:
                channel = injector.channel(task.host)
                channel.ops = channel_state["ops"]
                channel._rng.bit_generator.state = channel_state["rng"]
                channel.fired = list(channel_state["fired"])
                injector.commit(channel)
        for tag, count in delta["recv_log"]:
            comm.replay_recv(task.host, tag, count)


def make_executor(spec: str | Executor | None) -> Executor:
    """Resolve an executor from a name, ``None``, or an instance."""
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "parallel":
            return ParallelExecutor()
        if spec == "parallel-checked":
            # Parallel with the host-isolation race detector attached
            # (repro.analysis.isolation): same bit-identical results,
            # plus a proof that no task left its lane.
            return ParallelExecutor(check_isolation=True)
        if spec == "process":
            return ProcessExecutor()
        if spec == "process-checked":
            return ProcessExecutor(check_isolation=True)
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {EXECUTOR_NAMES}"
        )
    raise TypeError(f"cannot build an executor from {type(spec).__name__}")
