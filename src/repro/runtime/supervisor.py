"""Run supervision: phase deadlines and straggler mitigation.

A bulk-synchronous partitioner is hostage to its slowest host: every
phase barrier waits for the last arrival, so one degraded host (thermal
throttling, a failing disk, a noisy neighbour) stretches the whole run
— the paper's homogeneous-Stampede2 assumption does not survive contact
with real clusters.  :class:`RunSupervisor` closes that gap for the
simulated cluster:

* After every successful phase it evaluates the phase's
  :meth:`~repro.runtime.stats.PhaseStats.per_host_times` under the run's
  cost model and derives a *baseline* (the median over the healthy hosts
  that executed work) plus **soft** and **hard deadlines** as
  multiples of it (:class:`DeadlinePolicy`).
* A host over the soft deadline is recorded as a breach (visible in
  :attr:`RunSupervisor.deadlines`); a host over the hard deadline is
  **quarantined** via :meth:`~repro.runtime.faults.RecoveryManager.
  on_straggler`: its logical slots migrate to healthy hosts for the
  remaining phases, and the migrated slices join the pending re-read
  list — so the framework charges the mitigation's disk cost exactly as
  it charges crash recovery, and CommSan audits the phases it lands in.
* Mitigation only re-maps *physical* execution (the ``host_map``); the
  logical phase schedule — and with it every byte on the wire and the
  output partition — is unchanged, so a supervised run stays
  bit-identical to an unsupervised one.

Detection is deterministic: simulated per-host times are pure functions
of the counted work and the cost model, so the same run always breaches
(or not) at the same phase — which is what makes supervised runs
resumable and their mitigation decisions replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .cost_model import CostModel
from .faults import FaultInjector, RecoveryManager
from .stats import PhaseStats

__all__ = ["DeadlinePolicy", "PhaseDeadline", "RunSupervisor"]


@dataclass(frozen=True)
class DeadlinePolicy:
    """How phase deadlines are derived from the healthy-host baseline.

    ``soft_factor`` × baseline is the reporting threshold; breaching it
    records the host but changes nothing.  ``hard_factor`` × baseline
    triggers quarantine.  Phases whose baseline is at or below
    ``min_baseline`` (simulated seconds) are exempt: a near-zero
    denominator would turn rounding noise into mitigations.
    """

    soft_factor: float = 2.0
    hard_factor: float = 4.0
    min_baseline: float = 0.0

    def validate(self) -> None:
        if not 1.0 <= self.soft_factor <= self.hard_factor:
            raise ValueError(
                "need 1 <= soft_factor <= hard_factor, got "
                f"soft={self.soft_factor} hard={self.hard_factor}"
            )
        if self.min_baseline < 0:
            raise ValueError(f"min_baseline must be >= 0, got {self.min_baseline}")


@dataclass(frozen=True)
class PhaseDeadline:
    """One phase's deadline evaluation."""

    phase: str
    #: Median simulated time over healthy executing hosts (0 when the
    #: phase was exempt from deadlines).
    baseline: float
    soft: float
    hard: float
    #: (host, simulated time) for every host over the soft deadline.
    breaches: tuple[tuple[int, float], ...] = ()
    #: Hosts quarantined for breaching the hard deadline.
    quarantined: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "baseline": self.baseline,
            "soft": self.soft,
            "hard": self.hard,
            "breaches": [list(b) for b in self.breaches],
            "quarantined": list(self.quarantined),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "PhaseDeadline":
        return cls(
            phase=str(doc["phase"]),
            baseline=float(doc["baseline"]),
            soft=float(doc["soft"]),
            hard=float(doc["hard"]),
            breaches=tuple(
                (int(h), float(t)) for h, t in doc["breaches"]
            ),
            quarantined=tuple(int(h) for h in doc["quarantined"]),
        )


class RunSupervisor:
    """Deadline bookkeeping and straggler mitigation for one run.

    The framework calls :meth:`after_phase` once per *successful* phase
    (aborted attempts are the crash machinery's problem).  Mitigation is
    applied between phases — the bulk-synchronous barrier has already
    paid for the straggler's last phase; what the supervisor prevents is
    paying again for every remaining one.
    """

    def __init__(
        self,
        cost_model: CostModel,
        recovery: RecoveryManager,
        policy: DeadlinePolicy | None = None,
        injector: FaultInjector | None = None,
    ):
        policy = policy if policy is not None else DeadlinePolicy()
        policy.validate()
        self.cost_model = cost_model
        self.recovery = recovery
        self.policy = policy
        self.injector = injector
        #: One :class:`PhaseDeadline` per supervised phase, in order.
        self.deadlines: list[PhaseDeadline] = []

    def after_phase(self, stats: PhaseStats) -> list[int]:
        """Evaluate one completed phase; returns newly quarantined hosts."""
        per_host, _, _, _ = stats.per_host_times(self.cost_model)
        executing = np.unique(stats._executor_of())
        healthy = [
            int(h)
            for h in executing
            if self.recovery.alive[h] and not self.recovery.quarantined[h]
        ]
        baseline = float(np.median(per_host[healthy])) if healthy else 0.0
        if baseline <= self.policy.min_baseline or baseline <= 0.0:
            self.deadlines.append(
                PhaseDeadline(phase=stats.name, baseline=0.0, soft=0.0, hard=0.0)
            )
            return []
        soft = baseline * self.policy.soft_factor
        hard = baseline * self.policy.hard_factor
        breaches = tuple(
            (h, float(per_host[h])) for h in healthy if per_host[h] > soft
        )
        quarantined: list[int] = []
        for host, t in breaches:
            if t > hard and self.recovery.on_straggler(host, stats.name):
                quarantined.append(host)
                if self.injector is not None:
                    self.injector.events.append(
                        ("straggler", stats.name, host)
                    )
        self.deadlines.append(
            PhaseDeadline(
                phase=stats.name,
                baseline=baseline,
                soft=soft,
                hard=hard,
                breaches=breaches,
                quarantined=tuple(quarantined),
            )
        )
        return quarantined

    @property
    def mitigations(self) -> list[tuple[str, int]]:
        """(phase, host) for every quarantine this supervisor applied."""
        return [
            (d.phase, h) for d in self.deadlines for h in d.quarantined
        ]

    # ------------------------------------------------------------------
    # Cross-process resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the supervision history."""
        return {"deadlines": [d.to_dict() for d in self.deadlines]}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self.deadlines = [
            PhaseDeadline.from_dict(d) for d in state["deadlines"]
        ]

    def summary(self) -> str:
        soft = sum(len(d.breaches) for d in self.deadlines)
        quarantined = sum(len(d.quarantined) for d in self.deadlines)
        return (
            f"{len(self.deadlines)} phase(s) supervised, "
            f"{soft} soft-deadline breach(es), "
            f"{quarantined} host(s) quarantined"
        )
