"""The simulated distributed-memory cluster.

A :class:`SimulatedCluster` stands in for the k Stampede2 hosts the paper
partitions onto.  It owns the cost model and the message-buffer setting,
hands out one :class:`~repro.runtime.stats.PhaseStats` (with a fresh
:class:`~repro.runtime.comm.Communicator`) per named phase, and assembles
the final :class:`~repro.runtime.stats.TimeBreakdown`.

Usage::

    cluster = SimulatedCluster(num_hosts=4)
    with cluster.phase("graph reading") as ph:
        ph.add_disk(host, nbytes)
        ...
    with cluster.phase("edge assignment") as ph:
        ph.comm.send(src, dst, payload)
        ...
    breakdown = cluster.breakdown()

An optional :class:`~repro.runtime.faults.FaultInjector` threads seeded
faults through every phase: sends may fail transiently (retried and
charged by the communicator) and hosts may crash mid-phase or at the
phase boundary, in which case the phase raises
:class:`~repro.runtime.faults.HostCrashError` with its stats marked
``failed``.  A phase body that raises for *any* reason is likewise marked
failed, so aborted phases never silently pollute :meth:`total_time`.
"""

from __future__ import annotations

from contextlib import contextmanager

from .comm import Communicator
from .cost_model import STAMPEDE2, CostModel
from .executor import make_executor
from .faults import FaultInjector
from .stats import PhaseStats, TimeBreakdown

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """k simulated hosts with a shared cost model and buffer setting."""

    def __init__(
        self,
        num_hosts: int,
        cost_model: CostModel = STAMPEDE2,
        buffer_size: int = 8 << 20,
        host_speeds=None,
        injector: FaultInjector | None = None,
        max_send_retries: int = 5,
        executor=None,
        sanitizer=None,
    ):
        """``host_speeds`` optionally scales each host's compute rate (1.0
        = nominal; 0.5 = half speed).  Stampede2 is homogeneous, but a
        straggler ablation needs one slow host — and bulk-synchronous
        phases wait for it.  ``injector`` attaches a seeded fault plan;
        ``max_send_retries`` bounds per-send retransmission attempts.
        ``executor`` selects the per-host execution engine ("serial",
        "parallel", or an :class:`~repro.runtime.executor.Executor`).
        ``sanitizer`` optionally attaches a phase-communication auditor
        (:class:`repro.analysis.contracts.CommSan` or anything with its
        ``begin_phase``/``end_phase`` interface); it observes every
        phase's communicator and raises at the first contract breach."""
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        cost_model.validate()
        self.num_hosts = num_hosts
        self.cost_model = cost_model
        self.buffer_size = buffer_size
        self.injector = injector
        self.max_send_retries = max_send_retries
        self.executor = make_executor(executor)
        self.sanitizer = sanitizer
        if host_speeds is None:
            self.host_speeds = None
        else:
            import numpy as np

            speeds = np.asarray(host_speeds, dtype=np.float64)
            if speeds.shape != (num_hosts,) or np.any(speeds <= 0):
                raise ValueError("host_speeds needs one positive entry per host")
            self.host_speeds = speeds
        self._phases: list[PhaseStats] = []

    @contextmanager
    def phase(self, name: str, host_map=None):
        """Open a named bulk-synchronous phase.

        Phases are recorded in execution order; re-entering a name starts
        a new record (a crash-recovery replay of a phase produces a fresh
        record after the aborted one, which is marked ``failed``).
        ``host_map`` optionally maps each logical slot to the physical
        host executing it (crash recovery).
        """
        if self.injector is not None:
            self.injector.begin_phase(name)
        stats = PhaseStats(
            name=name,
            num_hosts=self.num_hosts,
            comm=Communicator(
                self.num_hosts,
                buffer_size=self.buffer_size,
                injector=self.injector,
                max_retries=self.max_send_retries,
            ),
            host_speeds=self.host_speeds,
            host_map=host_map,
            executor=self.executor,
        )
        self._phases.append(stats)
        if self.sanitizer is not None:
            self.sanitizer.begin_phase(stats)
        try:
            yield stats
            # A host planned to die at this phase's boundary takes the
            # phase's uncommitted output with it: the phase is aborted.
            if self.injector is not None:
                self.injector.phase_boundary()
        except BaseException:
            stats.failed = True
            # Audit the aborted phase too, but let the original failure
            # propagate; violations still accumulate on the sanitizer.
            if self.sanitizer is not None:
                self.sanitizer.end_phase(stats, raise_now=False)
            raise
        else:
            if self.sanitizer is not None:
                self.sanitizer.end_phase(stats)

    def hosts(self) -> range:
        return range(self.num_hosts)

    def close(self) -> None:
        """Release the execution engine (worker pools, shared segments).

        Idempotent, and safe while the executor is idle between phases;
        a pooled executor respawns lazily if the cluster is used again.
        """
        self.executor.close()

    def breakdown(self) -> TimeBreakdown:
        """Simulated time of every recorded phase under the cost model."""
        return TimeBreakdown(
            phases=[p.report(self.cost_model) for p in self._phases]
        )

    def total_time(self) -> float:
        """Total simulated time of all *completed* phases."""
        return self.breakdown().total

    def reset(self) -> None:
        """Forget all recorded phases (e.g. between partitioning runs)."""
        self._phases.clear()

    @property
    def phase_stats(self) -> list[PhaseStats]:
        """Raw per-phase counters, in execution order."""
        return list(self._phases)
