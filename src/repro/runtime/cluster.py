"""The simulated distributed-memory cluster.

A :class:`SimulatedCluster` stands in for the k Stampede2 hosts the paper
partitions onto.  It owns the cost model and the message-buffer setting,
hands out one :class:`~repro.runtime.stats.PhaseStats` (with a fresh
:class:`~repro.runtime.comm.Communicator`) per named phase, and assembles
the final :class:`~repro.runtime.stats.TimeBreakdown`.

Usage::

    cluster = SimulatedCluster(num_hosts=4)
    with cluster.phase("graph reading") as ph:
        ph.add_disk(host, nbytes)
        ...
    with cluster.phase("edge assignment") as ph:
        ph.comm.send(src, dst, payload)
        ...
    breakdown = cluster.breakdown()
"""

from __future__ import annotations

from contextlib import contextmanager

from .comm import Communicator
from .cost_model import STAMPEDE2, CostModel
from .stats import PhaseStats, TimeBreakdown

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """k simulated hosts with a shared cost model and buffer setting."""

    def __init__(
        self,
        num_hosts: int,
        cost_model: CostModel = STAMPEDE2,
        buffer_size: int = 8 << 20,
        host_speeds=None,
    ):
        """``host_speeds`` optionally scales each host's compute rate (1.0
        = nominal; 0.5 = half speed).  Stampede2 is homogeneous, but a
        straggler ablation needs one slow host — and bulk-synchronous
        phases wait for it."""
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        cost_model.validate()
        self.num_hosts = num_hosts
        self.cost_model = cost_model
        self.buffer_size = buffer_size
        if host_speeds is None:
            self.host_speeds = None
        else:
            import numpy as np

            speeds = np.asarray(host_speeds, dtype=np.float64)
            if speeds.shape != (num_hosts,) or np.any(speeds <= 0):
                raise ValueError("host_speeds needs one positive entry per host")
            self.host_speeds = speeds
        self._phases: list[PhaseStats] = []

    @contextmanager
    def phase(self, name: str):
        """Open a named bulk-synchronous phase.

        Phases are recorded in execution order; re-entering a name starts
        a new record (names in a breakdown are expected to be unique per
        partitioning run).
        """
        stats = PhaseStats(
            name=name,
            num_hosts=self.num_hosts,
            comm=Communicator(self.num_hosts, buffer_size=self.buffer_size),
            host_speeds=self.host_speeds,
        )
        self._phases.append(stats)
        yield stats

    def hosts(self) -> range:
        return range(self.num_hosts)

    def breakdown(self) -> TimeBreakdown:
        """Simulated time of every recorded phase under the cost model."""
        return TimeBreakdown(
            phases=[p.report(self.cost_model) for p in self._phases]
        )

    def total_time(self) -> float:
        return self.breakdown().total

    def reset(self) -> None:
        """Forget all recorded phases (e.g. between partitioning runs)."""
        self._phases.clear()

    @property
    def phase_stats(self) -> list[PhaseStats]:
        """Raw per-phase counters, in execution order."""
        return list(self._phases)
