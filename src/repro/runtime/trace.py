"""Human-readable and machine-readable rendering of simulated timings.

Turns a :class:`~repro.runtime.stats.TimeBreakdown` into an ASCII bar
chart (the textual analogue of the paper's Figure 4 stacked bars) or a
JSON document for downstream tooling.  Used by the CLI's ``--trace``
flag and handy in notebooks/tests.
"""

from __future__ import annotations

import json

from .stats import PhaseReport, TimeBreakdown

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "render_breakdown",
    "breakdown_to_json",
    "render_comparison",
]

_BAR_WIDTH = 40


def render_breakdown(breakdown: TimeBreakdown, title: str = "") -> str:
    """ASCII stacked-bar rendering of a per-phase breakdown."""
    total = breakdown.total
    lines = []
    if title:
        lines.append(title)
    if total <= 0:
        lines.append("(no simulated time recorded)")
        return "\n".join(lines)
    name_width = max((len(p.name) for p in breakdown.phases), default=0)
    for p in breakdown.phases:
        if p.failed:
            lines.append(
                f"{p.name:<{name_width}}  {'(aborted)':>13} "
                f"{'':>6}  [crash: replayed below]"
            )
            continue
        frac = p.total / total
        bar = "#" * max(1, round(frac * _BAR_WIDTH)) if p.total > 0 else ""
        lines.append(
            f"{p.name:<{name_width}}  {p.total * 1e3:10.3f} ms "
            f"{frac * 100:5.1f}%  {bar}"
        )
    lines.append(f"{'TOTAL':<{name_width}}  {total * 1e3:10.3f} ms")
    return "\n".join(lines)


def render_comparison(
    breakdowns: dict[str, TimeBreakdown], phase: str | None = None
) -> str:
    """Side-by-side totals for several runs (e.g. policies).

    A run that never recorded the requested ``phase`` (an offline
    baseline, or a comparison across different phase schedules) renders
    as ``(phase not recorded)`` instead of raising.
    """
    rows: list[tuple[str, float | None]] = []
    for label, bd in breakdowns.items():
        if phase is None:
            value: float | None = bd.total
        else:
            try:
                value = bd.phase(phase).total
            except KeyError:
                value = None
        rows.append((label, value))
    if not rows:
        return "(nothing to compare)"
    present = [v for _, v in rows if v is not None]
    worst = max(present) if present else 0.0
    width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        if value is None:
            lines.append(f"{label:<{width}}  {'(phase not recorded)':>13}")
            continue
        frac = value / worst if worst > 0 else 0.0
        bar = "#" * max(1, round(frac * _BAR_WIDTH)) if value > 0 else ""
        lines.append(f"{label:<{width}}  {value * 1e3:10.3f} ms  {bar}")
    return "\n".join(lines)


def _phase_dict(p: PhaseReport) -> dict:
    return {
        "name": p.name,
        "total_s": p.total,
        "disk_s": float(p.disk),
        "compute_s": p.compute,
        "comm_s": p.comm,
        "collective_s": p.collective,
        "comm_bytes": p.comm_bytes,
        "comm_messages": p.comm_messages,
        "retry_bytes": p.retry_bytes,
        "retry_messages": p.retry_messages,
        "failed": bool(p.failed),
    }


#: Bumped whenever the JSON trace layout changes shape.  Version 2 added
#: ``schema_version`` itself and the top-level ``failed_phases`` marker
#: list (aborted phases were previously visible only via the per-phase
#: ``failed`` flags).
TRACE_SCHEMA_VERSION = 2


def breakdown_to_json(breakdown: TimeBreakdown, **metadata) -> str:
    """JSON document with per-phase detail plus caller metadata.

    Aborted phases are explicitly marked: each carries ``failed: true``
    in ``phases``, and their names are repeated in ``failed_phases`` so
    downstream tooling need not scan the phase list to notice a crash.
    """
    doc = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "total_s": breakdown.total,
        "failed_phases": [p.name for p in breakdown.phases if p.failed],
        "phases": [_phase_dict(p) for p in breakdown.phases],
    }
    doc.update(metadata)
    return json.dumps(doc, indent=2)
