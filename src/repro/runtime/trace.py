"""Human-readable and machine-readable rendering of simulated timings.

Turns a :class:`~repro.runtime.stats.TimeBreakdown` into an ASCII bar
chart (the textual analogue of the paper's Figure 4 stacked bars) or a
JSON document for downstream tooling.  Used by the CLI's ``--trace``
flag and handy in notebooks/tests.
"""

from __future__ import annotations

import json

from .stats import PhaseReport, TimeBreakdown

__all__ = ["render_breakdown", "breakdown_to_json", "render_comparison"]

_BAR_WIDTH = 40


def render_breakdown(breakdown: TimeBreakdown, title: str = "") -> str:
    """ASCII stacked-bar rendering of a per-phase breakdown."""
    total = breakdown.total
    lines = []
    if title:
        lines.append(title)
    if total <= 0:
        lines.append("(no simulated time recorded)")
        return "\n".join(lines)
    name_width = max((len(p.name) for p in breakdown.phases), default=0)
    for p in breakdown.phases:
        if p.failed:
            lines.append(
                f"{p.name:<{name_width}}  {'(aborted)':>13} "
                f"{'':>6}  [crash: replayed below]"
            )
            continue
        frac = p.total / total
        bar = "#" * max(1, round(frac * _BAR_WIDTH)) if p.total > 0 else ""
        lines.append(
            f"{p.name:<{name_width}}  {p.total * 1e3:10.3f} ms "
            f"{frac * 100:5.1f}%  {bar}"
        )
    lines.append(f"{'TOTAL':<{name_width}}  {total * 1e3:10.3f} ms")
    return "\n".join(lines)


def render_comparison(
    breakdowns: dict[str, TimeBreakdown], phase: str | None = None
) -> str:
    """Side-by-side totals for several runs (e.g. policies)."""
    rows = []
    for label, bd in breakdowns.items():
        value = bd.total if phase is None else bd.phase(phase).total
        rows.append((label, value))
    if not rows:
        return "(nothing to compare)"
    worst = max(v for _, v in rows)
    width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        frac = value / worst if worst > 0 else 0.0
        bar = "#" * max(1, round(frac * _BAR_WIDTH)) if value > 0 else ""
        lines.append(f"{label:<{width}}  {value * 1e3:10.3f} ms  {bar}")
    return "\n".join(lines)


def _phase_dict(p: PhaseReport) -> dict:
    return {
        "name": p.name,
        "total_s": p.total,
        "disk_s": float(p.disk),
        "compute_s": p.compute,
        "comm_s": p.comm,
        "collective_s": p.collective,
        "comm_bytes": p.comm_bytes,
        "comm_messages": p.comm_messages,
        "retry_bytes": p.retry_bytes,
        "retry_messages": p.retry_messages,
        "failed": p.failed,
    }


def breakdown_to_json(breakdown: TimeBreakdown, **metadata) -> str:
    """JSON document with per-phase detail plus caller metadata."""
    doc = {
        "total_s": breakdown.total,
        "phases": [_phase_dict(p) for p in breakdown.phases],
    }
    doc.update(metadata)
    return json.dumps(doc, indent=2)
