"""Simulated distributed runtime: cluster, message passing, cost model,
and deterministic fault injection."""

from .cluster import SimulatedCluster
from .comm import CommLedger, Communicator, payload_nbytes
from .cost_model import REPRO_CALIBRATED, SLOW_NETWORK, STAMPEDE2, CostModel
from .executor import (
    Executor,
    HostTask,
    HostView,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from .faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultReport,
    HostCrash,
    HostCrashError,
    RecoveryManager,
    SendRetriesExhausted,
    UnrecoverableClusterError,
)
from .stats import PhaseReport, PhaseStats, TimeBreakdown
from .supervisor import DeadlinePolicy, PhaseDeadline, RunSupervisor
from .memory import (
    MemoryBudgetExceeded,
    check_memory,
    cusp_peak_memory,
    xtrapulp_peak_memory,
)
from .trace import breakdown_to_json, render_breakdown, render_comparison

__all__ = [
    "SimulatedCluster",
    "Communicator",
    "CommLedger",
    "payload_nbytes",
    "Executor",
    "HostTask",
    "HostView",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "CostModel",
    "STAMPEDE2",
    "SLOW_NETWORK",
    "REPRO_CALIBRATED",
    "PhaseReport",
    "PhaseStats",
    "TimeBreakdown",
    "DeadlinePolicy",
    "PhaseDeadline",
    "RunSupervisor",
    "FaultPlan",
    "HostCrash",
    "FaultInjector",
    "FaultReport",
    "RecoveryManager",
    "FaultError",
    "HostCrashError",
    "SendRetriesExhausted",
    "UnrecoverableClusterError",
    "render_breakdown",
    "render_comparison",
    "breakdown_to_json",
    "MemoryBudgetExceeded",
    "check_memory",
    "cusp_peak_memory",
    "xtrapulp_peak_memory",
]
