"""Columnar message fabric: typed structure-of-arrays record batches.

CuSP's speedups come from treating communication as bulk buffered
streams (paper §IV-D3), but a simulator that moves one Python object
per logical message spends its time in the interpreter, not in the
algorithm.  This module is the data plane of the batch message path:

* :class:`ColumnSchema` — the *type* of a batch: named, dtyped columns
  (all the same length) plus named 8-byte scalars.  Schemas compare by
  value, so a sender and a receiver that construct the same schema
  independently agree on the channel type.
* :class:`MessageBatch` — one structure-of-arrays record batch.  Its
  serialized size is O(1) exact (``rows * row_nbytes + 8 * scalars``,
  no recursive payload walk) and :meth:`MessageBatch.slice` is
  zero-copy (NumPy views).
* :class:`ReceivedBatch` — the receiver-side view
  :meth:`~repro.runtime.comm.Communicator.recv_all_batch` returns:
  per-column concatenations of every queued block, the per-block source
  hosts/lengths/scalars, and a lazily materialized per-row ``src``
  column — instead of a Python list of ``(src, payload)`` tuples.
* :class:`BatchAccumulator` — sender-side staging: append batches into
  per-``(dst, tag)`` buffers and flush them as contiguous blocks at
  explicit points (or automatically at the executor's phase barrier).
  Every flushed block is exactly one transport send, so byte/message
  accounting, fault-injection draws, and CommSan's mirrored traffic
  matrix all see the same operations the scalar path would have issued
  when one block is staged per peer — which is how the phases use it.

The scalar ``send``/``recv_all`` path remains fully supported; the
batch layer is sugar *plus vectorization*, never a different cost
model.  See ``docs/PERFORMANCE.md`` for the design rationale.
"""

from __future__ import annotations

import itertools
import os
import struct
import zlib
from typing import Any, Iterator, Protocol, Sequence

import numpy as np

__all__ = [
    "ColumnSchema",
    "MessageBatch",
    "ReceivedBatch",
    "BatchAccumulator",
    "FABRIC_NAMES",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "resolve_fabric",
]

#: Wire-format framing for :meth:`MessageBatch.to_bytes`.
WIRE_MAGIC = b"RBAT"
WIRE_VERSION = 2

#: Column storage kinds in the wire format.
_STORE_INLINE = 0
_STORE_SHM = 1
#: Borrowed segment: the *encoder* keeps ownership (and the live
#: mapping); the decoder maps it zero-copy but must never unlink it.
#: This is how a parent re-ships a queued batch to a pool worker
#: without copying the column or transferring the unlink obligation.
_STORE_SHM_KEEP = 2

#: Header flag: producer and consumer share this machine's memory (the
#: executor's intra-box pipes), so the decoder may skip re-verifying the
#: CRC — column bytes in segments never crossed the pipe at all.  The
#: pickle/``__reduce__`` path never sets it.
_FLAG_TRUSTED = 1

#: Scalar kinds in the wire format (signed 64-bit int / IEEE double).
_SCALAR_INT = 0
_SCALAR_FLOAT = 1

_HEADER = struct.Struct("<4sHHQHHI")  # magic, version, flags, rows, ncols, nscalars, crc

#: Valid values for the ``fabric=`` knob threaded through CuSP and the CLI.
FABRIC_NAMES = ("columnar", "scalar")

#: Serialized size of one scalar field (one machine word, matching
#: :func:`repro.runtime.comm.payload_nbytes` on a Python number).
SCALAR_NBYTES = 8


def resolve_fabric(spec: str | None) -> str:
    """Validate a fabric name (``None`` means the default, columnar)."""
    if spec is None:
        return "columnar"
    if spec not in FABRIC_NAMES:
        raise ValueError(
            f"unknown fabric {spec!r}; expected one of {FABRIC_NAMES}"
        )
    return spec


class ColumnSchema:
    """The type of a message batch: dtyped columns plus scalar fields.

    ``columns`` maps names to dtypes; every column of a conforming batch
    has the same row count.  ``scalars`` are per-batch 8-byte fields
    (counts, flags) that ride along without a row dimension.  Schemas
    are immutable, hashable, and compare by value.
    """

    __slots__ = ("columns", "scalars", "names", "row_nbytes", "_hash")

    def __init__(
        self,
        columns: Sequence[tuple[str, Any]],
        scalars: Sequence[str] = (),
    ):
        cols = tuple((str(name), np.dtype(dt)) for name, dt in columns)
        names = tuple(name for name, _ in cols)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        scalar_names = tuple(str(s) for s in scalars)
        if len(set(scalar_names)) != len(scalar_names):
            raise ValueError(f"duplicate scalar names in {scalar_names}")
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "scalars", scalar_names)
        object.__setattr__(self, "names", names)
        # Memoized per-schema: the exact serialized bytes per row.  This
        # is what makes MessageBatch.nbytes O(1) instead of a recursive
        # payload walk.
        object.__setattr__(
            self, "row_nbytes", sum(dt.itemsize for _, dt in cols)
        )
        object.__setattr__(self, "_hash", hash((cols, scalar_names)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ColumnSchema is immutable")

    def __reduce__(self) -> tuple[Any, ...]:
        # The immutability guard above breaks the default slot-state
        # protocol, so pickling goes through the constructor instead.
        return (ColumnSchema, (self.columns, self.scalars))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnSchema):
            return NotImplemented
        return self.columns == other.columns and self.scalars == other.scalars

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{dt}" for n, dt in self.columns)
        extra = f"; scalars={list(self.scalars)}" if self.scalars else ""
        return f"ColumnSchema({cols}{extra})"

    def empty_columns(self) -> tuple[np.ndarray, ...]:
        """Zero-row arrays of the right dtypes, in column order."""
        return tuple(np.empty(0, dtype=dt) for _, dt in self.columns)


class MessageBatch:
    """One structure-of-arrays record batch conforming to a schema.

    Columns are held by reference (zero-copy); receivers must not
    mutate arrays they do not own, exactly as with the scalar path.
    """

    __slots__ = ("schema", "columns", "scalars", "rows", "_shm", "_shm_owner", "_crc")

    def __init__(
        self,
        schema: ColumnSchema,
        columns: Sequence[np.ndarray] = (),
        scalars: Sequence[float] = (),
    ):
        cols = tuple(np.asarray(c) for c in columns)
        if len(cols) != len(schema.columns):
            raise ValueError(
                f"schema has {len(schema.columns)} column(s), "
                f"got {len(cols)}"
            )
        rows = cols[0].shape[0] if cols else 0
        for (name, dt), arr in zip(schema.columns, cols):
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if arr.dtype != dt:
                raise TypeError(
                    f"column {name!r} is {arr.dtype}, schema says {dt}"
                )
            if arr.shape[0] != rows:
                raise ValueError(
                    f"column {name!r} has {arr.shape[0]} rows, "
                    f"expected {rows}"
                )
        scal = tuple(scalars)
        if len(scal) != len(schema.scalars):
            raise ValueError(
                f"schema has {len(schema.scalars)} scalar(s), "
                f"got {len(scal)}"
            )
        self.schema = schema
        self.columns = cols
        self.scalars = scal
        self.rows = rows
        #: ``(column_index, SharedMemory)`` pairs of *owned* segments this
        #: batch must eventually unlink (populated by :meth:`from_bytes`
        #: for ``_STORE_SHM`` columns and by borrow-mode
        #: :meth:`to_bytes` for segments it creates).
        self._shm: tuple[tuple[int, Any], ...] = ()
        #: pid of the process that owns ``_shm``'s unlink obligation; a
        #: forked child inheriting the batch must never unlink segments
        #: its parent still serves to other workers.
        self._shm_owner: int | None = None
        #: Memoized :meth:`checksum` (columns are immutable by contract).
        self._crc: int | None = None

    @classmethod
    def empty(
        cls, schema: ColumnSchema, scalars: Sequence[float] = ()
    ) -> "MessageBatch":
        """A zero-row batch (the columnar 'nothing to send' marker)."""
        if not scalars and schema.scalars:
            scalars = (0,) * len(schema.scalars)
        return cls(schema, schema.empty_columns(), scalars)

    @property
    def nbytes(self) -> int:
        """Exact serialized size, computed in O(1) from the schema."""
        return self.rows * self.schema.row_nbytes + SCALAR_NBYTES * len(
            self.scalars
        )

    def checksum(self) -> int:
        """CRC-32 over the batch's serialized content (columns + scalars).

        This is the per-block integrity check of the reliable transport:
        a sender stamps each flushed block, the receiver recomputes the
        CRC and re-requests any block whose checksum disagrees — the
        ``corrupt-payload`` fault family.  In the simulation payloads are
        delivered by reference, so delivery stays exactly-once while the
        injector charges the re-request + retransmission cost; the
        checksum itself is real, and any bit flip in a column or scalar
        changes it.

        Memoized: batch columns are immutable by contract (receivers
        must not mutate arrays they do not own), so the CRC is computed
        at most once per batch and re-used by every later serialization.
        """
        if self._crc is not None:
            return self._crc
        crc = 0
        for (name, dt), col in zip(self.schema.columns, self.columns):
            crc = zlib.crc32(name.encode(), crc)
            # A C-contiguous ndarray satisfies the buffer protocol, so
            # crc32 streams straight over the column — no tobytes() copy.
            crc = zlib.crc32(np.ascontiguousarray(col), crc)
        for value in self.scalars:
            crc = zlib.crc32(repr(value).encode(), crc)
        self._crc = crc
        return crc

    def column(self, name: str) -> np.ndarray:
        return self.columns[self.schema.names.index(name)]

    def scalar(self, name: str) -> float:
        return self.scalars[self.schema.scalars.index(name)]

    def slice(self, start: int, stop: int) -> "MessageBatch":
        """A zero-copy row slice (columns are views, scalars shared)."""
        return MessageBatch(
            self.schema,
            tuple(c[start:stop] for c in self.columns),
            self.scalars,
        )

    # ------------------------------------------------------------------
    # Versioned wire format (process executor / cross-process shipping)
    # ------------------------------------------------------------------
    def to_bytes(
        self,
        shm_threshold: int | None = None,
        *,
        borrow: bool = False,
        trusted: bool = False,
    ) -> bytes:
        """Serialize to the versioned wire format.

        Layout (little-endian, version 2): a fixed header (magic,
        version, flags, rows, #columns, #scalars, CRC-32 of
        :meth:`checksum`), the schema (length-prefixed UTF-8 column
        names + dtype strings, then scalar names), the scalar values
        (kind-tagged int64/float64 words), and finally each column as
        either inline raw bytes or — when ``shm_threshold`` is given and
        ``col.nbytes >= shm_threshold`` — a named POSIX shared-memory
        segment holding the data, so a worker process can hand a large
        column to its parent without copying it through the pipe.

        Default mode: segments are owned by whoever decodes the buffer
        (:meth:`from_bytes` maps them zero-copy; :meth:`detach_shared`
        or :meth:`release_shared` unlinks).  The creator deliberately
        unregisters the segments from the ``multiprocessing`` resource
        tracker — lifecycle is explicit here, not process-exit-scoped.

        ``borrow=True``: the *encoder* keeps segment ownership.  Columns
        whose segments this batch already owns (a decoded batch being
        re-shipped) are referenced **by name** — zero bytes copied;
        columns needing a fresh segment get one that joins this batch's
        owned set instead of transferring to the decoder.  Decoders map
        borrowed columns zero-copy and never unlink them, so a wire blob
        can be shipped to a worker that dies before decoding (or never
        drains the tag) without leaking or double-freeing anything: the
        encoder's own release is the single point of truth.

        ``trusted=True`` (implied by ``borrow``) marks the blob as
        intra-machine: the decoder skips the CRC re-verification pass
        (segment bytes never crossed the pipe) and the CRC field is
        only populated when already memoized.
        """
        trusted = trusted or borrow
        if trusted:
            crc = self._crc if self._crc is not None else 0
        else:
            crc = self.checksum()
        flags = _FLAG_TRUSTED if trusted else 0
        parts = [
            _HEADER.pack(
                WIRE_MAGIC, WIRE_VERSION, flags, self.rows,
                len(self.schema.columns), len(self.schema.scalars), crc,
            )
        ]
        for name, dt in self.schema.columns:
            nb = name.encode()
            db = dt.str.encode()
            parts.append(struct.pack("<H", len(nb)) + nb)
            parts.append(struct.pack("<H", len(db)) + db)
        for sname in self.schema.scalars:
            sb = sname.encode()
            parts.append(struct.pack("<H", len(sb)) + sb)
        for value in self.scalars:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    "wire format carries int/float scalars only, got "
                    f"{type(value).__name__}"
                )
            if isinstance(value, int):
                if not -(2**63) <= value < 2**63:
                    raise TypeError(f"scalar {value} exceeds int64 range")
                parts.append(struct.pack("<Bq", _SCALAR_INT, value))
            else:
                parts.append(struct.pack("<Bd", _SCALAR_FLOAT, value))
        owned = {i: seg for i, seg in self._shm} if borrow else {}
        fresh: list[tuple[int, Any]] = []
        for i, col in enumerate(self.columns):
            seg = owned.get(i)
            if seg is not None:
                # The column still lives in a segment this batch owns:
                # re-ship it by name, zero bytes copied.
                nm = seg.name.encode()
                parts.append(
                    struct.pack("<BH", _STORE_SHM_KEEP, len(nm)) + nm
                    + struct.pack("<Q", col.nbytes)
                )
                continue
            raw = np.ascontiguousarray(col)
            if shm_threshold is not None and raw.nbytes >= shm_threshold:
                if borrow:
                    seg = _create_shared_segment(raw, tracked=True)
                    fresh.append((i, seg))
                    store = _STORE_SHM_KEEP
                else:
                    seg = _create_shared_segment(raw)
                    store = _STORE_SHM
                nm = seg.name.encode()
                parts.append(
                    struct.pack("<BH", store, len(nm)) + nm
                    + struct.pack("<Q", raw.nbytes)
                )
                if not borrow:
                    seg.close()
            else:
                parts.append(
                    struct.pack("<BQ", _STORE_INLINE, raw.nbytes)
                    + raw.tobytes()
                )
        if fresh:
            self._shm = self._shm + tuple(fresh)
            if self._shm_owner is None:
                self._shm_owner = os.getpid()
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, buf: bytes) -> "MessageBatch":
        """Decode :meth:`to_bytes` output (zero-copy where possible).

        Inline columns become read-only views over ``buf``;
        shared-memory columns are mapped in place — *owned* ones stay
        linked until :meth:`detach_shared` / :meth:`release_shared`,
        *borrowed* ones (``borrow=True`` encodes) are mapped and
        immediately divorced from their ``SharedMemory`` wrapper, so
        the view stays valid for its own lifetime while the encoder
        keeps the only unlink obligation.  The embedded CRC-32 is
        recomputed over the decoded batch and a mismatch raises
        ``ValueError`` — the same integrity check the reliable
        transport performs per block — except for trusted intra-machine
        blobs, whose column bytes never crossed a pipe.
        """
        view = memoryview(buf)
        if len(view) < _HEADER.size:
            raise ValueError("truncated wire batch (short header)")
        magic, version, flags, rows, ncols, nscalars, crc = _HEADER.unpack(
            view[: _HEADER.size]
        )
        if magic != WIRE_MAGIC:
            raise ValueError(f"bad wire magic {magic!r}")
        if version != WIRE_VERSION:
            raise ValueError(f"unsupported wire version {version}")
        off = _HEADER.size

        def take(n: int) -> memoryview:
            nonlocal off
            if off + n > len(view):
                raise ValueError("truncated wire batch")
            chunk = view[off : off + n]
            off += n
            return chunk

        def take_str() -> str:
            (n,) = struct.unpack("<H", take(2))
            return bytes(take(n)).decode()

        columns_spec = []
        for _ in range(ncols):
            name = take_str()
            columns_spec.append((name, np.dtype(take_str())))
        scalar_names = tuple(take_str() for _ in range(nscalars))
        schema = ColumnSchema(columns_spec, scalar_names)
        scalars: list[float] = []
        for _ in range(nscalars):
            (kind,) = struct.unpack("<B", take(1))
            if kind == _SCALAR_INT:
                scalars.append(struct.unpack("<q", take(8))[0])
            elif kind == _SCALAR_FLOAT:
                scalars.append(struct.unpack("<d", take(8))[0])
            else:
                raise ValueError(f"unknown scalar kind {kind}")
        columns: list[np.ndarray] = []
        segments: list[tuple[int, Any]] = []
        for i, (name, dt) in enumerate(schema.columns):
            (store,) = struct.unpack("<B", take(1))
            if store == _STORE_INLINE:
                (nbytes,) = struct.unpack("<Q", take(8))
                columns.append(np.frombuffer(take(nbytes), dtype=dt))
            elif store in (_STORE_SHM, _STORE_SHM_KEEP):
                (nm_len,) = struct.unpack("<H", take(2))
                seg_name = bytes(take(nm_len)).decode()
                (nbytes,) = struct.unpack("<Q", take(8))
                seg = _attach_shared_segment(seg_name)
                columns.append(
                    np.frombuffer(seg.buf, dtype=dt, count=nbytes // dt.itemsize)
                )
                if store == _STORE_SHM:
                    segments.append((i, seg))
                else:
                    # Borrowed: the encoder keeps the unlink obligation.
                    # Divorce the mapping from its wrapper so the view
                    # outlives the (encoder-unlinked) name on its own.
                    _defuse_segment(seg)
            else:
                raise ValueError(f"unknown column storage {store}")
        batch = cls(schema, tuple(columns), tuple(scalars))
        batch._shm = tuple(segments)
        if segments:
            batch._shm_owner = os.getpid()
        if batch.rows != rows:
            raise ValueError(
                f"row count mismatch: header says {rows}, decoded {batch.rows}"
            )
        if flags & _FLAG_TRUSTED:
            # Intra-machine blob: segment bytes never crossed the pipe,
            # so there is nothing the CRC pass would catch that the
            # header parse did not.  Adopt the memoized value if the
            # encoder had one.
            if crc:
                batch._crc = crc
        else:
            actual = batch.checksum()
            if actual != crc:
                raise ValueError(
                    f"wire checksum mismatch: header {crc:#010x}, "
                    f"recomputed {actual:#010x}"
                )
        return batch

    def detach_shared(self) -> None:
        """Copy shared-memory columns private, then close + unlink them.

        Call once on the decoding side after :meth:`from_bytes` to take
        ownership of the data; a no-op for purely inline batches.
        """
        if not self._shm:
            return
        cols = list(self.columns)
        for i, seg in self._shm:
            cols[i] = cols[i].copy()
        self.columns = tuple(cols)
        for _, seg in self._shm:
            seg.close()
            seg.unlink()
        self._shm = ()
        self._shm_owner = None

    def release_shared(self) -> None:
        """Unlink owned segments **without** copying the columns private.

        The zero-copy sibling of :meth:`detach_shared`: the mapped views
        stay valid (a mapping lives until its last view dies); only the
        ``/dev/shm`` names are removed.  A no-op in any process that is
        not the recorded owner — a forked child inheriting this batch
        must never unlink segments its parent still serves to workers.
        Called automatically when the owning batch is garbage-collected,
        so queue entries dropped on abort/recovery paths self-clean.
        """
        if not self._shm:
            return
        if self._shm_owner != os.getpid():
            return
        for _, seg in self._shm:
            _release_segment(seg)
        self._shm = ()
        self._shm_owner = None

    def __del__(self) -> None:
        try:
            self.release_shared()
        # repro-lint: disable-next-line=swallowed-error -- GC/interpreter-teardown finalizer; release is best-effort and idempotent
        except Exception:  # pragma: no cover
            pass

    def __reduce__(self) -> tuple[Any, ...]:
        # Pickle rides the wire format (inline columns only), so a batch
        # crossing a process boundary keeps its exact checksum/nbytes.
        return (_batch_from_wire, (self.to_bytes(),))

    def __len__(self) -> int:
        return self.rows

    def __repr__(self) -> str:
        return (
            f"MessageBatch(rows={self.rows}, nbytes={self.nbytes}, "
            f"schema={self.schema!r})"
        )


def _batch_from_wire(buf: bytes) -> MessageBatch:
    """Module-level unpickle hook for :meth:`MessageBatch.__reduce__`."""
    return MessageBatch.from_bytes(buf)


#: Name family for every segment this process (and its forked workers)
#: creates.  Computed once at import so forked children inherit the same
#: family and :func:`leaked_segments` can sweep for stragglers; the
#: creator's live pid is appended per segment so concurrent creators in
#: the same family never fight over a name.
_SEGMENT_FAMILY = f"repro-{os.getpid():x}-"
_segment_serial = itertools.count()

#: Live registry of *resident* segments this process owns (name ->
#: nbytes).  Ephemeral wire-format segments are intentionally absent:
#: their ownership transfers to whoever decodes the batch, so only the
#: long-lived graph-residency segments count toward the memory model
#: (see :func:`repro.runtime.memory.shared_segment_overhead`).
_resident_registry: dict[str, int] = {}


def _next_segment_name() -> str:
    return f"{_SEGMENT_FAMILY}{os.getpid():x}-{next(_segment_serial)}"


def register_resident_segment(name: str, nbytes: int) -> None:
    """Record a long-lived segment in the per-process accounting registry."""
    _resident_registry[name] = nbytes


def unregister_resident_segment(name: str) -> None:
    """Drop a segment from the accounting registry (idempotent)."""
    _resident_registry.pop(name, None)


def resident_segment_nbytes() -> int:
    """Total bytes of live resident segments owned by this process."""
    return sum(_resident_registry.values())


def leaked_segments() -> list[str]:
    """Names of this process family's segments still present in /dev/shm.

    Ground truth for leak assertions: after an executor is closed (even
    after killing a worker mid-phase) this must be empty.
    """
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-POSIX platform
        return []
    return sorted(n for n in os.listdir(base) if n.startswith(_SEGMENT_FAMILY))


def _create_shared_segment(raw: np.ndarray, tracked: bool = False) -> Any:
    """A new shared-memory segment holding ``raw``'s bytes.

    By default the segment is unregistered from the ``multiprocessing``
    resource tracker on purpose: the decoding side unlinks explicitly
    (``detach_shared``), and a fork-spawned creator calling ``os._exit``
    must not leave a tracker entry behind to double-unlink.  Pass
    ``tracked=True`` for resident segments whose attach/unlink pairing
    happens in this same process (the executor pool's graph residency):
    the registration stays so a hard-crashed parent still gets tracker
    cleanup, and the owner's ``unlink()`` balances it.
    """
    from multiprocessing import resource_tracker, shared_memory

    while True:
        try:
            seg = shared_memory.SharedMemory(
                name=_next_segment_name(), create=True, size=max(1, raw.nbytes)
            )
            break
        # repro-lint: disable-next-line=swallowed-error -- name collision with a sibling process in the same family; the serial counter advances and we retry
        except FileExistsError:  # pragma: no cover - racing forked creators
            continue
    if not tracked:
        try:
            resource_tracker.unregister(seg._name, "shared_memory")  # noqa: SLF001
        # repro-lint: disable-next-line=swallowed-error -- tracker API is CPython-internal; segment lifetime is managed explicitly either way
        except Exception:  # pragma: no cover
            pass
    if raw.nbytes:
        # One memcpy straight into the mapping — ``tobytes()`` would
        # materialize a second full copy on the heap first.
        seg.buf[: raw.nbytes] = memoryview(raw).cast("B")
    return seg


def _defuse_segment(seg: Any) -> None:
    """Divorce a mapping from its ``SharedMemory`` wrapper (zero-copy).

    Any live NumPy view built over ``seg.buf`` holds the exporting
    memoryview via its base chain, and the memoryview holds the mmap —
    so after dropping the wrapper's file descriptor and its own
    references, the mapping lives exactly as long as the last view and
    is munmapped by ordinary refcounting.  ``SharedMemory.close()`` (and
    thus ``__del__``) becomes a no-op, which is the point: the wrapper's
    eager ``_buf.release()`` would raise ``BufferError`` under exported
    views.  The segment *name* is untouched; pair with ``unlink()``
    (before or after) according to who owns it.
    """
    fd = getattr(seg, "_fd", -1)
    if fd >= 0:
        os.close(fd)
        seg._fd = -1  # noqa: SLF001
    seg._buf = None  # noqa: SLF001
    seg._mmap = None  # noqa: SLF001


def _release_segment(seg: Any) -> None:
    """Unlink an owned segment, keeping any live views valid.

    Tolerates a name already swept by crash teardown: ``unlink()``
    unregisters from the resource tracker only after a successful
    ``shm_unlink``, and the sweeper's own unlink already unregistered
    the shared set entry, so a ``FileNotFoundError`` here must *not* be
    followed by a second unregister (the tracker daemon would print a
    ``KeyError``).
    """
    try:
        seg.unlink()
    # repro-lint: disable-next-line=swallowed-error -- already unlinked by the crash sweeper, whose unlink balanced the tracker entry
    except FileNotFoundError:  # pragma: no cover - post-crash teardown race
        pass
    _defuse_segment(seg)


def _attach_shared_segment(name: str) -> Any:
    """Map an existing segment, leaving its tracker registration alone.

    Attaching registers with the resource tracker (CPython < 3.13 does
    so unconditionally) and ``detach_shared``'s ``unlink()`` unregisters
    again internally — so the attach-side registration is already
    balanced, and an explicit unregister here would make the tracker
    daemon print a KeyError for every segment.

    A missing segment means its owner already unlinked it (each wire
    batch must be decoded exactly once) or the producing worker died
    before publishing — either way the receiver gets a clean,
    diagnosable error rather than a raw ``FileNotFoundError``.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise ValueError(
            f"shared-memory segment {name!r} is gone; wire batches own "
            "their segments and must be decoded exactly once, and a "
            "worker that died mid-send leaves nothing to attach"
        ) from exc


def concat_batches(
    schema: ColumnSchema, batches: Sequence[MessageBatch]
) -> MessageBatch:
    """One contiguous batch holding every row of ``batches`` in order.

    Scalars do not concatenate meaningfully, so merging is only defined
    for scalar-free schemas (enforced by :class:`BatchAccumulator`).
    """
    if schema.scalars:
        raise ValueError("cannot merge batches of a schema with scalars")
    for b in batches:
        if b.schema != schema:
            raise TypeError(f"schema mismatch: {b.schema!r} != {schema!r}")
    columns = tuple(
        np.concatenate([b.columns[i] for b in batches])
        if batches
        else np.empty(0, dtype=dt)
        for i, (_, dt) in enumerate(schema.columns)
    )
    return MessageBatch(schema, columns)


class ReceivedBatch:
    """Receiver-side view of every block queued under one (tag, schema).

    ``columns[name]`` is the concatenation of that column across all
    blocks, in queue (FIFO) order — the exact arrays a scalar receiver
    would have built with a Python loop plus ``np.concatenate``.
    ``srcs``/``lengths`` record where each block came from and how many
    rows it carried; ``scalars[name]`` stacks each block's scalar.
    """

    __slots__ = ("schema", "columns", "srcs", "lengths", "scalars",
                 "_src_column")

    def __init__(
        self,
        schema: ColumnSchema,
        blocks: Sequence[tuple[int, MessageBatch]],
    ):
        for _, batch in blocks:
            if not isinstance(batch, MessageBatch):
                raise TypeError(
                    "recv_all_batch on a queue holding "
                    f"{type(batch).__name__} payloads; scalar payloads "
                    "must be drained with recv_all"
                )
            if batch.schema != schema:
                raise TypeError(
                    f"schema mismatch on receive: {batch.schema!r} != "
                    f"{schema!r}"
                )
        self.schema = schema
        self.srcs = np.fromiter(
            (src for src, _ in blocks), dtype=np.int64, count=len(blocks)
        )
        self.lengths = np.fromiter(
            (b.rows for _, b in blocks), dtype=np.int64, count=len(blocks)
        )
        self.columns: dict[str, np.ndarray] = {}
        for i, (name, dt) in enumerate(schema.columns):
            self.columns[name] = (
                np.concatenate([b.columns[i] for _, b in blocks])
                if blocks
                else np.empty(0, dtype=dt)
            )
        self.scalars: dict[str, np.ndarray] = {
            name: np.asarray([b.scalars[i] for _, b in blocks])
            for i, name in enumerate(schema.scalars)
        }
        self._src_column: np.ndarray | None = None

    @property
    def num_blocks(self) -> int:
        return int(self.srcs.size)

    @property
    def rows(self) -> int:
        return int(self.lengths.sum())

    @property
    def src_column(self) -> np.ndarray:
        """Per-row source host (materialized on first use)."""
        if self._src_column is None:
            self._src_column = np.repeat(self.srcs, self.lengths)
        return self._src_column

    def __repr__(self) -> str:
        return (
            f"ReceivedBatch(blocks={self.num_blocks}, rows={self.rows}, "
            f"schema={self.schema!r})"
        )


class BatchSender(Protocol):
    """Where an accumulator flushes: a HostView, Communicator ledger view,
    or anything else exposing the batch send verb."""

    def send_batch(
        self,
        dst: int,
        batch: MessageBatch,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None: ...


class _Staged:
    """Pending appends for one (dst, tag) channel."""

    __slots__ = ("batches", "nbytes", "logical", "coalesce")

    def __init__(self, coalesce: bool):
        self.batches: list[MessageBatch] = []
        self.nbytes = 0
        self.logical = 0
        self.coalesce = coalesce


class BatchAccumulator:
    """Sender-side staging buffers, one per ``(dst, tag)`` channel.

    ``append`` stages a batch and records its charge (explicit
    ``nbytes`` or the batch's own exact size; ``max(1, logical)``
    logical messages, mirroring the communicator's stream accounting).
    ``flush``/``flush_all`` emit each channel's staged rows as **one
    contiguous block = one transport send**, so a single staged append
    is bit-identical — bytes, messages, fault draws, sanitizer mirror —
    to the scalar send it replaces.  Merging *several* appends into one
    block is only allowed for ``coalesce=True`` channels, where the
    stream formula makes the merged charge exactly equal to the sum of
    the per-append charges (and is rejected otherwise, because the
    per-send ``ceil`` would not distribute over the sum).

    Unflushed channels are flushed automatically when the owning task
    completes (the executor's phase barrier), in append order.
    """

    def __init__(self, sender: "BatchSender", host: int | None = None):
        self._sender = sender
        self._host = host
        self._staged: dict[tuple[int, str], _Staged] = {}

    def _guard(self, op: str) -> None:
        from ..analysis import isolation

        if isolation._depth and self._host is not None:
            isolation.guard_owned(self._host, op)

    def append(
        self,
        dst: int,
        batch: MessageBatch,
        tag: str = "default",
        logical_messages: int = 1,
        nbytes: int | None = None,
        coalesce: bool = False,
    ) -> None:
        """Stage ``batch`` for ``dst`` under ``tag``."""
        self._guard("BatchAccumulator.append")
        if not isinstance(batch, MessageBatch):
            raise TypeError(
                f"append wants a MessageBatch, got {type(batch).__name__}"
            )
        key = (int(dst), tag)
        staged = self._staged.get(key)
        if staged is None:
            staged = self._staged[key] = _Staged(coalesce)
        elif staged.batches:
            if not (staged.coalesce and coalesce):
                raise ValueError(
                    f"channel {key} already holds a staged block; merging "
                    "appends is only exact for coalesce=True streams"
                )
            if staged.batches[0].schema != batch.schema:
                raise TypeError(f"schema mismatch on channel {key}")
        staged.batches.append(batch)
        staged.nbytes += batch.nbytes if nbytes is None else int(nbytes)
        staged.logical += max(1, logical_messages)

    def staged_rows(self, dst: int, tag: str = "default") -> int:
        """Rows currently staged for ``(dst, tag)``."""
        staged = self._staged.get((int(dst), tag))
        return sum(b.rows for b in staged.batches) if staged else 0

    def channels(self) -> Iterator[tuple[int, str]]:
        """Channels with staged rows, in first-append order."""
        return iter(list(self._staged))

    def flush(self, dst: int, tag: str = "default") -> None:
        """Emit one channel's staged rows as one contiguous block."""
        self._guard("BatchAccumulator.flush")
        staged = self._staged.pop((int(dst), tag), None)
        if staged is None or not staged.batches:
            return
        if len(staged.batches) == 1:
            block = staged.batches[0]
        else:
            block = concat_batches(staged.batches[0].schema, staged.batches)
        self._sender.send_batch(
            int(dst),
            block,
            tag=tag,
            logical_messages=staged.logical,
            nbytes=staged.nbytes,
            coalesce=staged.coalesce,
        )

    def flush_all(self) -> None:
        """Flush every channel, in first-append order."""
        for dst, tag in list(self._staged):
            self.flush(dst, tag)
