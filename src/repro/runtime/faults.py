"""Deterministic fault injection for the simulated cluster.

CuSP's five phases assume a fault-free bulk-synchronous cluster; a
production streaming partitioner cannot.  This module provides the fault
model the recovery machinery in :mod:`repro.core.framework` is tested
against:

* **transient send failures** — a point-to-point send is NACKed at the
  sender and must be retried (with exponential backoff);
* **message drops** — a message is lost in flight and retransmitted
  after an ack timeout;
* **message duplication** — the network delivers a message twice; the
  receiver deduplicates by sequence number, but the wire carried it;
* **host crashes** — a host dies at a phase boundary (its phase output
  is never committed) or mid-phase (after a given number of accounting
  operations), and the run must replay from the last checkpoint;
* **slow hosts** — per-host compute-speed factors, generalizing the
  ``host_speeds`` straggler knob.

Fault decisions are keyed to **(host, logical-op-index)**, not to global
call order: every host slot owns a :class:`HostFaultChannel` with its own
operation counter and its own seeded :class:`numpy.random.Generator`
(derived from ``(plan.seed, phase attempt, host)``).  A planned mid-phase
crash of host ``h`` fires once *host h itself* has performed ``op_count``
accounting operations, and message-fault draws for sends originated by
``h`` come from ``h``'s private stream.  This makes the injected fault
sequence a pure function of the plan and each host's own deterministic
op sequence — identical under the serial executor and under the parallel
executor's thread pool, whatever the thread interleaving — which is what
makes the recovery guarantee testable: a faulty run must converge to the
same partition as the fault-free run, on every executor.

* **payload corruption** — a delivered message fails its per-block
  checksum at the receiver, which issues a re-request; the sender
  retransmits, so one corrupt event charges *two* retry messages (the
  re-request plus the retransmission);
* **torn checkpoint writes** — a planned stage of the durable
  checkpoint store is written truncated (simulating kill -9 mid-write);
  digest verification detects and repairs it
  (:class:`~repro.core.partition_io.PartitionCheckpoint`).

Functional payloads are never *delivered* corrupted: retries,
retransmissions, re-requests and duplicates are charged to the
byte/message accounting (and therefore to the simulated breakdown)
while delivery stays exactly-once, mirroring a reliable checksummed
transport over a lossy fabric.

The columnar fabric (:mod:`repro.runtime.colfab`) changes none of this:
a ``send_batch`` — including each per-(peer, tag) block a
:class:`~repro.runtime.colfab.BatchAccumulator` flushes — is exactly one
send on the channel, so it draws one fault decision and, on failure, is
retried and charged as one block.  Because every batch send replaces
exactly one scalar send with identical ``nbytes``, the per-host op
sequences — and therefore every fault draw — are bit-identical across
fabrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

import numpy as np

#: One injected-fault log entry: ``("crash", phase, host)``,
#: ``("torn-checkpoint", phase, stage)``, ``("straggler", phase, host)``
#: or ``("send-failure" | "drop" | "duplicate" | "corrupt-payload",
#: phase, src, dst)``.
FaultEvent = tuple[str | int | None, ...]

#: Retry messages charged per event of each kind.  A corrupt payload is
#: detected by the receiver's block checksum, which sends a re-request
#: before the sender retransmits — two messages on the wire.
_RETRY_EVENT_WEIGHTS = {
    "send-failure": 1,
    "drop": 1,
    "duplicate": 1,
    "corrupt-payload": 2,
}


def retry_event_channels(events: Iterable[FaultEvent]) -> dict[tuple[int, int], int]:
    """Per-(src, dst) count of charged retry messages in ``events``.

    Every message-fault event is drawn immediately before its retry
    traffic is charged — one retransmission for ``send-failure``/
    ``drop``/``duplicate``, a re-request *plus* a retransmission for
    ``corrupt-payload`` — so for any window of the injector's event
    stream this weighted count must equal the retry messages charged on
    the same channels: the conservation law the contract sanitizer
    checks at every phase barrier.  Crash, straggler and
    torn-checkpoint events charge no wire traffic and are ignored.
    """
    counts: dict[tuple[int, int], int] = {}
    for event in events:
        weight = _RETRY_EVENT_WEIGHTS.get(event[0])  # type: ignore[arg-type]
        if weight is not None:
            key = (int(event[2]), int(event[3]))  # type: ignore[arg-type]
            counts[key] = counts.get(key, 0) + weight
    return counts


__all__ = [
    "FaultEvent",
    "retry_event_channels",
    "FaultPlan",
    "HostCrash",
    "FaultInjector",
    "HostFaultChannel",
    "RecoveryManager",
    "FaultReport",
    "FaultError",
    "HostCrashError",
    "SendRetriesExhausted",
    "UnrecoverableClusterError",
]


class FaultError(RuntimeError):
    """Base class for injected-fault failures."""


class HostCrashError(FaultError):
    """A simulated host died; the current phase must be replayed."""

    def __init__(self, host: int, phase: str | None):
        super().__init__(f"host {host} crashed during phase {phase!r}")
        self.host = int(host)
        self.phase = phase

    def __reduce__(self) -> tuple:
        # The default exception pickling replays __init__ with the
        # formatted message as its single argument, which does not match
        # this two-argument signature; crashes must survive the worker
        # process -> parent hop intact (host and phase drive recovery).
        return (HostCrashError, (self.host, self.phase))


class SendRetriesExhausted(FaultError):
    """A point-to-point send kept failing past the retry budget."""


class UnrecoverableClusterError(FaultError):
    """Recovery is impossible (no survivors, or retry budget exhausted)."""


@dataclass(frozen=True)
class HostCrash:
    """One planned host crash.

    ``phase`` is a phase name (e.g. ``"Edge Assignment"``) or an index
    into the run's phase order (0 = first phase opened).  ``op_count``
    selects the crash point: ``None`` crashes at the phase *boundary*
    (after the phase's work, before its output is committed); a positive
    integer crashes mid-phase, once *the crashing host itself* has
    recorded that many accounting operations (sends, compute/disk
    charges) in the phase.  Keying the crash point to the host's own
    logical op index — rather than global call order — keeps the crash
    deterministic under both the serial and the parallel executor.  A
    mid-phase crash whose host finishes the phase with fewer operations
    fires at that phase's boundary instead — a planned crash always
    happens.
    """

    host: int
    phase: str | int
    op_count: int | None = None


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seed-deterministic description of injected faults."""

    seed: int = 0
    #: Probability that one send attempt is NACKed at the sender.
    send_failure_rate: float = 0.0
    #: Probability that a sent message is lost in flight (retransmitted).
    drop_rate: float = 0.0
    #: Probability that a delivered message arrives twice on the wire.
    duplicate_rate: float = 0.0
    #: Probability that a delivered message fails its block checksum at
    #: the receiver (re-requested and retransmitted; never delivered).
    corrupt_rate: float = 0.0
    crashes: tuple[HostCrash, ...] = ()
    #: Per-host compute-speed factors (host -> factor, 0 < factor <= 1
    #: slows the host down; factors multiply any ``host_speeds`` setting).
    slow_hosts: Mapping[int, float] = field(default_factory=dict)
    #: Checkpoint stages (e.g. ``"masters"``) whose first durable write
    #: is torn — truncated mid-write as by kill -9 — once per run.
    torn_checkpoints: tuple[str, ...] = ()

    def validate(self) -> None:
        for name in (
            "send_failure_rate",
            "drop_rate",
            "duplicate_rate",
            "corrupt_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        for crash in self.crashes:
            if crash.host < 0:
                raise ValueError(f"crash host must be >= 0, got {crash.host}")
            if crash.op_count is not None and crash.op_count < 1:
                raise ValueError("crash op_count must be >= 1 or None")
            if isinstance(crash.phase, int) and crash.phase < 0:
                raise ValueError("crash phase index must be >= 0")
        for host, factor in self.slow_hosts.items():
            if int(host) < 0 or not float(factor) > 0:
                raise ValueError("slow_hosts needs host >= 0 and factor > 0")
        for stage in self.torn_checkpoints:
            if not isinstance(stage, str) or not stage:
                raise ValueError(
                    f"torn_checkpoints entries must be stage names, got {stage!r}"
                )

    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.send_failure_rate == 0.0
            and self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.crashes
            and not self.slow_hosts
            and not self.torn_checkpoints
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Parsing (CLI --inject-faults)
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a plan from a CLI spec.

        Three forms are accepted:

        * ``@plan.json`` — read a JSON document from the named file;
        * ``{...}`` — an inline JSON document with the field names of
          this class (``crashes`` is a list of ``{"host", "phase",
          "op_count"}`` objects, ``slow_hosts`` maps host -> factor);
        * a compact ``key=value`` list:
          ``seed=42,send-fail=0.05,drop=0.01,dup=0.01,corrupt=0.01,``
          ``crash=1@2,crash=0@3:25,slow=3:0.5,torn=masters`` where
          ``crash=HOST@PHASE[:OPS]`` uses a phase index,
          ``slow=HOST:FACTOR`` slows one host and ``torn=STAGE`` tears
          one checkpoint stage's write.
        """
        spec = spec.strip()
        if spec.startswith("@"):
            path = spec[1:]
            try:
                with open(path) as f:
                    text = f.read()
            except OSError as exc:
                raise ValueError(
                    f"cannot read fault plan file {path!r}: {exc}; the "
                    "@file form of --inject-faults needs a readable JSON "
                    "plan document"
                ) from exc
            return cls.from_json(text)
        if spec.startswith("{"):
            return cls.from_json(spec)
        return cls._from_compact(spec)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("fault plan JSON must be an object")
        crashes = tuple(
            HostCrash(
                host=int(c["host"]),
                phase=c["phase"] if isinstance(c["phase"], str) else int(c["phase"]),
                op_count=None if c.get("op_count") is None else int(c["op_count"]),
            )
            for c in doc.get("crashes", ())
        )
        slow = {int(h): float(f) for h, f in doc.get("slow_hosts", {}).items()}
        plan = cls(
            seed=int(doc.get("seed", 0)),
            send_failure_rate=float(doc.get("send_failure_rate", 0.0)),
            drop_rate=float(doc.get("drop_rate", 0.0)),
            duplicate_rate=float(doc.get("duplicate_rate", 0.0)),
            corrupt_rate=float(doc.get("corrupt_rate", 0.0)),
            crashes=crashes,
            slow_hosts=slow,
            torn_checkpoints=tuple(
                str(s) for s in doc.get("torn_checkpoints", ())
            ),
        )
        plan.validate()
        return plan

    @classmethod
    def _from_compact(cls, spec: str) -> "FaultPlan":
        kwargs: dict[str, Any] = {"crashes": [], "slow_hosts": {}}
        aliases = {
            "send-fail": "send_failure_rate",
            "send_fail": "send_failure_rate",
            "send_failure_rate": "send_failure_rate",
            "drop": "drop_rate",
            "drop_rate": "drop_rate",
            "dup": "duplicate_rate",
            "duplicate_rate": "duplicate_rate",
            "corrupt": "corrupt_rate",
            "corrupt_rate": "corrupt_rate",
        }
        torn: list[str] = []
        for item in filter(None, (part.strip() for part in spec.split(","))):
            if "=" not in item:
                raise ValueError(f"expected key=value in fault spec, got {item!r}")
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key in aliases:
                kwargs[aliases[key]] = float(value)
            elif key == "crash":
                host_part, _, phase_part = value.partition("@")
                if not phase_part:
                    raise ValueError(f"crash spec needs HOST@PHASE, got {value!r}")
                phase_str, _, ops = phase_part.partition(":")
                kwargs["crashes"].append(
                    HostCrash(
                        host=int(host_part),
                        phase=int(phase_str),
                        op_count=int(ops) if ops else None,
                    )
                )
            elif key == "slow":
                host_part, _, factor = value.partition(":")
                if not factor:
                    raise ValueError(f"slow spec needs HOST:FACTOR, got {value!r}")
                kwargs["slow_hosts"][int(host_part)] = float(factor)
            elif key == "torn":
                torn.append(value.strip())
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        kwargs["crashes"] = tuple(kwargs["crashes"])
        kwargs["torn_checkpoints"] = tuple(torn)
        plan = cls(**kwargs)
        plan.validate()
        return plan

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.send_failure_rate:
            parts.append(f"send-fail={self.send_failure_rate:g}")
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.corrupt_rate:
            parts.append(f"corrupt={self.corrupt_rate:g}")
        for c in self.crashes:
            where = f"{c.phase}" + (f":{c.op_count}" if c.op_count else "")
            parts.append(f"crash={c.host}@{where}")
        for h, f in sorted(self.slow_hosts.items()):
            parts.append(f"slow={h}:{f:g}")
        for stage in self.torn_checkpoints:
            parts.append(f"torn={stage}")
        return ",".join(parts)


class HostFaultChannel:
    """One host slot's private window onto the fault plan.

    Owns the slot's logical-op counter and a seeded generator derived
    from ``(plan.seed, phase attempt, host)``, so the channel's decision
    sequence depends only on the host's own deterministic op/send order —
    never on how other hosts' operations interleave with it.  A channel
    is used by at most one thread at a time (the host's task, or the
    main thread between tasks).

    :attr:`events_out` is the list injected faults are appended to.  It
    defaults to the injector's global chronological log; the parallel
    executor redirects it to the host's private ledger for the duration
    of a task so the log can be merged deterministically in host order.
    """

    def __init__(self, injector: "FaultInjector", host: int):
        self.injector = injector
        self.host = int(host)
        #: Logical accounting operations this slot performed in the phase.
        self.ops = 0
        plan = injector.plan
        self._rng = np.random.default_rng(
            [plan.seed, injector.attempt, self.host]
        )
        self.events_out: list[FaultEvent] = injector.events
        #: Crash indices fired on this channel but not yet committed to
        #: the injector's ``_fired`` set.  When the channel logs straight
        #: to the injector the commit is immediate; when redirected to a
        #: private ledger the executor commits on merge — so a crash
        #: fired by a host whose parallel work is *discarded* (it ran
        #: past the host serial order would have aborted at) is forgotten
        #: exactly as if the host had never run.
        self.fired: list[int] = []

    def tick(self) -> None:
        """Record one accounting operation; may fire a mid-phase crash."""
        inj = self.injector
        if inj._phase is None:
            return
        self.ops += 1
        for i, crash in enumerate(inj.plan.crashes):
            if (
                i not in inj._fired
                and i not in self.fired
                and crash.host == self.host
                and crash.op_count is not None
                and self.ops >= crash.op_count
                and inj._matches_phase(crash.phase)
            ):
                self.fired.append(i)
                self.events_out.append(("crash", inj._phase, crash.host))
                if self.events_out is inj.events:
                    inj.commit(self)
                raise HostCrashError(crash.host, inj._phase)

    def _draw(self, kind: str, rate: float, dst: int) -> bool:
        if rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self.events_out.append((kind, self.injector._phase, self.host, dst))
        return True

    def transient_send_failure(self, dst: int) -> bool:
        return self._draw("send-failure", self.injector.plan.send_failure_rate, dst)

    def dropped(self, dst: int) -> bool:
        return self._draw("drop", self.injector.plan.drop_rate, dst)

    def duplicated(self, dst: int) -> bool:
        return self._draw("duplicate", self.injector.plan.duplicate_rate, dst)

    def corrupted(self, dst: int) -> bool:
        return self._draw("corrupt-payload", self.injector.plan.corrupt_rate, dst)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    One injector is shared by a :class:`~repro.runtime.cluster.
    SimulatedCluster` and all of its per-phase communicators.  Fault
    decisions are delegated to per-host :class:`HostFaultChannel`\\ s
    (fresh ones per phase attempt), so two runs with the same plan inject
    byte-identical fault sequences regardless of which executor drives
    the hosts.
    """

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self._fired: set[int] = set()
        self._torn_fired: set[str] = set()
        self._phase: str | None = None
        self._phase_order: list[str] = []
        #: Phase attempts opened so far (replays count); salts the
        #: per-host generators so an aborted attempt's consumed draws
        #: never leak into its replay.
        self.attempt = 0
        self._channels: dict[int, HostFaultChannel] = {}
        #: Chronological log of injected faults:
        #: ("send-failure" | "drop" | "duplicate", phase, src, dst) and
        #: ("crash", phase, host).
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # Phase lifecycle (driven by SimulatedCluster)
    # ------------------------------------------------------------------
    def begin_phase(self, name: str) -> None:
        if name not in self._phase_order:
            self._phase_order.append(name)
        self._phase = name
        self.attempt += 1
        self._channels = {}

    def channel(self, host: int) -> HostFaultChannel:
        """The (per phase-attempt) fault channel of one host slot."""
        ch = self._channels.get(host)
        if ch is None:
            ch = HostFaultChannel(self, host)
            self._channels[host] = ch
        return ch

    def commit(self, channel: HostFaultChannel) -> None:
        """Mark the crashes fired on ``channel`` as permanently done."""
        self._fired.update(channel.fired)
        channel.fired.clear()

    def phase_boundary(self) -> None:
        """Fire any planned crash still pending at the phase's boundary.

        This is the catch-all for boundary crashes (``op_count=None``)
        and for mid-phase crashes whose host finished with fewer ops than
        planned — a planned crash always happens.
        """
        if self._phase is None:
            return
        for i, crash in enumerate(self.plan.crashes):
            if i in self._fired or not self._matches_phase(crash.phase):
                continue
            self._fired.add(i)
            self.events.append(("crash", self._phase, crash.host))
            raise HostCrashError(crash.host, self._phase)

    def _matches_phase(self, spec_phase: str | int) -> bool:
        if isinstance(spec_phase, int):
            return self._phase_order.index(self._phase) == spec_phase
        return spec_phase == self._phase

    # ------------------------------------------------------------------
    # Message-level faults (convenience delegates to the src channel)
    # ------------------------------------------------------------------
    def tick(self, host: int = 0) -> None:
        self.channel(host).tick()

    def transient_send_failure(self, src: int, dst: int) -> bool:
        return self.channel(src).transient_send_failure(dst)

    def dropped(self, src: int, dst: int) -> bool:
        return self.channel(src).dropped(dst)

    def duplicated(self, src: int, dst: int) -> bool:
        return self.channel(src).duplicated(dst)

    def corrupted(self, src: int, dst: int) -> bool:
        return self.channel(src).corrupted(dst)

    # ------------------------------------------------------------------
    # Checkpoint faults (driven by PartitionCheckpoint)
    # ------------------------------------------------------------------
    def torn_checkpoint(self, stage: str) -> bool:
        """True when ``stage``'s durable write should be torn (once)."""
        if stage not in self.plan.torn_checkpoints or stage in self._torn_fired:
            return False
        self._torn_fired.add(stage)
        self.events.append(("torn-checkpoint", self._phase, stage))
        return True

    # ------------------------------------------------------------------
    # Cross-process resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the injector's restorable state.

        Restoring it in a fresh process reproduces the remaining phases'
        channel seeds (``attempt``), crash bookkeeping and event log, so
        a resumed run injects the same fault sequence an uninterrupted
        run would have from that point on.
        """
        return {
            "attempt": self.attempt,
            "fired": sorted(self._fired),
            "torn_fired": sorted(self._torn_fired),
            "phase_order": list(self._phase_order),
            "events": [list(e) for e in self.events],
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self.attempt = int(state["attempt"])
        self._fired = {int(i) for i in state["fired"]}
        self._torn_fired = {str(s) for s in state.get("torn_fired", ())}
        self._phase_order = [str(p) for p in state["phase_order"]]
        self.events = [tuple(e) for e in state["events"]]
        self._phase = None
        self._channels = {}

    # ------------------------------------------------------------------
    # Mid-phase shipping (pooled process executor)
    # ------------------------------------------------------------------
    def export_live_state(self) -> dict[str, Any]:
        """Picklable snapshot of the injector *mid-phase*, channels included.

        Unlike :meth:`state_dict` (which is for cross-process resume at a
        checkpoint and deliberately resets phase/channel state), this
        captures everything a pool worker needs to continue the exact
        fault sequence from the current point inside a phase: the open
        phase, the per-host op counters, the consumed-draw positions of
        each channel's generator, and pending (uncommitted) crash fires.
        The global event log is *not* shipped — workers redirect channel
        events into per-host ledgers, and the parent merges those in host
        order at the barrier.
        """
        return {
            "plan": self.plan,
            "attempt": self.attempt,
            "phase": self._phase,
            "phase_order": list(self._phase_order),
            "fired": sorted(self._fired),
            "torn_fired": sorted(self._torn_fired),
            "channels": {
                host: {
                    "ops": ch.ops,
                    "rng": ch._rng.bit_generator.state,
                    "fired": list(ch.fired),
                }
                for host, ch in self._channels.items()
            },
        }

    @classmethod
    def from_live_state(cls, state: Mapping[str, Any]) -> "FaultInjector":
        """Reconstruct a worker-side injector from :meth:`export_live_state`."""
        inj = cls(state["plan"])
        inj.attempt = int(state["attempt"])
        inj._phase = state["phase"]
        inj._phase_order = [str(p) for p in state["phase_order"]]
        inj._fired = {int(i) for i in state["fired"]}
        inj._torn_fired = {str(s) for s in state["torn_fired"]}
        for host, ch_state in state["channels"].items():
            ch = inj.channel(int(host))
            ch.ops = int(ch_state["ops"])
            ch._rng.bit_generator.state = ch_state["rng"]
            ch.fired = list(ch_state["fired"])
        return inj

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event[0]] = counts.get(event[0], 0) + 1
        return counts


class RecoveryManager:
    """Tracks live hosts and reassigns a dead host's work to survivors.

    Logical hosts (the k partition slots, each with its
    ``compute_read_ranges`` slice) are distinct from the physical hosts
    executing them.  When a physical host crashes, every logical slot it
    was executing is handed to the least-loaded survivor, which must
    re-read the slot's graph slice from disk before replaying — the
    logical schedule itself never changes, which is what makes recovery
    produce a partition bit-identical to the fault-free run.

    Stragglers are handled the same way, short of declaring the host
    dead: :meth:`on_straggler` *quarantines* a host the run supervisor
    found breaching its hard phase deadline, moving its slots (and the
    matching charged re-reads) to healthy hosts.  A quarantined host
    stays alive — it merely receives no further slots — so mitigation
    only re-times the run; the logical schedule, and with it the output
    partition, is unchanged.
    """

    def __init__(self, num_hosts: int):
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        self.num_hosts = num_hosts
        self.alive = np.ones(num_hosts, dtype=bool)
        #: Hosts the supervisor quarantined for straggling (still alive,
        #: but excluded from new slot assignments).
        self.quarantined = np.zeros(num_hosts, dtype=bool)
        #: executors[slot] = physical host currently executing the slot.
        self.executors_map = np.arange(num_hosts, dtype=np.int64)
        self.crash_log: list[tuple[str | None, int]] = []
        #: (phase, host) for every quarantined straggler.
        self.straggler_log: list[tuple[str | None, int]] = []
        self.replays = 0
        self._pending_reread: list[int] = []

    def executors(self) -> np.ndarray:
        """A snapshot of the logical-slot -> physical-host map."""
        return self.executors_map.copy()

    def on_crash(self, host: int, phase: str | None) -> None:
        """Record a crash and redistribute the dead host's slots."""
        self.crash_log.append((phase, int(host)))
        self.replays += 1
        if not (0 <= host < self.num_hosts) or not self.alive[host]:
            return  # spurious crash of an already-dead host
        self.alive[host] = False
        if not self.alive.any():
            raise UnrecoverableClusterError(
                f"all {self.num_hosts} hosts have crashed; nothing to recover on"
            )
        lost = np.flatnonzero(self.executors_map == host)
        for slot in lost:
            self.executors_map[slot] = self._least_loaded_survivor()
        self._pending_reread.extend(int(s) for s in lost)

    def on_straggler(self, host: int, phase: str | None) -> bool:
        """Quarantine a straggling host and migrate its slots.

        Returns False (and does nothing) when ``host`` is already dead
        or quarantined, or when quarantining it would leave no healthy
        host — a cluster of stragglers has no fast host to migrate to,
        so the run must simply wait.  Migrated slots join the pending
        re-read list; the framework charges their disk re-reads exactly
        as it does for crash recovery.
        """
        host = int(host)
        if (
            not (0 <= host < self.num_hosts)
            or not self.alive[host]
            or self.quarantined[host]
        ):
            return False
        remaining = self.alive & ~self.quarantined
        remaining[host] = False
        if not remaining.any():
            return False
        self.quarantined[host] = True
        self.straggler_log.append((phase, host))
        moved = np.flatnonzero(self.executors_map == host)
        for slot in moved:
            self.executors_map[slot] = self._least_loaded_survivor()
        self._pending_reread.extend(int(s) for s in moved)
        return True

    def _least_loaded_survivor(self) -> int:
        healthy = self.alive & ~self.quarantined
        pool = np.flatnonzero(healthy) if healthy.any() else np.flatnonzero(self.alive)
        loads = np.array(
            [(self.executors_map == p).sum() for p in pool], dtype=np.int64
        )
        return int(pool[int(np.argmin(loads))])

    def drain_rereads(self) -> list[int]:
        """Logical slots whose graph slice must be re-read from disk."""
        pending, self._pending_reread = self._pending_reread, []
        return pending

    @property
    def num_dead(self) -> int:
        return int((~self.alive).sum())

    # ------------------------------------------------------------------
    # Cross-process resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the recovery state."""
        return {
            "alive": [bool(a) for a in self.alive],
            "quarantined": [bool(q) for q in self.quarantined],
            "executors_map": [int(e) for e in self.executors_map],
            "crash_log": [list(entry) for entry in self.crash_log],
            "straggler_log": [list(entry) for entry in self.straggler_log],
            "replays": self.replays,
            "pending_reread": list(self._pending_reread),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self.alive = np.array(state["alive"], dtype=bool)
        self.quarantined = np.array(state["quarantined"], dtype=bool)
        self.executors_map = np.array(state["executors_map"], dtype=np.int64)
        self.crash_log = [(p, int(h)) for p, h in state["crash_log"]]
        self.straggler_log = [
            (p, int(h)) for p, h in state.get("straggler_log", ())
        ]
        self.replays = int(state["replays"])
        self._pending_reread = [int(s) for s in state["pending_reread"]]


@dataclass(frozen=True)
class FaultReport:
    """What a partitioning run survived (``CuSP.last_fault_report``)."""

    plan: FaultPlan
    #: Chronological injected-fault log (copied from the injector).
    events: tuple[FaultEvent, ...]
    #: (phase, host) for every crash the recovery machinery handled.
    crash_log: tuple[tuple[str | None, int], ...]
    #: Number of phase replays performed.
    replays: int
    #: (phase, host) for every straggler the supervisor quarantined.
    straggler_log: tuple[tuple[str | None, int], ...] = ()
    #: Torn durable-checkpoint writes detected and repaired by digest
    #: verification.
    torn_repairs: int = 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            key = str(event[0])
            out[key] = out.get(key, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        if not counts and not self.replays and not self.straggler_log:
            return "no faults injected"
        bits = [f"{n} {kind}(s)" for kind, n in sorted(counts.items())]
        if self.replays:
            bits.append(f"{self.replays} phase replay(s)")
        if self.straggler_log:
            bits.append(f"{len(self.straggler_log)} straggler(s) quarantined")
        if self.torn_repairs:
            bits.append(f"{self.torn_repairs} torn write(s) repaired")
        return ", ".join(bits)
