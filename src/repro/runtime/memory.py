"""Per-host peak-memory estimation (the paper's OOM observations).

Figure 3 has missing bars: "XtraPulp fails to allocate memory for certain
large inputs, making it unable to run for some of our experiments at 32
hosts and 64 hosts.  CuSP also runs out of memory in cases where
imbalance of data exists among hosts" (§V-B).  This module estimates each
host's peak working set for both systems so that behaviour is
reproducible:

* a CuSP host holds its read slice, the staging buffers for edges in
  flight, and its constructed local partition;
* an XtraPulp host holds its read slice, its share of the *undirected*
  adjacency (label propagation needs both directions), and several
  full-length global label/count vectors — the term that does not shrink
  with host count and is what kills it at low k on billion-vertex inputs.

``check_memory`` raises :class:`MemoryBudgetExceeded` when a capacity is
given and any host's estimate exceeds it — the simulated analogue of the
failed allocation.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import DistributedGraph
from ..graph.csr import CSRGraph

__all__ = [
    "MemoryBudgetExceeded",
    "cusp_peak_memory",
    "xtrapulp_peak_memory",
    "check_memory",
    "shared_segment_overhead",
]

#: Full-length global vectors an XtraPulp host keeps: labels, proposed
#: labels, degrees, two multi-constraint weight arrays, and LP scratch
#: (PuLP's documented memory profile; this term does not shrink with k).
_LABEL_VECTORS = 8


class MemoryBudgetExceeded(MemoryError):
    """A simulated host exceeded its memory capacity."""

    def __init__(self, host: int, required: int, capacity: int):
        self.host = host
        self.required = required
        self.capacity = capacity
        super().__init__(
            f"host {host} needs {required / 2**20:.1f} MB "
            f"but has {capacity / 2**20:.1f} MB"
        )


def cusp_peak_memory(dg: DistributedGraph, graph: CSRGraph) -> np.ndarray:
    """Per-host peak bytes for a CuSP partitioning of ``graph``.

    Peak = read slice + constructed partition + proxy-sized lookup
    tables.  Received edges are inserted directly into the preallocated
    local arrays — the whole point of the separate allocation phase
    (§IV-B4) — so in-flight message buffers are transient, bounded by the
    8 MB threshold per peer, and excluded here.
    """
    from ..core.reading import compute_read_ranges, read_bytes_for_range

    k = dg.num_partitions
    ranges = compute_read_ranges(graph, k)
    peaks = np.zeros(k, dtype=np.int64)
    for p in dg.partitions:
        start, stop = ranges[p.host]
        read = read_bytes_for_range(graph, start, stop)
        constructed = (
            p.local_graph.nbytes()
            + p.global_ids.nbytes
            + p.master_host.nbytes
            + p.num_proxies * 16  # global->local hash map entries
        )
        if p.local_csc is not None:
            constructed += p.local_csc.nbytes()
        peaks[p.host] = read + constructed
    return peaks


def xtrapulp_peak_memory(graph: CSRGraph, num_hosts: int) -> np.ndarray:
    """Per-host peak bytes for the XtraPulp-style baseline.

    Each host keeps its slice of the undirected adjacency (2x the
    directed edges, 16 B per entry) plus ``_LABEL_VECTORS`` full-length
    global vectors — the component that is independent of ``num_hosts``.
    """
    n, m = graph.num_nodes, graph.num_edges
    per_host_edges = int(np.ceil(2 * m / num_hosts))
    adjacency = per_host_edges * 16
    global_vectors = _LABEL_VECTORS * n * 8
    return np.full(num_hosts, adjacency + global_vectors, dtype=np.int64)


def shared_segment_overhead() -> int:
    """Bytes of live resident shared-memory segments in this process.

    The pooled process executor publishes each immutable phase input
    (CSR arrays, masters, assignment, proxies) exactly once into named
    segments that workers map zero-copy — real partitioner memory on the
    machine running the simulation, not part of any simulated host's
    working set (which models k *separate* machines, each holding its
    own copy; sharing is an artifact of simulating them on one box).
    Reported separately so memory accounting stays honest.
    """
    from .colfab import resident_segment_nbytes

    return resident_segment_nbytes()


def check_memory(peaks: np.ndarray, capacity: int | None) -> None:
    """Raise :class:`MemoryBudgetExceeded` for the worst offending host."""
    if capacity is None:
        return
    worst = int(np.argmax(peaks))
    if peaks[worst] > capacity:
        raise MemoryBudgetExceeded(worst, int(peaks[worst]), capacity)
