"""Analytical cost model for the simulated cluster.

The paper's wall-clock numbers come from Stampede2: 48-core Skylake hosts,
a Lustre parallel filesystem, and a 100 Gb/s Omni-Path fabric.  We cannot
run that hardware, so simulated time is *derived* from exactly-counted
work:

* bytes each host reads from "disk",
* abstract compute work each host performs (edges scanned, per-partition
  scoring operations, ...),
* bytes and messages each host sends/receives, per phase,
* the number of bulk-synchronous rounds (barriers).

A phase is bulk-synchronous across hosts, so its simulated duration is the
maximum over hosts of that host's disk + compute + communication time,
plus barrier overhead per round.  This reproduces the paper's *relative*
behaviour (load imbalance hurts, message count matters at small buffer
sizes, extra rounds add latency) without pretending to predict absolute
Stampede2 seconds.

The default parameters are loosely calibrated to a Stampede2-like node:
~2 GB/s effective per-host Lustre read bandwidth, ~12 GB/s network
bandwidth (100 Gb/s), ~30 us end-to-end message latency (Omni-Path plus
software), and a per-host streaming edge-processing rate in the
hundreds of millions of edges per second (48 cores).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CostModel",
    "STAMPEDE2",
    "SLOW_NETWORK",
    "REPRO_CALIBRATED",
    "MPI_TRANSPORT",
    "LCI_TRANSPORT",
]


@dataclass(frozen=True)
class CostModel:
    """Machine parameters used to convert counted work into seconds.

    All rates are per host; the simulator assumes hosts are homogeneous
    (as on Stampede2).
    """

    #: Effective per-host read bandwidth from the parallel filesystem, B/s.
    disk_read_bw: float = 2.0e9
    #: Aggregate filesystem bandwidth cap across all hosts, B/s (Lustre
    #: stripes scale, but not without bound).
    disk_aggregate_bw: float = 6.4e10
    #: Per-host injection/reception network bandwidth, B/s.
    net_bandwidth: float = 1.2e10
    #: End-to-end latency charged per network message, seconds.
    net_latency: float = 30e-6
    #: Abstract compute units a host retires per second.  One unit is one
    #: simple per-edge operation (hash, comparison, array write); phases
    #: report their work in these units.
    compute_rate: float = 2.0e8
    #: Fixed cost of a global barrier / synchronization round, seconds.
    barrier_latency: float = 50e-6
    #: Per-entry cost factor applied to allreduce payloads (software
    #: reduction), units per byte.
    reduce_units_per_byte: float = 0.25
    #: Base exponential-backoff stall charged per failed send attempt,
    #: seconds per backoff unit (a send's n-th retry waits 2**n units).
    retry_backoff: float = 100e-6

    def validate(self) -> None:
        for name in (
            "disk_read_bw",
            "disk_aggregate_bw",
            "net_bandwidth",
            "compute_rate",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.net_latency < 0 or self.barrier_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")

    # ------------------------------------------------------------------
    # Elementary time conversions
    # ------------------------------------------------------------------
    def disk_time(self, bytes_per_host: list[float]) -> list[float]:
        """Per-host disk read time, honouring the aggregate bandwidth cap.

        Hosts read concurrently; if their combined demand exceeds the
        aggregate filesystem bandwidth, every host's effective bandwidth is
        scaled down proportionally (Lustre saturation).
        """
        total = float(sum(bytes_per_host))
        n = max(1, len(bytes_per_host))
        per_host_bw = self.disk_read_bw
        if total > 0:
            demanded = per_host_bw * n
            if demanded > self.disk_aggregate_bw:
                per_host_bw = self.disk_aggregate_bw / n
        return [b / per_host_bw for b in bytes_per_host]

    def compute_time(self, units: float) -> float:
        """Time to retire ``units`` of abstract compute work on one host."""
        return units / self.compute_rate

    def comm_time(self, send_bytes: float, recv_bytes: float, messages: float) -> float:
        """One host's communication time in a phase.

        Sends and receives are handled by the dedicated communication
        thread (paper §IV-D1) and overlap with each other, so we charge
        the larger of the two volumes, plus per-message latency.
        """
        volume = max(send_bytes, recv_bytes)
        return volume / self.net_bandwidth + messages * self.net_latency

    def allreduce_time(self, nbytes: float, num_hosts: int,
                       blocking: bool = True) -> float:
        """Cost of one allreduce over ``nbytes`` across ``num_hosts``.

        Blocking collectives are modeled as recursive doubling: log2(k)
        rounds, full payload exchanged per round, plus software reduction.
        Non-blocking ("asynchronous") collectives — CuSP's master
        assignment rounds never wait for peers (paper §IV-D5) — overlap
        their latency with computation and are charged volume and
        reduction only, plus a single message latency.
        """
        if num_hosts <= 1 or nbytes <= 0:
            return 0.0
        reduce_cost = self.compute_time(nbytes * self.reduce_units_per_byte)
        if not blocking:
            return self.net_latency + nbytes / self.net_bandwidth + reduce_cost
        import math

        rounds = math.ceil(math.log2(num_hosts))
        per_round = self.net_latency + nbytes / self.net_bandwidth
        return rounds * per_round + reduce_cost

    def scaled(self, **overrides) -> "CostModel":
        """A copy of this model with some parameters replaced."""
        model = replace(self, **overrides)
        model.validate()
        return model


#: Default model: Stampede2-like Skylake node (paper §V-A).
STAMPEDE2 = CostModel()

#: A model with 10x slower network, useful to stress communication effects.
SLOW_NETWORK = CostModel(net_bandwidth=1.2e9, net_latency=300e-6)

#: Calibrated for the reproduction's 10^4-10^6-edge stand-in graphs: the
#: fixed per-message and per-barrier latencies are scaled down by ~15-100x,
#: the same factor by which the data volume shrank relative to the paper's
#: web-crawls.  This preserves the paper-scale *balance* between
#: volume-proportional costs (disk, bandwidth, compute) and fixed
#: latencies; without it, every experiment at stand-in scale would be
#: latency-dominated, which no billion-edge run ever is.  The experiment
#: harness uses this model.  Its disk bandwidth is the *contended*
#: per-host Lustre rate (every host reads simultaneously), which is what
#: makes graph reading the dominant phase for communication-free policies
#: exactly as in the paper's Figure 4.
REPRO_CALIBRATED = CostModel(
    net_latency=2e-6, barrier_latency=5e-7, disk_read_bw=4e8,
    retry_backoff=5e-6,
)

#: Transport presets (paper §IV-D1: the communication thread can use MPI
#: or LCI; LCI "has been shown to perform well in graph analytics").  LCI
#: trades a leaner software stack for ~3x lower per-message overhead.
MPI_TRANSPORT = REPRO_CALIBRATED
LCI_TRANSPORT = REPRO_CALIBRATED.scaled(
    net_latency=REPRO_CALIBRATED.net_latency / 3,
    barrier_latency=REPRO_CALIBRATED.barrier_latency / 3,
)
