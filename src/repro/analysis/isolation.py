"""Dynamic host-isolation race detector (opt-in instrumentation).

The parallel execution engine's determinism argument assumes each
mapped :class:`~repro.runtime.executor.HostTask` touches only its own
host's state and records every charge on its private ledger, with the
shared :class:`~repro.runtime.comm.Communicator` mutated only on the
sanctioned barrier-merge path.  This module checks that assumption at
runtime instead of trusting it.

How it works
------------
An :class:`IsolationMonitor` is attached to a
:class:`~repro.runtime.executor.ParallelExecutor` (via
``ParallelExecutor(check_isolation=True)``).  While a mapped task runs,
the executor installs a thread-local :class:`TaskContext` naming the
(host, phase, label) the thread is working for; the runtime's shared
objects carry cheap guard hooks that consult that context:

* ``Communicator.send`` / collectives / ``merge_ledger`` raise
  :class:`IsolationViolation` when called from inside a mapped task —
  during parallel sections every charge must go through the ledger;
* ``Communicator.recv_all(dst)`` is allowed only for ``dst == ctx.host``
  (a host may drain its own queue; queues are appended to only at merge
  barriers);
* ``CommLedger`` operations and ``LedgerHostView`` charges raise when
  the executing thread's context names a different host — a task that
  somehow reached another host's ledger is a data race in waiting;
* ``PhaseStats.add_disk`` / ``add_compute`` raise inside a mapped task
  (they write shared per-host vectors, bypassing the ledger).

Every sanctioned access is recorded as an :class:`Access` with the
host's own logical op index, so equivalence suites can additionally
assert that the detector really observed the run.  Outside a monitored
run the hooks are a single module-attribute check
(``isolation._depth``), so the default path stays effectively free.

The main thread (executor barrier, ``chain()`` for cross-host
sequential work, serial execution) never carries a task context, which
is exactly what makes the merge path sanctioned.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = [
    "Access",
    "IsolationMonitor",
    "IsolationViolation",
    "OwnedProxy",
    "TaskContext",
    "current_context",
    "guard_owned",
    "guard_shared",
]

#: Number of active monitored runs; hooks are no-ops while it is 0.
#: (An int check is the cheapest guard available without losing the
#: ability to nest/overlap monitored executors.)
_depth = 0
_depth_lock = threading.Lock()
_tls = threading.local()


class IsolationViolation(RuntimeError):
    """A host task touched state it does not own.

    Carries the offending (host, phase, attribute) so the message is
    actionable: *which* task, in *which* phase, reached *what*.
    """

    def __init__(
        self,
        message: str,
        host: int | None = None,
        phase: str | None = None,
        attribute: str | None = None,
    ):
        super().__init__(message)
        self.host = host
        self.phase = phase
        self.attribute = attribute

    def __reduce__(self) -> tuple:
        # Default exception pickling replays __init__ with the message
        # only, dropping the (host, phase, attribute) evidence; process
        # executor workers ship violations back to the parent's monitor.
        return (
            IsolationViolation,
            (self.args[0], self.host, self.phase, self.attribute),
        )


@dataclass(frozen=True)
class Access:
    """One sanctioned state access by a mapped host task."""

    host: int
    phase: str
    op_index: int
    attribute: str


@dataclass
class TaskContext:
    """What the current thread is doing, while inside a mapped task."""

    monitor: "IsolationMonitor"
    host: int
    phase: str
    label: str = ""
    op_index: int = 0


def current_context() -> TaskContext | None:
    """The executing thread's task context, if a monitored task is live."""
    if _depth == 0:
        return None
    return getattr(_tls, "ctx", None)


class IsolationMonitor:
    """Records per-task accesses and raises on cross-host ones.

    ``max_recorded`` bounds the in-memory access log (the total count
    keeps incrementing past it); violations always raise regardless.
    """

    def __init__(self, max_recorded: int = 100_000):
        self.max_recorded = max_recorded
        self.accesses: list[Access] = []
        self.num_accesses = 0
        self.violations: list[IsolationViolation] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Executor integration
    # ------------------------------------------------------------------
    def task(self, host: int, phase: str, label: str = "") -> "_TaskScope":
        """Context manager installing this thread's task context."""
        return _TaskScope(TaskContext(self, int(host), phase, label))

    # ------------------------------------------------------------------
    # Hook entry points (called from runtime guard hooks)
    # ------------------------------------------------------------------
    def note(self, ctx: TaskContext, attribute: str) -> None:
        """Record one sanctioned access on the context's op stream."""
        ctx.op_index += 1
        with self._lock:
            self.num_accesses += 1
            if len(self.accesses) < self.max_recorded:
                self.accesses.append(
                    Access(ctx.host, ctx.phase, ctx.op_index, attribute)
                )

    def violation(
        self, ctx: TaskContext, attribute: str, detail: str
    ) -> IsolationViolation:
        exc = IsolationViolation(
            f"host {ctx.host} task (phase {ctx.phase!r}"
            + (f", {ctx.label}" if ctx.label else "")
            + f", op {ctx.op_index + 1}) {detail} [attribute: {attribute}]",
            host=ctx.host,
            phase=ctx.phase,
            attribute=attribute,
        )
        with self._lock:
            self.violations.append(exc)
        return exc

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def accesses_for(self, host: int) -> list[Access]:
        with self._lock:
            return [a for a in self.accesses if a.host == host]

    def summary(self) -> str:
        return (
            f"{self.num_accesses} tracked access(es), "
            f"{len(self.violations)} violation(s)"
        )


class _TaskScope:
    """Installs/removes a thread's TaskContext and the global guard flag."""

    __slots__ = ("ctx", "_prev")

    def __init__(self, ctx: TaskContext):
        self.ctx = ctx
        self._prev: TaskContext | None = None

    def __enter__(self) -> TaskContext:
        global _depth
        self._prev = getattr(_tls, "ctx", None)
        _tls.ctx = self.ctx
        with _depth_lock:
            _depth += 1
        return self.ctx

    def __exit__(self, *exc_info: object) -> None:
        global _depth
        _tls.ctx = self._prev
        with _depth_lock:
            _depth -= 1


# ----------------------------------------------------------------------
# Guard hooks (called from repro.runtime; cheap no-ops when inactive)
# ----------------------------------------------------------------------
def guard_shared(attribute: str, detail: str | None = None) -> None:
    """Raise if called from inside a mapped task (shared-only path)."""
    ctx = current_context()
    if ctx is None:
        return
    raise ctx.monitor.violation(
        ctx, attribute,
        detail or f"mutated shared `{attribute}` bypassing its ledger",
    )


def guard_owned(owner_host: int, attribute: str) -> None:
    """Raise unless the calling task owns ``owner_host``'s state.

    Sanctioned accesses are recorded on the task's op stream; calls from
    unmonitored threads (serial execution, the merge barrier) pass.
    """
    ctx = current_context()
    if ctx is None:
        return
    if ctx.host != owner_host:
        raise ctx.monitor.violation(
            ctx, attribute,
            f"accessed host {owner_host}'s `{attribute}`",
        )
    ctx.monitor.note(ctx, attribute)


class OwnedProxy:
    """Access-tracking wrapper for one host's mutable state.

    Forwards every attribute read and write to the wrapped object,
    passing each through :func:`guard_owned` first — so any touch from
    a mapped task belonging to a *different* host raises
    :class:`IsolationViolation`, and sanctioned touches land in the
    monitor's access log with the host's logical op index.  Useful for
    wrapping per-host rule state (or anything else hosts close over)
    without that state knowing about the detector.
    """

    __slots__ = ("_obj", "_owner", "_name")

    def __init__(self, obj: object, owner_host: int, name: str | None = None):
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_owner", int(owner_host))
        object.__setattr__(
            self, "_name", name or type(obj).__name__
        )

    def __getattr__(self, attribute: str) -> object:
        guard_owned(
            object.__getattribute__(self, "_owner"),
            f"{object.__getattribute__(self, '_name')}.{attribute}",
        )
        return getattr(object.__getattribute__(self, "_obj"), attribute)

    def __setattr__(self, attribute: str, value: object) -> None:
        guard_owned(
            object.__getattribute__(self, "_owner"),
            f"{object.__getattribute__(self, '_name')}.{attribute}",
        )
        setattr(object.__getattribute__(self, "_obj"), attribute, value)

    def __getitem__(self, key: object) -> object:
        guard_owned(
            object.__getattribute__(self, "_owner"),
            f"{object.__getattribute__(self, '_name')}[]",
        )
        return object.__getattribute__(self, "_obj")[key]

    def __setitem__(self, key: object, value: object) -> None:
        guard_owned(
            object.__getattribute__(self, "_owner"),
            f"{object.__getattribute__(self, '_name')}[]",
        )
        object.__getattribute__(self, "_obj")[key] = value

    def __repr__(self) -> str:
        return (
            f"OwnedProxy(host={object.__getattribute__(self, '_owner')}, "
            f"{object.__getattribute__(self, '_obj')!r})"
        )
