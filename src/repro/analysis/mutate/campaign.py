"""The mutation campaign driver: shadow, splice, probe, score.

:func:`run_campaign` copies the target ``repro`` package into a shadow
tree, applies one mutant at a time (restoring the original bytes after
each), and runs :mod:`.probe` as a subprocess whose ``PYTHONPATH``
leads with the shadow — so every detector, static and dynamic, sees
the mutated package exactly as an install would.  A baseline probe on
the *unmutated* shadow must come back completely quiet (it also warms
the deep-lint cache all later probes share); a noisy baseline aborts
the campaign, because detection counts against a dirty background are
meaningless.

Everything about a campaign is deterministic for a fixed (tree, seed,
budget, operator set): site enumeration is totally ordered, budget
selection is a seeded stratified round-robin over operators, and the
emitted matrix contains no timings, paths outside the package, or
exception messages — so two runs produce byte-identical JSON and the
committed ``MUTATION_MATRIX.json`` can be diffed exactly, the same way
``scripts/bench_smoke.py`` pins its reference digests.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from .operators import Mutant, MutationOperator, all_operators, apply_site, collect_mutants
from .probe import ABLATION_FIXTURE, FIXTURE_GRAPH, FIXTURES
from .triage import TRIAGE, TriageEntry

__all__ = [
    "CampaignError",
    "MutantResult",
    "CampaignReport",
    "select_mutants",
    "run_campaign",
    "DEFAULT_BUDGET",
    "DEFAULT_SEED",
    "DETECTORS",
]

#: The default campaign: enough budget for at least two sites per
#: operator, small enough for a CI gate.
DEFAULT_BUDGET = 24
DEFAULT_SEED = 7

#: Matrix columns, in report order.
DETECTORS = ("lint", "deep", "contracts", "dynamic")

#: Survivor verdicts excluded from the detection-rate denominator.
_EXCLUDED_VERDICTS = ("equivalent", "covered-elsewhere")

#: Per-probe wall-clock ceiling; a mutant that hangs the fixture is
#: recorded as caught by the dynamic tier ("timeout" — the harness
#: noticed), with whatever static verdicts were flushed before the kill.
PROBE_TIMEOUT = 300.0


class CampaignError(RuntimeError):
    """The campaign itself could not run soundly (e.g. noisy baseline)."""


@dataclass
class MutantResult:
    """One matrix row: a mutant and every detector's verdict."""

    mutant: Mutant
    #: detector name -> {"caught": bool, "findings": [str, ...]}
    detectors: dict[str, dict] = field(default_factory=dict)
    triage: TriageEntry | None = None

    @property
    def caught_by(self) -> list[str]:
        return [d for d in DETECTORS if self.detectors.get(d, {}).get("caught")]

    @property
    def status(self) -> str:
        """``caught`` | ``equivalent`` (triaged out) | ``survived``."""
        if self.caught_by:
            return "caught"
        if self.triage is not None and self.triage.verdict in _EXCLUDED_VERDICTS:
            return "equivalent"
        return "survived"

    @property
    def untriaged(self) -> bool:
        return self.status == "survived" and self.triage is None

    def as_row(self) -> dict:
        row = {
            "id": self.mutant.id,
            "operator": self.mutant.operator,
            "class": self.mutant.fault_class,
            "file": self.mutant.rel,
            "line": self.mutant.site.line,
            "description": self.mutant.site.description,
            "detectors": {
                name: self.detectors.get(
                    name, {"caught": False, "findings": ["not-run"]}
                )
                for name in DETECTORS
            },
            "status": self.status,
        }
        if self.triage is not None:
            row["triage"] = self.triage.as_dict()
        return row


@dataclass
class CampaignReport:
    """Outcome of one campaign over a set of selected mutants."""

    results: list[MutantResult] = field(default_factory=list)
    seed: int = DEFAULT_SEED
    budget: int | None = DEFAULT_BUDGET
    sites_found: int = 0
    static_only: bool = False

    @property
    def caught(self) -> list[MutantResult]:
        return [r for r in self.results if r.status == "caught"]

    @property
    def equivalent(self) -> list[MutantResult]:
        return [r for r in self.results if r.status == "equivalent"]

    @property
    def survivors(self) -> list[MutantResult]:
        return [r for r in self.results if r.status == "survived"]

    @property
    def untriaged(self) -> list[MutantResult]:
        return [r for r in self.results if r.untriaged]

    def detection_rate(self) -> float | None:
        """Caught over non-equivalent mutants (None on an empty run)."""
        denominator = len(self.results) - len(self.equivalent)
        if denominator <= 0:
            return None
        return len(self.caught) / denominator

    def ok(self, strict: bool = False) -> bool:
        """No untriaged survivors; strict additionally wants >= 90%."""
        if self.untriaged:
            return False
        if strict:
            rate = self.detection_rate()
            return rate is not None and rate >= 0.9
        return True

    def class_table(self) -> dict[str, dict[str, int]]:
        table: dict[str, dict[str, int]] = {}
        for r in self.results:
            row = table.setdefault(
                r.mutant.fault_class,
                {"total": 0, "caught": 0, "equivalent": 0, "survived": 0},
            )
            row["total"] += 1
            row[r.status] += 1
        return {cls: table[cls] for cls in sorted(table)}

    def matrix_doc(self) -> dict:
        """The full detection matrix (the committed-reference payload)."""
        rate = self.detection_rate()
        ops = all_operators()
        used = sorted({r.mutant.operator for r in self.results})
        return {
            "version": 1,
            "seed": self.seed,
            "budget": self.budget,
            "sites_found": self.sites_found,
            "static_only": self.static_only,
            "fixtures": [list(f) for f in FIXTURES],
            "ablation_fixture": list(ABLATION_FIXTURE),
            "fixture_graph": list(FIXTURE_GRAPH),
            "detectors": list(DETECTORS),
            "operators": {
                name: {
                    "class": ops[name].fault_class,
                    "description": ops[name].description,
                }
                for name in used
                if name in ops
            },
            "classes": self.class_table(),
            "detection_rate": None if rate is None else round(rate, 4),
            "rows": [
                r.as_row()
                for r in sorted(self.results, key=lambda r: r.mutant.id)
            ],
        }

    def to_json(self) -> str:
        """Byte-stable rendering: the reference file's exact content."""
        return json.dumps(self.matrix_doc(), indent=2, sort_keys=True) + "\n"

    def summary(self) -> str:
        rate = self.detection_rate()
        shown = "n/a" if rate is None else f"{100 * rate:.1f}%"
        return (
            f"{len(self.caught)} caught, {len(self.equivalent)} equivalent, "
            f"{len(self.survivors)} survived "
            f"({len(self.untriaged)} untriaged) of {len(self.results)} "
            f"mutant(s) [{self.sites_found} site(s)]; detection {shown}"
        )

    def render_text(self) -> str:
        lines = []
        for r in sorted(self.results, key=lambda x: x.mutant.id):
            verdict = (
                "caught by " + "+".join(r.caught_by)
                if r.caught_by
                else r.status
                + (f" ({r.triage.verdict})" if r.triage is not None else "")
            )
            lines.append(
                f"{r.mutant.id} [{r.mutant.fault_class}] "
                f"{r.mutant.rel}:{r.mutant.site.line} -> {verdict}"
            )
        for cls, row in self.class_table().items():
            lines.append(
                f"class {cls}: {row['caught']}/{row['total']} caught, "
                f"{row['equivalent']} equivalent, {row['survived']} survived"
            )
        lines.append(self.summary())
        return "\n".join(lines)


def select_mutants(
    mutants: Sequence[Mutant], budget: int | None, seed: int
) -> list[Mutant]:
    """Seeded stratified selection: round-robin across operators.

    Every operator contributes sites in a seeded shuffle of its own
    (deterministic per ``(seed, operator index)``), and operators take
    turns until the budget is spent — so a small budget still samples
    every fault class.  Selection depends only on the sorted site list,
    never on discovery order.
    """
    if budget is None or budget >= len(mutants):
        return list(mutants)
    by_op: dict[str, list[Mutant]] = {}
    for m in mutants:  # mutants arrive sorted by (operator, rel, ordinal)
        by_op.setdefault(m.operator, []).append(m)
    queues = []
    for index, name in enumerate(sorted(by_op)):
        group = by_op[name]
        order = np.random.default_rng([seed, index]).permutation(len(group))
        queues.append([group[i] for i in order])
    chosen: list[Mutant] = []
    while len(chosen) < budget and any(queues):
        for queue in queues:
            if queue and len(chosen) < budget:
                chosen.append(queue.pop(0))
    chosen.sort(key=lambda m: m.id)
    return chosen


def _probe_script() -> Path:
    """The probe file, run by path so a broken shadow can't block it."""
    return Path(__file__).resolve().parent / "probe.py"


def _parse_verdicts(out_path: Path) -> dict[str, dict]:
    verdicts: dict[str, dict] = {}
    if not out_path.exists():
        return verdicts
    for line in out_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn final line from a killed probe
        name = record.get("detector")
        if isinstance(name, str):
            verdicts[name] = {
                "caught": bool(record.get("caught")),
                "findings": sorted(
                    str(f) for f in record.get("findings", ())
                ),
            }
    return verdicts


def _run_probe(
    shadow_root: Path,
    pkg_dir: Path,
    out_path: Path,
    cache_path: Path,
    static_only: bool,
    timeout: float,
) -> tuple[dict[str, dict], bool]:
    """One probe subprocess; returns (verdicts, timed_out)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(shadow_root) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONDONTWRITEBYTECODE"] = "1"
    cmd = [
        sys.executable,
        str(_probe_script()),
        "--pkg",
        str(pkg_dir),
        "--out",
        str(out_path),
        "--cache",
        str(cache_path),
    ]
    if static_only:
        cmd.append("--static-only")
    timed_out = False
    try:
        subprocess.run(
            cmd,
            env=env,
            timeout=timeout,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,
        )
    except subprocess.TimeoutExpired:
        timed_out = True
    verdicts = _parse_verdicts(out_path)
    if timed_out and "dynamic" not in verdicts and not static_only:
        # The fixture hung: that *is* a detection — a real run would
        # never terminate, which no reviewer mistakes for healthy.
        verdicts["dynamic"] = {"caught": True, "findings": ["timeout"]}
    return verdicts, timed_out


def run_campaign(
    target: str | Path | None = None,
    budget: int | None = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
    operators: Iterable[MutationOperator] | None = None,
    static_only: bool = False,
    probe_timeout: float = PROBE_TIMEOUT,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run a budgeted mutation campaign against ``target``.

    ``target`` is the ``repro`` package directory (defaults to the one
    this module was imported from).  Raises :class:`CampaignError` when
    the baseline probe is not perfectly quiet.
    """
    if target is None:
        pkg_dir = Path(__file__).resolve().parents[2]
    else:
        pkg_dir = Path(target).resolve()
    if not (pkg_dir / "core" / "framework.py").exists():
        raise CampaignError(
            f"{pkg_dir} does not look like a repro package "
            "(no core/framework.py)"
        )
    say = progress if progress is not None else (lambda _msg: None)

    mutants = collect_mutants(pkg_dir, operators=operators)
    selected = select_mutants(mutants, budget, seed)
    report = CampaignReport(
        seed=seed,
        budget=budget,
        sites_found=len(mutants),
        static_only=static_only,
    )
    say(
        f"{len(mutants)} mutation site(s); campaigning over "
        f"{len(selected)} (seed {seed})"
    )

    workdir = Path(tempfile.mkdtemp(prefix="repro-mutate-"))
    try:
        shadow_root = workdir / "shadow"
        shadow_pkg = shadow_root / "repro"
        shutil.copytree(
            pkg_dir,
            shadow_pkg,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        cache_path = workdir / "deep-cache.json"

        baseline, timed_out = _run_probe(
            shadow_root,
            shadow_pkg,
            workdir / "baseline.jsonl",
            cache_path,
            static_only,
            probe_timeout,
        )
        expected = [d for d in DETECTORS if d != "dynamic" or not static_only]
        noisy = [
            name
            for name in expected
            if baseline.get(name, {}).get("caught")
            or baseline.get(name, {}).get("findings")
        ]
        if timed_out or noisy or any(d not in baseline for d in expected):
            detail = json.dumps(baseline, sort_keys=True)
            raise CampaignError(
                "baseline probe is not clean"
                + (" (timed out)" if timed_out else "")
                + f": {detail}"
            )
        say("baseline probe clean; deep cache warm")

        for index, mutant in enumerate(selected):
            path = shadow_pkg / mutant.rel
            original = path.read_text()
            path.write_text(apply_site(original, mutant.site))
            try:
                verdicts, _ = _run_probe(
                    shadow_root,
                    shadow_pkg,
                    workdir / f"mutant-{index}.jsonl",
                    cache_path,
                    static_only,
                    probe_timeout,
                )
            finally:
                path.write_text(original)
            result = MutantResult(
                mutant=mutant,
                detectors=verdicts,
                triage=TRIAGE.get(mutant.id),
            )
            report.results.append(result)
            say(
                f"[{index + 1}/{len(selected)}] {mutant.id}: "
                + (
                    "caught by " + "+".join(result.caught_by)
                    if result.caught_by
                    else result.status
                )
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report
