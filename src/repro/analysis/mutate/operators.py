"""Mutation operators: seeded fault classes spliced into real source.

Each :class:`MutationOperator` mirrors a ``LintRule``: it is registered
by name, receives one parsed :class:`~repro.analysis.lint.base.ModuleSource`,
and yields :class:`MutationSite`\\ s — exact text splices that plant one
semantic fault.  Three properties are deliberate:

* **Text splices, not re-unparse.**  Mutants are produced by replacing
  the exact byte span of an AST node (``lineno``/``col_offset`` are
  UTF-8 byte offsets), never by ``ast.unparse`` of the whole tree.
  Comments — including ``# repro-lint:`` suppressions — survive
  verbatim, so a mutant is lint-equivalent to its parent everywhere
  except the splice.
* **Line-count preserving.**  Replacements pad with newlines to cover
  the original span, so every finding and suppression below the splice
  keeps its anchor line.  Suppression governance therefore behaves
  identically in parent and mutant.
* **Deterministic ordinals.**  Sites are ordered by ``(line, col)``
  within one ``(operator, file)`` pair and identified as
  ``{operator}:{rel}#{ordinal}``; ids are stable across runs, site
  discovery order, and unrelated edits elsewhere in the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..lint.base import ModuleSource, dotted_name, resolve_name

__all__ = [
    "Splice",
    "MutationSite",
    "Mutant",
    "MutationOperator",
    "register_operator",
    "all_operators",
    "apply_site",
    "collect_mutants",
    "DEFAULT_TARGET_PREFIXES",
]

#: Relative-path prefixes mutated by default: the phase/runtime code the
#: detector stack guards.  The analysis tree itself is never mutated
#: (the detectors must stay trustworthy inside a campaign).
DEFAULT_TARGET_PREFIXES = ("core/", "runtime/")


@dataclass(frozen=True)
class Splice:
    """Replace ``[start, end)`` (1-based line, byte col) with ``text``."""

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    text: str


@dataclass(frozen=True)
class MutationSite:
    """One plantable fault: where, what, and the exact splices."""

    operator: str
    fault_class: str
    rel: str
    line: int
    col: int
    description: str
    splices: tuple[Splice, ...]
    #: Text appended at end-of-file (the comm-laundering helper).
    append: str = ""


@dataclass(frozen=True)
class Mutant:
    """A site with its campaign identity (``{op}:{rel}#{ordinal}``)."""

    id: str
    site: MutationSite

    @property
    def operator(self) -> str:
        return self.site.operator

    @property
    def fault_class(self) -> str:
        return self.site.fault_class

    @property
    def rel(self) -> str:
        return self.site.rel


def _span(node: ast.AST) -> tuple[int, int, int, int]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    assert end_line is not None and end_col is not None
    return node.lineno, node.col_offset, end_line, end_col  # type: ignore[attr-defined]


def _source_of(module: ModuleSource, node: ast.AST) -> str:
    seg = ast.get_source_segment(module.text, node)
    assert seg is not None, f"no source span for {ast.dump(node)[:80]}"
    return seg


def _pad_expr(replacement: str, node: ast.AST) -> str:
    """Wrap an expression replacement to cover the node's line span."""
    extra = _span(node)[2] - node.lineno  # type: ignore[attr-defined]
    if extra == 0:
        return replacement
    return "(" + replacement + "\n" * extra + ")"


def _pad_stmt(replacement: str, node: ast.AST) -> str:
    """Pad a statement replacement with blank lines to keep line count."""
    extra = _span(node)[2] - node.lineno  # type: ignore[attr-defined]
    return replacement + "\n" * extra


def _pad_to(replacement: str, node: ast.AST) -> str:
    """Pad an expression that already spans lines up to the node's span."""
    missing = (
        _span(node)[2] - node.lineno - replacement.count("\n")  # type: ignore[attr-defined]
    )
    if missing <= 0:
        return replacement
    return "(" + replacement + "\n" * missing + ")"


def _replace(node: ast.AST, text: str) -> Splice:
    return Splice(*_span(node), text)


def apply_site(text: str, site: MutationSite) -> str:
    """Apply a site's splices (and EOF append) to the original text.

    Columns are UTF-8 byte offsets (CPython's ``col_offset`` contract),
    so splicing happens on encoded lines and decodes at the end.
    """
    lines = text.encode("utf-8").split(b"\n")
    ordered = sorted(
        site.splices, key=lambda s: (s.start_line, s.start_col), reverse=True
    )
    for sp in ordered:
        head = lines[sp.start_line - 1][: sp.start_col]
        tail = lines[sp.end_line - 1][sp.end_col :]
        patched = head + sp.text.encode("utf-8") + tail
        lines[sp.start_line - 1 : sp.end_line] = patched.split(b"\n")
    out = b"\n".join(lines).decode("utf-8")
    if site.append:
        out = out + site.append
    return out


class MutationOperator:
    """Base class: one fault class, one way of planting it.

    Subclasses set :attr:`name` (kebab-case, the matrix row prefix),
    :attr:`fault_class` (the matrix grouping), a one-line
    :attr:`description`, optionally narrow :attr:`target_rels`
    (relative-path prefixes; exact paths also match), and implement
    :meth:`sites`.
    """

    name: str = ""
    fault_class: str = ""
    description: str = ""
    target_rels: Sequence[str] = DEFAULT_TARGET_PREFIXES

    def applies_to(self, rel: str) -> bool:
        return any(rel == t or rel.startswith(t) for t in self.target_rels)

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        raise NotImplementedError

    def site(
        self,
        module: ModuleSource,
        node: ast.AST,
        description: str,
        splices: Sequence[Splice],
        append: str = "",
    ) -> MutationSite:
        return MutationSite(
            operator=self.name,
            fault_class=self.fault_class,
            rel=module.rel,
            line=node.lineno,  # type: ignore[attr-defined]
            col=node.col_offset,  # type: ignore[attr-defined]
            description=description,
            splices=tuple(splices),
            append=append,
        )


_REGISTRY: dict[str, MutationOperator] = {}


def register_operator(op_cls: type) -> type:
    """Class decorator: instantiate and register an operator by name."""
    op = op_cls()
    if not op.name:
        raise ValueError(f"{op_cls.__name__} has no operator name")
    if op.name in _REGISTRY:
        raise ValueError(f"duplicate mutation operator {op.name!r}")
    _REGISTRY[op.name] = op
    return op_cls


def all_operators() -> dict[str, MutationOperator]:
    """All registered operators, by name."""
    return dict(_REGISTRY)


def _statement_calls(module: ModuleSource) -> Iterator[tuple[ast.Expr, ast.Call]]:
    """Expression statements that are a single call (droppable)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            yield node, node.value


@register_operator
class UnseedRngOperator(MutationOperator):
    """Strip the seed from a ``default_rng`` construction."""

    name = "unseed-rng"
    fault_class = "determinism"
    description = "drop the seed argument from numpy.random.default_rng"

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not (node.args or node.keywords):
                continue
            target = resolve_name(node.func, module.aliases)
            if target not in (
                "numpy.random.default_rng",
                "numpy.random.Generator",
            ) and (target or "").split(".")[-1] != "default_rng":
                continue
            func_src = _source_of(module, node.func)
            yield self.site(
                module,
                node,
                f"unseed {func_src}(...)",
                [_replace(node, _pad_expr(f"{func_src}()", node))],
            )


@register_operator
class UnsortIterationOperator(MutationOperator):
    """``sorted(x)`` → ``list(x)``: iterate in container order."""

    name = "unsort-iteration"
    fault_class = "determinism"
    description = "replace a bare sorted(x) with list(x)"

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Name)
                or node.func.id != "sorted"
                or len(node.args) != 1
                or node.keywords
            ):
                continue
            arg_src = _source_of(module, node.args[0])
            yield self.site(
                module,
                node,
                f"unsort sorted({_compact(arg_src)})",
                [_replace(node, f"list({arg_src})")],
            )


@register_operator
class ReverseMergeOrderOperator(MutationOperator):
    """Reverse a keyed sort: the barrier merges hosts backwards."""

    name = "reverse-merge-order"
    fault_class = "determinism"
    description = "add reverse=True to a sorted(..., key=...) call"

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Name)
                or node.func.id != "sorted"
                or not any(kw.arg == "key" for kw in node.keywords)
                or any(kw.arg == "reverse" for kw in node.keywords)
            ):
                continue
            src = _source_of(module, node)
            assert src.endswith(")")
            yield self.site(
                module,
                node,
                "reverse a keyed sort order",
                [_replace(node, src[:-1] + ", reverse=True)")],
            )


class _DropCallOperator(MutationOperator):
    """Drop an expression-statement method call (``x.attr(...)`` → ``None``)."""

    #: Method names whose statement calls this operator deletes.
    attrs: frozenset[str] = frozenset()

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        for stmt, call in _statement_calls(module):
            if (
                not isinstance(call.func, ast.Attribute)
                or call.func.attr not in self.attrs
            ):
                continue
            yield self.site(
                module,
                stmt,
                f"drop {_compact(_source_of(module, call))}",
                [_replace(stmt, _pad_stmt("None", stmt))],
            )


@register_operator
class DropLedgerMergeOperator(_DropCallOperator):
    name = "drop-ledger-merge"
    fault_class = "accounting"
    description = "delete a merge_ledger(...) statement at a barrier"
    attrs = frozenset({"merge_ledger"})


@register_operator
class SkipFlushOperator(_DropCallOperator):
    name = "skip-flush"
    fault_class = "accounting"
    description = "delete a flush_accumulators() statement"
    attrs = frozenset({"flush_accumulators"})


@register_operator
class SkipBarrierOperator(_DropCallOperator):
    name = "skip-barrier"
    fault_class = "protocol"
    description = "delete a comm.barrier() statement"
    attrs = frozenset({"barrier"})


@register_operator
class SkipSyncRoundOperator(_DropCallOperator):
    name = "skip-sync-round"
    fault_class = "protocol"
    description = "delete a state.sync_round(...) statement"
    attrs = frozenset({"sync_round"})


_NUMPY_INTS = {"numpy.int64": "int64", "numpy.int32": "int32"}


class _DtypeOperator(MutationOperator):
    """Rewrite an integer dtype token inside a ``ColumnSchema(...)``."""

    #: ``int64``/``int32``: the token to find and its replacement text.
    find: str = ""
    swap: str = ""

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] != "ColumnSchema":
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Attribute):
                    continue
                if _NUMPY_INTS.get(
                    resolve_name(inner, module.aliases) or ""
                ) != self.find:
                    continue
                src = _source_of(module, inner)
                yield self.site(
                    module,
                    inner,
                    f"{self.name.replace('-', ' ')}: {src} in ColumnSchema",
                    [_replace(inner, src.replace(self.find, self.swap))],
                )


@register_operator
class NarrowDtypeOperator(_DtypeOperator):
    name = "narrow-dtype"
    fault_class = "wire-format"
    description = "narrow an int64 ColumnSchema column to int32"
    find = "int64"
    swap = "int32"


@register_operator
class WidenDtypeOperator(_DtypeOperator):
    name = "widen-dtype"
    fault_class = "wire-format"
    description = "widen an int32 ColumnSchema column to int64"
    find = "int32"
    swap = "int64"


class _ContractLambdaOperator(MutationOperator):
    """Mutate a ``rounds=``/``when=`` lambda inside a contract OpSpec."""

    target_rels = ("core/contracts.py",)
    keyword: str = ""

    def rewrite(self, body_src: str) -> str:
        raise NotImplementedError

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != self.keyword or not isinstance(kw.value, ast.Lambda):
                    continue
                body = kw.value.body
                body_src = _source_of(module, body)
                yield self.site(
                    module,
                    kw.value,
                    f"rewrite {self.keyword}= clause "
                    f"({_compact(body_src)})",
                    [_replace(body, _pad_expr(self.rewrite(body_src), body))],
                )


@register_operator
class ContractRoundsOperator(_ContractLambdaOperator):
    name = "contract-rounds"
    fault_class = "contract"
    description = "off-by-one a contract rounds= clause"
    keyword = "rounds"

    def rewrite(self, body_src: str) -> str:
        return f"({body_src}) + 1"


@register_operator
class ContractWhenOperator(_ContractLambdaOperator):
    name = "contract-when"
    fault_class = "contract"
    description = "force a contract when= clause to False"
    keyword = "when"

    def rewrite(self, body_src: str) -> str:
        return "False"


_LAUNDER_HELPER = '''

def _mutant_charge(view, units):
    """Laundered accounting: reaches the comm plane outside a task body."""
    stats = view._stats
    assert stats.comm is not None
    view.add_compute(units)
'''


@register_operator
class LaunderCommOperator(MutationOperator):
    """Route a task-body charge through a fresh top-level helper.

    Behaviourally equivalent (the helper still calls ``add_compute``),
    but the comm-plane access now lives outside any ``HostTask`` body —
    exactly the evasion the ``--deep`` interprocedural re-host of the
    comm-in-task rule exists to catch, and the shallow rule cannot.
    """

    name = "launder-comm"
    fault_class = "evasion"
    description = "move a task-body comm-plane access into a helper"

    def sites(self, module: ModuleSource) -> Iterator[MutationSite]:
        seen: set[tuple[int, int]] = set()
        for body, _call in module.host_task_bodies():
            for node in ast.walk(body):
                if not isinstance(node, ast.Expr) or not isinstance(
                    node.value, ast.Call
                ):
                    continue
                call = node.value
                if (
                    not isinstance(call.func, ast.Attribute)
                    or call.func.attr != "add_compute"
                    or not isinstance(call.func.value, ast.Name)
                    or len(call.args) != 1
                    or call.keywords
                ):
                    continue
                key = (call.lineno, call.col_offset)
                if key in seen:  # named bodies can be matched twice
                    continue
                seen.add(key)
                recv = call.func.value.id
                arg_src = _source_of(module, call.args[0])
                yield self.site(
                    module,
                    call,
                    f"launder {recv}.add_compute through a helper",
                    [
                        _replace(
                            call,
                            _pad_to(f"_mutant_charge({recv}, {arg_src})", call),
                        )
                    ],
                    append=_LAUNDER_HELPER,
                )


def _compact(src: str, limit: int = 48) -> str:
    flat = " ".join(src.split())
    return flat if len(flat) <= limit else flat[: limit - 1] + "…"


def collect_mutants(
    pkg_root: Path,
    operators: Iterable[MutationOperator] | None = None,
    rels: Sequence[str] | None = None,
) -> list[Mutant]:
    """Scan a ``repro`` package tree and enumerate every mutation site.

    ``pkg_root`` is the package directory (the one containing
    ``core/``/``runtime/``).  Returns mutants sorted by id components
    ``(operator, rel, ordinal)`` — a total order independent of
    discovery sequence, so campaigns are reproducible byte-for-byte.
    """
    ops = sorted(
        (operators if operators is not None else all_operators().values()),
        key=lambda o: o.name,
    )
    prefixes = {t.split("/")[0] for op in ops for t in op.target_rels}
    files = sorted(
        p
        for prefix in sorted(prefixes)
        for p in (pkg_root / prefix).rglob("*.py")
        if "__pycache__" not in p.parts
    )
    sites: list[MutationSite] = []
    for path in files:
        rel = path.relative_to(pkg_root).as_posix()
        if rels is not None and rel not in rels:
            continue
        active = [op for op in ops if op.applies_to(rel)]
        if not active:
            continue
        module = ModuleSource.load(path, pkg_root)
        for op in active:
            sites.extend(op.sites(module))
    sites.sort(key=lambda s: (s.operator, s.rel, s.line, s.col))
    mutants: list[Mutant] = []
    ordinal: dict[tuple[str, str], int] = {}
    for site in sites:
        key = (site.operator, site.rel)
        n = ordinal.get(key, 0)
        ordinal[key] = n + 1
        mutants.append(Mutant(id=f"{site.operator}:{site.rel}#{n}", site=site))
    return mutants
