"""Survivor triage: every undetected, non-equivalent mutant is debt.

A campaign row that no detector catches is either *equivalent* (the
mutation cannot change any observable behaviour of the system under the
detectors' purview), *covered elsewhere* (a code path the fixture
cannot reach, but a dedicated CI job exercises), or a genuine blind
spot.  Blind spots must be promoted into a rule or a tightened contract
clause — or explicitly *accepted* here with a reason, which keeps them
in the detection-rate denominator so the score honestly reflects them.

The registry maps stable mutant ids (``{operator}:{rel}#{ordinal}`` —
immune to unrelated edits, renumbered only when same-operator sites are
added/removed in the same file) to verdicts:

* ``equivalent`` — excluded from the detection-rate denominator;
* ``covered-elsewhere`` — excluded, with the covering gate named;
* ``accepted`` — counted as a miss, documented blind spot;
* ``promoted-rule`` — historical note on a now-caught mutant: the named
  rule exists *because* this mutant survived an earlier campaign.

``repro mutate`` fails on any surviving mutant absent from this table,
so a new blind spot cannot land silently; digest-checking the committed
``MUTATION_MATRIX.json`` keeps a *regressing* detector (a caught row
flipping to survived) from landing silently too.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TriageEntry", "TRIAGE", "VERDICTS"]


@dataclass(frozen=True)
class TriageEntry:
    """One survivor verdict: why this mutant is allowed to survive."""

    verdict: str  # equivalent | covered-elsewhere | accepted | promoted-rule
    reason: str

    def as_dict(self) -> dict:
        return {"verdict": self.verdict, "reason": self.reason}


VERDICTS = ("equivalent", "covered-elsewhere", "accepted", "promoted-rule")

#: The triage table.  Populated from campaign evidence; every entry
#: cites the behaviour that justifies the verdict.
TRIAGE: dict[str, TriageEntry] = {
    # -- covered elsewhere: the in-campaign fixture graph is too small /
    #    too uniform to diverge these, but the tier-1 suite (run on every
    #    CI leg, including the dedicated process-executor job) fails
    #    within seconds of any of them.  Verified by running the full
    #    suite against each mutant in place.
    "reverse-merge-order:runtime/executor.py#0": TriageEntry(
        "covered-elsewhere",
        "Reversing ParallelExecutor's host merge order breaks the"
        " serial-vs-parallel bit-identity assertions in"
        " tests/test_executors.py (tier-1, every CI leg).",
    ),
    "reverse-merge-order:runtime/executor.py#1": TriageEntry(
        "covered-elsewhere",
        "Reversing ProcessExecutor's delta replay order breaks the"
        " cross-process bit-identity assertions in"
        " tests/test_executors.py (tier-1, every CI leg).",
    ),
    "drop-ledger-merge:runtime/executor.py#1": TriageEntry(
        "covered-elsewhere",
        "Dropping the worker-delta ledger merge zeroes the shipped"
        " accounting; tests/test_executors.py asserts process-executor"
        " breakdowns match serial bit-for-bit (tier-1, every CI leg).",
    ),
    "skip-flush:runtime/executor.py#3": TriageEntry(
        "covered-elsewhere",
        "The monitored worker flush is exercised by the"
        " process-checked executor tests in tests/test_executors.py"
        " (tier-1, every CI leg), which fail on the skipped flush.",
    ),
    "skip-barrier:core/state.py#0": TriageEntry(
        "covered-elsewhere",
        "CuSP dispatch never takes the blocking path, but"
        " tests/test_prop_state.py calls sync_round directly and"
        " asserts exactly one barrier per round (tier-1, every CI leg).",
    ),
    # -- equivalent: no observable behaviour within any detector's (or
    #    the tier-1 suite's) purview changes.
    "skip-barrier:core/streaming_rules.py#0": TriageEntry(
        "equivalent",
        "The barrier sits behind `if blocking:`, a path"
        " tests/test_contracts.py proves statically unreachable from"
        " CuSP dispatch; the full tier-1 suite passes with the call"
        " deleted.",
    ),
    "unsort-iteration:runtime/faults.py#0": TriageEntry(
        "equivalent",
        "sorted() here orders a dict's items for a human-readable"
        " describe string; dict insertion order is already"
        " deterministic, and the string feeds no digest or wire path.",
    ),
    "unsort-iteration:runtime/faults.py#5": TriageEntry(
        "equivalent",
        "Cosmetic ordering of a fault-summary string built from a"
        " deterministic-insertion dict (FaultReport.summary); no"
        " digest or wire path consumes it.",
    ),
    # -- promoted: these survivors are the reason the unordered-iteration
    #    rule now tracks set-typed `self` attributes (and gained the
    #    unordered-dict-send sibling).  Caught by lint since.
    "unsort-iteration:runtime/faults.py#1": TriageEntry(
        "promoted-rule",
        "Survived while unordered-iteration only tracked local"
        " set-typed names; promoted the rule to track set-typed"
        " `self` attributes, which now flags this site.",
    ),
    "unsort-iteration:runtime/faults.py#2": TriageEntry(
        "promoted-rule",
        "Sibling of #1 (the torn-fault set on the same class);"
        " caught by the same attribute-set promotion.",
    ),
}
