"""In-shadow detector harness: run the full stack, emit JSONL verdicts.

The campaign driver copies ``repro`` into a shadow tree, splices one
mutant in, and runs this module as a subprocess with ``PYTHONPATH``
pointing at the shadow — so ``import repro`` here resolves to the
*mutated* package and every detector (static and dynamic) sees the
mutant exactly as a user install would.

One record per detector is appended to ``--out`` as a JSON line and
flushed immediately, so a hung mutant (killed by the driver's timeout)
still yields the verdicts of every detector that finished.  Records
contain only deterministic material — rule names, anchors, exception
class names, check labels; no timings, no messages with addresses —
because they feed the byte-stable detection matrix.

Detectors, in emission order:

* ``lint`` — the shallow SPMD-safety rules over the whole package
  (strict: unsuppressed warnings count);
* ``deep`` — the whole-program interprocedural analyses (same single
  engine pass as ``lint``, split by the ``deep-`` rule prefix);
* ``contracts`` — the static phase-contract diff (strict);
* ``dynamic`` — fixture partitions under CommSan and the isolation
  monitor: run-to-run bit-identity, serial-vs-parallel bit-identity,
  and the partition invariant checker.

The module top level imports only the standard library, and the driver
runs this file *by path* (not ``-m``): a mutant that breaks ``import
repro`` at module-evaluation time must not kill the probe before it can
report.  Each detector imports what it needs inside a guard; an
analyzer that cannot even load in the mutated environment reports
``error:<ExceptionName>`` (not caught), while the dynamic tier reports
the import crash as a catch — which it is: any real use of that mutant
dies instantly.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Callable, IO

__all__ = ["main", "partition_digest", "FIXTURES", "ABLATION_FIXTURE"]

#: (policy, num_hosts, sync_rounds): one stateful+impure master rule
#: (GVC = FennelEB) exercising the request/assignment exchange and the
#: per-round allreduce, one stateful edge rule (HDRF) exercising the
#: edge-assignment reconciliation.
FIXTURES: tuple[tuple[str, int, int], ...] = (("GVC", 4, 3), ("HDRF", 4, 3))

#: Fixture graph: |V|, |E|, seed — big enough to make every host talk,
#: small enough for a per-mutant subprocess.
FIXTURE_GRAPH = (220, 1700, 11)

#: (policy, num_hosts, sync_rounds) for the ablation fixture: a *pure*
#: master rule run with ``elide_master_communication=False``, the only
#: configuration in which the master-broadcast contract op fires.
ABLATION_FIXTURE: tuple[str, int, int] = ("CVC", 4, 3)


def _emit(out: IO[str], record: dict) -> None:
    out.write(json.dumps(record, sort_keys=True) + "\n")
    out.flush()


def _guarded(out: IO[str], names: tuple[str, ...], fn: Callable, *args) -> None:
    """Run one verdict function; on analyzer failure emit error records."""
    try:
        fn(out, *args)
    except Exception as exc:  # noqa: BLE001 — report, don't die
        for name in names:
            _emit(
                out,
                {
                    "detector": name,
                    "caught": False,
                    "findings": [f"error:{type(exc).__name__}"],
                },
            )


def _anchor(rule: str, path: str, line: int) -> str:
    return f"{rule}@{path}:{line}"


def _static_verdicts(out: IO[str], pkg_dir: Path, cache: str | None) -> None:
    from repro.analysis.lint.base import run_lint

    report = run_lint([pkg_dir], root=pkg_dir, deep=True, cache=cache)
    shallow = [f for f in report.findings if not f.rule.startswith("deep-")]
    deep = [f for f in report.findings if f.rule.startswith("deep-")]
    for name, findings in (("lint", shallow), ("deep", deep)):
        _emit(
            out,
            {
                "detector": name,
                "caught": bool(findings),
                "findings": sorted(
                    _anchor(f.rule, f.path, f.line) for f in findings
                ),
            },
        )


def _contract_verdict(out: IO[str], pkg_dir: Path) -> None:
    from repro.analysis.contracts import check_contracts

    report = check_contracts(pkg_dir)
    _emit(
        out,
        {
            "detector": "contracts",
            "caught": not report.ok(strict=True),
            "findings": sorted(
                _anchor(f.kind, f.path, f.line) for f in report.findings
            ),
        },
    )


def partition_digest(dg) -> str:
    """SHA-256 over everything bit-identity promises: partitions + stats.

    Extends the bench-smoke digest with the per-phase simulated
    breakdown, so accounting faults (a dropped ledger merge, a skipped
    flush) diverge the digest even when the partition arrays agree.
    """
    import numpy as np

    h = hashlib.sha256()
    h.update(np.ascontiguousarray(dg.masters).tobytes())
    for p in dg.partitions:
        h.update(np.ascontiguousarray(p.global_ids).tobytes())
        h.update(str(p.num_masters).encode())
        h.update(np.ascontiguousarray(p.local_graph.indptr).tobytes())
        h.update(np.ascontiguousarray(p.local_graph.indices).tobytes())
    for r in dg.breakdown.phases:
        h.update(json.dumps(r.to_dict(), sort_keys=True).encode())
    return h.hexdigest()


def _dynamic_verdict(out: IO[str]) -> None:
    try:
        from repro import CuSP
        from repro.analysis.contracts import ContractViolationError
        from repro.analysis.isolation import IsolationViolation
        from repro.core.validate import check_partition
        from repro.graph.generators import erdos_renyi
    except Exception as exc:  # noqa: BLE001 — an unimportable mutant IS caught
        _emit(
            out,
            {
                "detector": "dynamic",
                "caught": True,
                "findings": [f"crash:{type(exc).__name__}:import"],
            },
        )
        return

    graph = erdos_renyi(*FIXTURE_GRAPH)
    checks: list[str] = []

    def attempt(label: str, fn: Callable):
        try:
            return fn()
        except ContractViolationError:
            checks.append(f"commsan:{label}")
        except IsolationViolation:
            checks.append(f"isolation:{label}")
        except Exception as exc:  # noqa: BLE001 — any crash is a catch
            checks.append(f"crash:{type(exc).__name__}:{label}")
        return None

    def run(policy: str, hosts: int, rounds: int, executor: str, **kw):
        return CuSP(
            hosts,
            policy,
            sync_rounds=rounds,
            executor=executor,
            sanitizer=True,
            **kw,
        ).partition(graph)

    for index, (policy, hosts, rounds) in enumerate(FIXTURES):
        serial = attempt(
            f"serial:{policy}", lambda: run(policy, hosts, rounds, "serial")
        )
        if serial is not None and index == 0:
            again = attempt(
                f"serial2:{policy}",
                lambda: run(policy, hosts, rounds, "serial"),
            )
            if again is not None and partition_digest(serial) != (
                partition_digest(again)
            ):
                checks.append(f"nondeterminism:{policy}")
        parallel = attempt(
            f"parallel:{policy}",
            lambda: run(policy, hosts, rounds, "parallel-checked"),
        )
        if (
            serial is not None
            and parallel is not None
            and partition_digest(serial) != partition_digest(parallel)
        ):
            checks.append(f"divergence:{policy}")
        if serial is not None and index == 0:
            # The *checked* executors run their tasks under the isolation
            # monitor, which takes a different code path than a plain
            # production run (campaign evidence: a flush skipped only on
            # the unmonitored branch — skip-flush #2/#4 — passed every
            # monitored run).  Cover both plain executors by digest.
            for plain in ("parallel", "process"):
                alt = attempt(
                    f"{plain}:{policy}",
                    lambda plain=plain: run(policy, hosts, rounds, plain),
                )
                if alt is not None and partition_digest(serial) != (
                    partition_digest(alt)
                ):
                    checks.append(f"divergence:{plain}:{policy}")
        if serial is not None:
            report = check_partition(serial, graph)
            if report.errors:
                checks.append(f"invariants:{policy}")

    # Ablation fixture: a pure master rule (CVC = Cartesian) with the
    # §IV-D5 elision disabled is the only configuration in which the
    # master-broadcast contract op fires — without it a mutated
    # ``when`` clause on that op is statically *and* dynamically dead
    # (campaign evidence: contract-when #2 survived the elided fixtures).
    ablation = attempt(
        "ablation:CVC",
        lambda: run(*ABLATION_FIXTURE, "serial", elide_master_communication=False),
    )
    if ablation is not None:
        report = check_partition(ablation, graph)
        if report.errors:
            checks.append("invariants:ablation:CVC")
    _emit(
        out,
        {"detector": "dynamic", "caught": bool(checks), "findings": sorted(checks)},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.mutate.probe",
        description="run every detector against the importable repro tree",
    )
    parser.add_argument(
        "--pkg", required=True, help="the repro package directory to analyze"
    )
    parser.add_argument(
        "--out", required=True, help="JSONL verdict file (one line/detector)"
    )
    parser.add_argument(
        "--cache", default=None, help="deep-lint cache file (shared across probes)"
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip the dynamic tier (fixture partitions)",
    )
    args = parser.parse_args(argv)

    pkg_dir = Path(args.pkg).resolve()
    with open(args.out, "a") as out:
        _guarded(out, ("lint", "deep"), _static_verdicts, pkg_dir, args.cache)
        _guarded(out, ("contracts",), _contract_verdict, pkg_dir)
        if not args.static_only:
            _guarded(out, ("dynamic",), _dynamic_verdict)
    return 0


if __name__ == "__main__":
    sys.exit(main())
