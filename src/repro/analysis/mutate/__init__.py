"""Mutation-based soundness harness for the analysis stack.

PRs 3, 4, and 8 built a tower of detectors — the shallow SPMD-safety
lint, the whole-program ``--deep`` interprocedural analysis, the phase
contracts with their static extractor and the CommSan runtime
sanitizer, and the host-isolation monitor.  This package measures what
that tower actually catches: it *injects* the bug classes the
detectors claim to find — seeded, AST-level semantic mutations of the
real ``src/repro`` phase/runtime/policy code — runs the full detector
stack against every mutant in an isolated shadow copy of the tree, and
emits a detection matrix (``mutant class × detector →
caught/missed/equivalent``) as byte-stable JSON.

* :mod:`.operators` — the pluggable :class:`MutationOperator` registry
  (mirroring the ``LintRule`` registry): each operator locates the
  source sites where one fault class can be planted and produces exact
  text splices that preserve line numbers, so suppression comments and
  finding anchors stay valid in the mutant.
* :mod:`.campaign` — the driver: shadow-copies the package, applies
  one mutant at a time, runs the detectors through :mod:`.probe` in a
  subprocess whose ``PYTHONPATH`` points at the shadow tree, and
  assembles the :class:`CampaignReport`.
* :mod:`.probe` — the in-shadow detector harness (shallow+deep lint,
  contract extraction, and the dynamic tier: CommSan, the isolation
  monitor, serial-vs-parallel bit-identity, run-to-run determinism and
  the partition invariant checker on a fixture graph).
* :mod:`.triage` — the survivor registry: every undetected,
  non-equivalent mutant must be triaged into a new rule, a tightened
  contract clause, or a documented-equivalent entry; untriaged
  survivors fail the campaign.

Surfaced as the ``repro mutate`` CLI subcommand; the committed
reference matrix (``MUTATION_MATRIX.json``) is checked digest-style
like the bench smoke test.  See the "Mutation soundness" section of
``docs/ANALYSIS.md``.
"""

from .operators import (
    MutationOperator,
    MutationSite,
    Mutant,
    all_operators,
    apply_site,
    collect_mutants,
    register_operator,
)
from .campaign import CampaignReport, MutantResult, run_campaign
from .triage import TRIAGE

__all__ = [
    "MutationOperator",
    "MutationSite",
    "Mutant",
    "all_operators",
    "apply_site",
    "collect_mutants",
    "register_operator",
    "CampaignReport",
    "MutantResult",
    "run_campaign",
    "TRIAGE",
]
