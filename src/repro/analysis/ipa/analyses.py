"""The whole-program analyses behind ``repro lint --deep``.

Each deep rule mirrors the contract of a shallow rule (or adds a new
one) but reasons over the linked :class:`~repro.analysis.ipa.program.
Program` instead of one module at a time, so helper indirection no
longer hides a violation.  Every finding carries a **call-chain
witness** naming each hop from the entry point to the offending
operation — a deep finding the reader cannot retrace is a deep finding
nobody trusts.

Rules:

* ``deep-comm-in-task`` — the shared Communicator (``.comm`` access or
  a phase-global collective) reached from a HostTask body *through
  helpers*, any call depth.  The comm layer itself
  (``runtime/comm.py``, ``runtime/executor.py``, ``runtime/colfab.py``)
  is the sanctioned boundary: traversal stops there.
* ``deep-unseeded-rng`` — a seed parameter threaded through wrappers
  (``def fresh(seed=None): return default_rng(seed)``) that a call
  site leaves unbound or binds to ``None``.
* ``deep-unshippable-task-capture`` — a helper reached from a HostTask
  body that writes closure/global state, or mutates a parameter bound
  to captured state, which a forked worker cannot ship back.
* ``deep-determinism-taint`` — a nondeterminism source (wall-clock,
  unseeded RNG, set iteration order, ``id()``) whose value flows
  through returns and calls into partition state, a ledger
  send/charge, or a HostTask result.
* ``deep-unshippable-payload`` — a ``HostTask(payload=...)`` whose
  value tree transitively contains something a forked worker cannot
  unpickle or must not own: locks, open files, sockets, generators,
  lambdas, closure-carrying nested functions, or Communicator/executor
  references.
"""

from __future__ import annotations

from typing import Iterator

from ..lint.base import ERROR, WARNING, Finding
from .program import COMM_TYPE_LEAFS, Program, Target
from .summary import FunctionSummary, ModuleSummary, taints_from_json

__all__ = ["DEEP_RULES", "DeepRule", "all_deep_rules"]

#: Modules that *are* the comm layer: reaching them from a task body is
#: how charges are supposed to flow (via the HostView), so traversal
#: neither descends into nor reports from them.
TRUSTED_RELS = (
    "runtime/comm.py",
    "runtime/executor.py",
    "runtime/colfab.py",
)

#: Callables whose return value can never cross a process boundary.
BAD_FACTORIES = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.BoundedSemaphore": "a threading.Semaphore",
    "threading.Event": "a threading.Event",
    "threading.Barrier": "a threading.Barrier",
    "threading.local": "thread-local storage",
    "multiprocessing.Lock": "a multiprocessing.Lock",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "os.fdopen": "an open file handle",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "subprocess.Popen": "a subprocess handle",
    "queue.Queue": "a queue (holds thread locks)",
    "queue.LifoQueue": "a queue (holds thread locks)",
    "queue.PriorityQueue": "a queue (holds thread locks)",
}

_MAX_DEPTH = 12

_SOURCE_LABELS = {
    "wall-clock": "wall-clock read",
    "unseeded-rng": "unseeded RNG draw",
    "set-order": "unordered set iteration",
    "id": "id() address",
}


def _trusted(rel: str) -> bool:
    return any(rel == t or rel.endswith("/" + t) for t in TRUSTED_RELS)


def _hop(msum: ModuleSummary, fn: FunctionSummary, line: int) -> str:
    return f"{msum.module}.{fn.qual} ({msum.rel}:{line})"


def _chain(hops: list[str]) -> str:
    return " -> ".join(hops)


class DeepRule:
    """Base class for whole-program rules (mirrors ``LintRule``)."""

    name: str = ""
    severity: str = ERROR
    description: str = ""

    def check(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, rel: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=rel,
            line=line,
            col=col,
            message=message,
        )


def _body_reachable(
    program: Program, msum: ModuleSummary, task: dict
) -> Iterator[tuple[Target, list[str], int]]:
    """BFS over the call graph from a HostTask body.

    Yields ``(target, hops, depth)`` — depth 0 is the body itself.
    Stops at the trusted comm layer and at ``_MAX_DEPTH``.
    """
    body = program.resolve_body(msum, task)
    if body is None:
        return
    start_hop = _hop(body.module, body.fn, body.fn.line)
    queue: list[tuple[Target, list[str]]] = [(body, [start_hop])]
    visited = {body.key}
    while queue:
        target, hops = queue.pop(0)
        depth = len(hops) - 1
        yield target, hops, depth
        if depth >= _MAX_DEPTH:
            continue
        for atom, callee in program.callees(target.module, target.fn):
            if callee.key in visited or _trusted(callee.module.rel):
                continue
            visited.add(callee.key)
            queue.append(
                (callee, hops + [_hop(callee.module, callee.fn, atom["line"])])
            )


class DeepCommInTaskRule(DeepRule):
    name = "deep-comm-in-task"
    severity = ERROR
    description = (
        "shared Communicator reached from a HostTask body through a "
        "helper call chain; route charges through the HostView"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        # Anchored at the comm access itself, so the justification for
        # a sanctioned access lives (and suppresses) in one place no
        # matter how many task bodies reach it.
        seen: set[tuple] = set()
        for msum, task in program.host_tasks():
            for target, hops, depth in _body_reachable(program, msum, task):
                if depth == 0 or not target.fn.comm:
                    continue  # depth 0 is the shallow rule's territory
                for access in target.fn.comm:
                    key = (target.module.rel, access["line"], access["what"])
                    if key in seen:
                        continue
                    seen.add(key)
                    what = (
                        f"phase-global `{access['what'][5:]}`"
                        if access["what"].startswith("call:")
                        else "`.comm`"
                    )
                    yield self.finding(
                        target.module.rel, access["line"], 0,
                        f"{what} is reachable from the HostTask body "
                        f"registered at {msum.rel}:{task['line']}; "
                        f"call chain: {_chain(hops)}",
                    )


class DeepUnseededRngRule(DeepRule):
    name = "deep-unseeded-rng"
    severity = ERROR
    description = (
        "a seed parameter threaded through RNG wrapper functions is "
        "left unbound or bound to None at a call site"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        # rng_params[(rel, qual)][param] = witness chain down to the
        # default_rng/Random construction the parameter seeds.
        rng_params: dict[tuple[str, str], dict[str, list[str]]] = {}
        for msum, fn in program.functions():
            for intro in fn.rng:
                rng_params.setdefault((msum.rel, fn.qual), {}).setdefault(
                    intro["seed_param"],
                    [
                        f"{msum.module}.{fn.qual} seeds "
                        f"{intro['callee']} with parameter "
                        f"`{intro['seed_param']}` "
                        f"({msum.rel}:{intro['line']})"
                    ],
                )
        findings: dict[tuple, Finding] = {}
        for _ in range(_MAX_DEPTH):
            changed = False
            for msum, fn in program.functions():
                for atom, target in program.callees(msum, fn):
                    threaded = rng_params.get(target.key)
                    if not threaded:
                        continue
                    for param, chain in threaded.items():
                        kind, detail = Program.bind_param(atom, target, param)
                        decided = (
                            kind == "none"
                            or (
                                kind == "omitted"
                                and param in target.fn.none_defaults
                            )
                        )
                        here = _hop(msum, fn, atom["line"])
                        if decided:
                            key = (msum.rel, atom["line"], target.key, param)
                            how = (
                                "passes None for"
                                if kind == "none" else "omits"
                            )
                            findings.setdefault(key, self.finding(
                                msum.rel, atom["line"], atom["col"],
                                f"call {how} seed parameter `{param}` of "
                                f"{target.label()}, reaching an unseeded "
                                f"generator; call chain: "
                                f"{_chain([here] + chain)}",
                            ))
                        elif kind == "param":
                            mine = rng_params.setdefault(
                                (msum.rel, fn.qual), {}
                            )
                            if detail not in mine:
                                mine[detail] = [here] + chain
                                changed = True
            if not changed:
                break
        yield from findings.values()


class DeepUnshippableTaskCaptureRule(DeepRule):
    name = "deep-unshippable-task-capture"
    severity = WARNING
    description = (
        "a helper reached from a HostTask body writes captured or "
        "global state (or mutates a captured argument), which a forked "
        "worker cannot ship back"
    )

    #: param -> (origin rel, origin line, chain to the write)
    _Mutates = dict

    def _mutated_params(
        self, program: Program
    ) -> dict[tuple[str, str], dict[str, tuple[str, int, list[str]]]]:
        """Parameters each function (transitively) mutates."""
        mutates: dict[
            tuple[str, str], dict[str, tuple[str, int, list[str]]]
        ] = {}
        for msum, fn in program.functions():
            for write in fn.writes:
                if write["kind"] != "param":
                    continue
                mutates.setdefault((msum.rel, fn.qual), {}).setdefault(
                    write["root"],
                    (
                        msum.rel,
                        write["line"],
                        [
                            f"{msum.module}.{fn.qual} writes "
                            f"`{write['root']}` "
                            f"({msum.rel}:{write['line']})"
                        ],
                    ),
                )
        for _ in range(_MAX_DEPTH):
            changed = False
            for msum, fn in program.functions():
                for atom, target in program.callees(msum, fn):
                    for param, (orel, oline, chain) in list(
                        mutates.get(target.key, {}).items()
                    ):
                        kind, detail = Program.bind_param(atom, target, param)
                        if kind != "param":
                            continue
                        mine = mutates.setdefault((msum.rel, fn.qual), {})
                        if detail not in mine:
                            mine[detail] = (
                                orel, oline,
                                [_hop(msum, fn, atom["line"])] + chain,
                            )
                            changed = True
            if not changed:
                break
        return mutates

    def _bound_capture(
        self, atom: dict, callee, param: str
    ) -> list | None:
        """The captured root a call binds to ``param``, if any.

        ``self`` of a bound-method call binds to the receiver root;
        other parameters bind through their argument slot.
        """
        kind, _ = Program.bind_param(atom, callee, param)
        if kind == "receiver":
            root = atom.get("recv_root")
        else:
            params = callee.fn.params
            if param not in params:
                return None
            idx = params.index(param)
            if callee.kind in ("init", "method"):
                idx -= 1
            slot = None
            if 0 <= idx < atom["nargs"]:
                slot = str(idx)
            elif param in atom["kwnames"]:
                slot = f"kw:{param}"
            root = atom["rargs"].get(slot) if slot is not None else None
        if root is not None and root[1] in ("closure", "global"):
            return root
        return None

    def check(self, program: Program) -> Iterator[Finding]:
        # Anchored at the offending write, so a write that is benign by
        # design (e.g. a recompute-on-miss cache) is justified once, at
        # the line whose surrounding code explains it.
        mutates = self._mutated_params(program)
        seen: set[tuple] = set()
        for msum, task in program.host_tasks():
            for target, hops, depth in _body_reachable(program, msum, task):
                if depth >= 1:
                    for write in target.fn.writes:
                        if write["kind"] not in ("closure", "global"):
                            continue
                        if write["is_import"]:
                            continue
                        key = ("write", target.key, write["root"],
                               write["line"])
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.finding(
                            target.module.rel, write["line"], 0,
                            f"write to {write['kind']} `{write['root']}` "
                            f"is reached from the HostTask body "
                            f"registered at {msum.rel}:{task['line']}; a "
                            f"forked worker cannot ship it back; call "
                            f"chain: {_chain(hops)}",
                        )
                # Captured state handed into a callee that (transitively)
                # mutates the bound parameter — including the receiver of
                # a bound-method call.
                for atom, callee in program.callees(
                    target.module, target.fn
                ):
                    threaded = mutates.get(callee.key)
                    if not threaded:
                        continue
                    for param, (orel, oline, chain) in threaded.items():
                        bound = self._bound_capture(atom, callee, param)
                        if bound is None:
                            continue
                        key = ("mutate", callee.key, param, orel, oline)
                        if key in seen:
                            continue
                        seen.add(key)
                        here = (
                            f"{callee.label()} "
                            f"({target.module.rel}:{atom['line']})"
                        )
                        yield self.finding(
                            orel, oline, 0,
                            f"captured `{bound[0]}` is mutated here via "
                            f"the HostTask body registered at "
                            f"{msum.rel}:{task['line']}; the write dies "
                            f"with a forked worker; call chain: "
                            f"{_chain(hops + [here] + chain)}",
                        )


class DeepDeterminismTaintRule(DeepRule):
    name = "deep-determinism-taint"
    severity = ERROR
    description = (
        "a nondeterminism source (wall-clock, unseeded RNG, set order, "
        "id()) flows through calls into partition state, a ledger "
        "send, or a HostTask result"
    )

    #: src key -> witness chain (module-qualified hops, source first)
    _Sources = dict

    def _resolve_taints(
        self,
        program: Program,
        msum: ModuleSummary,
        fn: FunctionSummary,
        taints: set,
        ret: dict,
        depth: int = 0,
    ) -> dict[tuple, list[str]]:
        """Expand taint atoms into source keys with witness chains."""
        out: dict[tuple, list[str]] = {}
        for atom in taints:
            if atom[0] == "src":
                _, family, line, detail = atom
                label = _SOURCE_LABELS.get(family, family)
                out.setdefault(
                    (family, msum.rel, line),
                    [f"{label} `{detail}` ({msum.rel}:{line})"],
                )
                continue
            _, idx, line = atom
            if idx >= len(fn.calls) or depth > 3:
                continue
            call = fn.calls[idx]
            targets = program.resolve_call(msum, fn.qual, call)
            arg_taints = taints_from_json(call["targs"])
            flow_args = not targets
            for target in targets:
                for key, chain in ret.get(target.key, {}).items():
                    out.setdefault(
                        key,
                        chain + [_hop(msum, fn, line)],
                    )
                if target.fn.return_params:
                    flow_args = True
            if flow_args and arg_taints:
                for key, chain in self._resolve_taints(
                    program, msum, fn, arg_taints, ret, depth + 1
                ).items():
                    out.setdefault(key, chain)
        return out

    def _return_taint_fixpoint(self, program: Program) -> dict:
        ret: dict[tuple[str, str], dict[tuple, list[str]]] = {}
        for _ in range(_MAX_DEPTH):
            changed = False
            for msum, fn in program.functions():
                resolved = self._resolve_taints(
                    program, msum, fn,
                    taints_from_json(fn.return_taints), ret,
                )
                have = ret.setdefault((msum.rel, fn.qual), {})
                for key, chain in resolved.items():
                    if key not in have:
                        have[key] = chain
                        changed = True
            if not changed:
                break
        return ret

    def check(self, program: Program) -> Iterator[Finding]:
        ret = self._return_taint_fixpoint(program)
        emitted: set[tuple] = set()

        def emit(
            msum: ModuleSummary, line: int, what: str,
            sources: dict[tuple, list[str]],
        ) -> Iterator[Finding]:
            for key, chain in sorted(sources.items()):
                family = key[0]
                fkey = (msum.rel, line, what, key)
                if fkey in emitted:
                    continue
                emitted.add(fkey)
                yield self.finding(
                    msum.rel, line, 0,
                    f"{_SOURCE_LABELS.get(family, family)} reaches "
                    f"{what}; value path: {_chain(chain)}",
                )

        for msum, fn in program.functions():
            for sink in fn.sinks:
                sources = self._resolve_taints(
                    program, msum, fn,
                    taints_from_json(sink["taints"]), ret,
                )
                yield from emit(
                    msum, sink["line"],
                    f"`.{sink['op']}` at {msum.rel}:{sink['line']}",
                    sources,
                )
            for write in fn.writes:
                sources = self._resolve_taints(
                    program, msum, fn,
                    taints_from_json(write["taints"]), ret,
                )
                yield from emit(
                    msum, write["line"],
                    f"the write to {write['kind']} `{write['root']}` "
                    f"at {msum.rel}:{write['line']}",
                    sources,
                )
        for msum, task in program.host_tasks():
            body = program.resolve_body(msum, task)
            if body is None:
                continue
            sources = ret.get(body.key, {})
            yield from emit(
                msum, task["line"],
                f"the HostTask result of {body.label()}",
                sources,
            )


class DeepUnshippablePayloadRule(DeepRule):
    name = "deep-unshippable-payload"
    severity = ERROR
    description = (
        "a HostTask payload transitively contains a value a forked "
        "worker cannot receive: a lock, open file, socket, generator, "
        "lambda, nested function, or Communicator/executor reference"
    )

    def _eval(
        self,
        program: Program,
        msum: ModuleSummary,
        node: dict | None,
        hops: list[str],
        seen: frozenset,
        depth: int = 0,
    ) -> Iterator[tuple[str, list[str]]]:
        if node is None or depth > _MAX_DEPTH:
            return
        kind = node.get("k", "ok")
        if kind in ("ok", "const"):
            return
        if kind in ("items", "any"):
            for child in node.get("items", node.get("alts", [])):
                yield from self._eval(
                    program, msum, child, hops, seen, depth + 1
                )
        elif kind == "lambda":
            yield (
                f"a lambda ({msum.rel}:{node['line']}) is not picklable",
                hops,
            )
        elif kind == "gen":
            yield (
                f"a generator ({msum.rel}:{node['line']}) is not "
                "picklable",
                hops,
            )
        elif kind == "nestedfn":
            yield (
                f"nested function `{node['name']}` "
                f"({msum.rel}:{node['line']}) carries its closure and "
                "is not picklable",
                hops,
            )
        elif kind == "attr":
            leaf_type = node.get("root_type", "").rsplit(".", 1)[-1]
            parts = node.get("dotted", "").split(".")
            if "comm" in parts[1:]:
                yield (
                    f"`{node['dotted']}` ({msum.rel}:{node['line']}) "
                    "reaches the shared Communicator",
                    hops,
                )
            elif leaf_type in COMM_TYPE_LEAFS:
                yield (
                    f"`{node['dotted']}` ({msum.rel}:{node['line']}) is "
                    f"an attribute of process-bound {leaf_type}",
                    hops,
                )
        elif kind == "ref":
            leaf_type = node.get("root_type", "").rsplit(".", 1)[-1]
            if leaf_type in COMM_TYPE_LEAFS:
                yield (
                    f"`{node['name']}` ({msum.rel}:{node['line']}) is a "
                    f"process-bound {leaf_type}",
                    hops,
                )
        elif kind == "call":
            yield from self._eval_call(
                program, msum, node, hops, seen, depth
            )

    def _eval_call(
        self,
        program: Program,
        msum: ModuleSummary,
        node: dict,
        hops: list[str],
        seen: frozenset,
        depth: int,
    ) -> Iterator[tuple[str, list[str]]]:
        callee = node.get("callee", "")
        if callee in BAD_FACTORIES:
            yield (
                f"`{node['raw']}(...)` ({msum.rel}:{node['line']}) "
                f"creates {BAD_FACTORIES[callee]}, which cannot cross "
                "a process boundary",
                hops,
            )
            return
        leaf = callee.rsplit(".", 1)[-1] if callee else ""
        if leaf in COMM_TYPE_LEAFS:
            yield (
                f"`{node['raw']}(...)` ({msum.rel}:{node['line']}) "
                f"constructs process-bound {leaf}",
                hops,
            )
            return
        atom = {
            "recv": node.get("recv", ""),
            "raw": node.get("raw", ""),
            "callee": callee,
            "method": node.get("method", ""),
        }
        targets = program.resolve_call(msum, "<module>", atom)
        for target in targets:
            if target.key in seen:
                continue
            hop = (
                f"{target.label()} "
                f"({target.module.rel}:{target.fn.line})"
            )
            if target.kind == "init":
                cls_qual = target.fn.cls
                cls = target.module.classes.get(cls_qual)
                if cls is None:
                    continue
                for entry in cls["init_ship"]:
                    yield from self._eval(
                        program, target.module, entry["ship"],
                        hops + [
                            f"{target.module.module}.{cls_qual}."
                            f"__init__ stores `self.{entry['attr']}` "
                            f"({target.module.rel}:{entry['line']})"
                        ],
                        seen | {target.key},
                        depth + 1,
                    )
            elif target.fn.has_yield:
                yield (
                    f"{target.label()} is a generator function; its "
                    "return value is not picklable",
                    hops + [hop],
                )
            else:
                yield from self._eval(
                    program, target.module, target.fn.return_ship,
                    hops + [hop], seen | {target.key}, depth + 1,
                )
        for arg in node.get("args", []):
            yield from self._eval(program, msum, arg, hops, seen, depth + 1)

    def check(self, program: Program) -> Iterator[Finding]:
        for msum, task in program.host_tasks():
            if task["payload"] is None:
                continue
            emitted: set[str] = set()
            for reason, hops in self._eval(
                program, msum, task["payload"],
                [f"payload ({msum.rel}:{task['payload_line']})"],
                frozenset(),
            ):
                if reason in emitted:
                    continue
                emitted.add(reason)
                yield self.finding(
                    msum.rel, task["payload_line"], task["col"],
                    f"HostTask payload is not process-safe: {reason}; "
                    f"via {_chain(hops)}",
                )


#: The deep rule set, in reporting order.
DEEP_RULES: list[DeepRule] = [
    DeepCommInTaskRule(),
    DeepUnseededRngRule(),
    DeepUnshippableTaskCaptureRule(),
    DeepDeterminismTaintRule(),
    DeepUnshippablePayloadRule(),
]


def all_deep_rules() -> dict[str, DeepRule]:
    return {rule.name: rule for rule in DEEP_RULES}
