"""Per-module summaries for the whole-program analyses.

A :class:`ModuleSummary` is everything the interprocedural passes need
to know about one file, extracted in a single AST walk and fully
JSON-serializable so the incremental cache can persist it keyed by the
file's SHA-256.  Nothing in here looks across files — linking is
:mod:`~repro.analysis.ipa.program`'s job — which is what makes the
summary cacheable per file.

The summary records, per function (plus a ``<module>`` pseudo-function
for top-level code):

* **call atoms** — every call site with its alias-resolved callee,
  receiver type for method calls (from parameter annotations, ``self``,
  or local constructor assignments), argument metadata (literal-``None``
  slots, parameter-valued slots, closure/global-rooted slots), and the
  taint reaching its arguments;
* **local taint** — a flow-insensitive fixpoint over the function's
  assignments propagating nondeterminism sources (wall-clock reads,
  unseeded RNG, unordered set iteration, ``id()``) into variables,
  call arguments, state writes, and return values.  ``sorted(...)``
  sanitizes set-order taint, mirroring the shallow rule's contract;
* **shippability trees** — a symbolic value tree (:term:`ship node`)
  for every returned expression and every ``self.attr = ...`` in an
  ``__init__``, so the payload analysis can later prove a
  ``HostTask(payload=...)`` transitively process-safe;
* **state writes** to parameter / closure / global roots, **``.comm``
  accesses and phase-global collectives**, and **seed-parameter RNG
  constructions** (``default_rng(seed)`` wrappers) that power the deep
  re-hosts of the evasion-prone shallow rules.

Taint atoms are plain tuples — ``("src", family, line, detail)`` for a
source, ``("call", index, line)`` for a value returned by call atom
``index`` (resolved interprocedurally at link time) — serialized as
lists.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..lint.base import ModuleSource, dotted_name, resolve_name
from ..lint.rules import UnorderedIterationRule, WallClockRule

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
    "taints_from_json",
    "taints_to_json",
]

#: Bump when the summary schema or extraction semantics change; part of
#: the cache key so stale summaries are never reused across versions.
SUMMARY_VERSION = 1

#: Phase-global collective calls (shared with the shallow
#: ``comm-in-task`` rule's dispatch hints and the contracts extractor).
PHASE_GLOBAL_CALLS = {
    "allreduce_sum", "allreduce_max", "allgather", "barrier",
    "merge_ledger", "sync_round",
}

_CLOCKS = WallClockRule._CLOCKS
_SET_RULE = UnorderedIterationRule()
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

Taint = tuple  # ("src", family, line, detail) | ("call", idx, line)


def taints_to_json(taints: set[Taint]) -> list[list]:
    return sorted([list(t) for t in taints])


def taints_from_json(data: list[list]) -> set[Taint]:
    return {tuple(t) for t in data}


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Nodes of one scope: nested defs/lambdas/classes yielded, not entered."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _store_roots(target: ast.AST) -> Iterator[ast.AST]:
    """Leaf store targets under tuple/list/star unpacking."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _store_roots(elt)
    elif isinstance(target, ast.Starred):
        yield from _store_roots(target.value)
    else:
        yield target


def _chain_root(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _annotation_type(node: ast.AST | None, aliases: dict[str, str]) -> str | None:
    """Best-effort dotted type from an annotation (unwraps ``X | None``)."""
    if node is None:
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_type(node.left, aliases)
    if isinstance(node, ast.Subscript):
        outer = resolve_name(node.value, aliases)
        if outer and outer.rsplit(".", 1)[-1] in ("Optional", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_type(inner, aliases)
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_type(
                ast.parse(node.value, mode="eval").body, aliases
            )
        except SyntaxError:
            return None
    return resolve_name(node, aliases)


@dataclass
class FunctionSummary:
    """Everything the link phase needs to know about one function."""

    qual: str
    name: str
    line: int
    cls: str = ""  # enclosing class qual, "" for free functions
    params: list[str] = field(default_factory=list)
    none_defaults: list[str] = field(default_factory=list)
    calls: list[dict] = field(default_factory=list)
    comm: list[dict] = field(default_factory=list)
    rng: list[dict] = field(default_factory=list)
    sinks: list[dict] = field(default_factory=list)
    writes: list[dict] = field(default_factory=list)
    return_taints: list[list] = field(default_factory=list)
    return_params: list[str] = field(default_factory=list)
    return_ship: dict | None = None
    has_yield: bool = False
    is_nested: bool = False

    def to_dict(self) -> dict:
        return {
            "qual": self.qual, "name": self.name, "line": self.line,
            "cls": self.cls, "params": self.params,
            "none_defaults": self.none_defaults, "calls": self.calls,
            "comm": self.comm, "rng": self.rng, "sinks": self.sinks,
            "writes": self.writes, "return_taints": self.return_taints,
            "return_params": self.return_params,
            "return_ship": self.return_ship, "has_yield": self.has_yield,
            "is_nested": self.is_nested,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(**data)


@dataclass
class ModuleSummary:
    """One file's contribution to the program model."""

    rel: str
    module: str  # dotted module name, e.g. "repro.runtime.comm"
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, dict] = field(default_factory=dict)
    host_tasks: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "rel": self.rel,
            "module": self.module,
            "aliases": self.aliases,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": self.classes,
            "host_tasks": self.host_tasks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            rel=data["rel"],
            module=data["module"],
            aliases=data["aliases"],
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in data["functions"].items()
            },
            classes=data["classes"],
            host_tasks=data["host_tasks"],
        )


class _Scope:
    """One function scope (or the ``<module>`` pseudo-scope) mid-extraction."""

    def __init__(
        self,
        node: ast.AST,
        qual: str,
        cls_qual: str,
        parent: "_Scope | None",
        aliases: dict[str, str],
    ):
        self.node = node
        self.qual = qual
        self.cls_qual = cls_qual
        self.parent = parent
        self.aliases = aliases
        self.params: list[str] = []
        self.none_defaults: set[str] = set()
        self.locals: set[str] = set()
        self.globals_decl: set[str] = set()
        self.nonlocal_decl: set[str] = set()
        self.var_types: dict[str, str] = {}
        #: name -> value expressions assigned to it (for ship resolution)
        self.assign_map: dict[str, list[ast.AST]] = {}
        #: (target names, value expr, extra taint atoms) for the fixpoint
        self.assigns: list[tuple[list[str], ast.AST | None, set[Taint]]] = []
        self.returns: list[ast.AST | None] = []
        self.calls: list[ast.Call] = []
        self.call_index: dict[int, int] = {}
        self.nested_defs: dict[str, str] = {}  # name -> child qual
        self.has_yield = False
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._bind_params(node.args)

    def _bind_params(self, args: ast.arguments) -> None:
        positional = [*args.posonlyargs, *args.args]
        for a in positional:
            self.params.append(a.arg)
            ann = _annotation_type(a.annotation, self.aliases)
            if ann:
                self.var_types[a.arg] = ann
        for a, default in zip(
            reversed(positional), reversed(args.defaults)
        ):
            if isinstance(default, ast.Constant) and default.value is None:
                self.none_defaults.add(a.arg)
        for a, default in zip(args.kwonlyargs, args.kw_defaults):
            self.params.append(a.arg)
            ann = _annotation_type(a.annotation, self.aliases)
            if ann:
                self.var_types[a.arg] = ann
            if isinstance(default, ast.Constant) and default.value is None:
                self.none_defaults.add(a.arg)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                self.params.append(extra.arg)
        self.locals |= set(self.params)

    def classify(self, name: str) -> str:
        """local | param | closure | global for a root name."""
        if name in self.nonlocal_decl:
            return "closure"
        if name in self.globals_decl:
            return "global"
        if name in self.params:
            return "param"
        if name in self.locals:
            return "local"
        scope = self.parent
        while scope is not None and scope.parent is not None:
            if name in scope.locals:
                return "closure"
            scope = scope.parent
        return "global"

    def lookup_type(self, name: str) -> str:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.var_types:
                return scope.var_types[name]
            scope = scope.parent
        return ""


class _Extractor:
    """Single-walk extraction of a :class:`ModuleSummary`."""

    def __init__(self, ms: ModuleSource, module_name: str):
        self.ms = ms
        self.module_name = module_name
        self.aliases = dict(ms.aliases)
        self._add_relative_aliases()
        self.summary = ModuleSummary(
            rel=ms.rel, module=module_name, aliases=self.aliases
        )

    def _add_relative_aliases(self) -> None:
        """Resolve ``from ..pkg import name`` against the module's package."""
        parts = self.module_name.split(".")
        for node in ast.walk(self.ms.tree):
            if not isinstance(node, ast.ImportFrom) or node.level == 0:
                continue
            base = parts[: len(parts) - node.level]
            if not base and node.level > len(parts):
                continue  # relative import escaping the analyzed root
            target = ".".join(base)
            if node.module:
                target = f"{target}.{node.module}" if target else node.module
            for a in node.names:
                local = a.asname or a.name
                self.aliases.setdefault(
                    local, f"{target}.{a.name}" if target else a.name
                )

    # -- scope discovery ------------------------------------------------

    def run(self) -> ModuleSummary:
        module_scope = _Scope(self.ms.tree, "<module>", "", None, self.aliases)
        scopes = [module_scope]
        self._discover(self.ms.tree, "", "", module_scope, scopes)
        for scope in scopes:
            self._extract_scope(scope)
        return self.summary

    def _discover(
        self,
        node: ast.AST,
        qual_prefix: str,
        cls_qual: str,
        parent_scope: _Scope,
        scopes: list[_Scope],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(
                    parent_scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = f"{parent_scope.qual}.<locals>.{child.name}"
                    parent_scope.nested_defs[child.name] = qual
                elif cls_qual:
                    qual = f"{cls_qual}.{child.name}"
                else:
                    qual = child.name
                scope = _Scope(child, qual, cls_qual, parent_scope, self.aliases)
                scopes.append(scope)
                if cls_qual and cls_qual in self.summary.classes:
                    self.summary.classes[cls_qual]["methods"][child.name] = qual
                self._discover(child, qual, "", scope, scopes)
            elif isinstance(child, ast.ClassDef):
                cqual = f"{cls_qual}.{child.name}" if cls_qual else child.name
                self.summary.classes[cqual] = {
                    "name": child.name,
                    "qual": cqual,
                    "line": child.lineno,
                    "bases": [
                        r for b in child.bases
                        if (r := resolve_name(b, self.aliases)) is not None
                    ],
                    "methods": {},
                    "init_ship": [],
                }
                # Class bodies are not independent closures: methods see
                # the scope *enclosing* the class, so thread parent_scope.
                self._discover(child, qual_prefix, cqual, parent_scope, scopes)
            elif not isinstance(child, ast.Lambda):
                self._discover(
                    child, qual_prefix, cls_qual, parent_scope, scopes
                )

    # -- per-scope extraction -------------------------------------------

    def _extract_scope(self, scope: _Scope) -> None:
        self._collect_bindings(scope)
        env = self._taint_fixpoint(scope)
        penv = self._param_fixpoint(scope)
        fn = FunctionSummary(
            qual=scope.qual,
            name=getattr(scope.node, "name", "<module>"),
            line=getattr(scope.node, "lineno", 1),
            cls=scope.cls_qual,
            params=list(scope.params),
            none_defaults=sorted(scope.none_defaults),
            has_yield=scope.has_yield,
            is_nested="<locals>" in scope.qual,
        )
        self._emit_calls(scope, env, penv, fn)
        self._emit_effects(scope, env, fn)
        self._emit_returns(scope, env, penv, fn)
        if scope.cls_qual and fn.name == "__init__":
            self._emit_init_ship(scope)
        self.summary.functions[scope.qual] = fn

    def _collect_bindings(self, scope: _Scope) -> None:
        """One pass: locals, assignments, calls, yields, var types."""
        set_atom = lambda node: {  # noqa: E731
            ("src", "set-order", node.lineno, "iteration over a set")
        }
        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                scope.locals.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                scope.locals.add(node.name)
            elif isinstance(node, ast.Global):
                scope.globals_decl |= set(node.names)
            elif isinstance(node, ast.Nonlocal):
                scope.nonlocal_decl |= set(node.names)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for a in node.names:
                    scope.locals.add((a.asname or a.name).split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                scope.locals.add(node.name)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                scope.has_yield = True
            elif isinstance(node, ast.Return):
                scope.returns.append(node.value)
            elif isinstance(node, ast.Call):
                if not self._is_source_call(node):
                    scope.call_index[id(node)] = len(scope.calls)
                    scope.calls.append(node)

            names: list[str] = []
            value: ast.AST | None = None
            extra: set[Taint] = set()
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    for leaf in _store_roots(t):
                        if isinstance(leaf, ast.Name):
                            names.append(leaf.id)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
                    ann = _annotation_type(node.annotation, self.aliases)
                    if ann:
                        scope.var_types.setdefault(node.target.id, ann)
                value = node.value
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
                value = node.value
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
                value = node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names = [
                    leaf.id for leaf in _store_roots(node.target)
                    if isinstance(leaf, ast.Name)
                ]
                value = node.iter
                if _SET_RULE._is_set_expr(node.iter):
                    extra = set_atom(node.iter)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                names = [
                    leaf.id for leaf in _store_roots(node.optional_vars)
                    if isinstance(leaf, ast.Name)
                ]
                value = node.context_expr
            elif isinstance(node, ast.comprehension):
                names = [
                    leaf.id for leaf in _store_roots(node.target)
                    if isinstance(leaf, ast.Name)
                ]
                scope.locals.update(names)
                value = node.iter
                if _SET_RULE._is_set_expr(node.iter):
                    extra = set_atom(node.iter)
            if names and (value is not None or extra):
                scope.assigns.append((names, value, extra))
                for n in names:
                    if value is not None:
                        scope.assign_map.setdefault(n, []).append(value)
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    ctor = resolve_name(node.value.func, self.aliases)
                    if ctor:
                        for n in names:
                            scope.var_types[n] = ctor

    # -- taint ----------------------------------------------------------

    def _is_source_call(self, node: ast.Call) -> Taint | None:
        resolved = resolve_name(node.func, self.aliases)
        if resolved is None:
            return None
        line = node.lineno
        if resolved in _CLOCKS:
            return ("src", "wall-clock", line, resolved)
        if resolved == "id":
            return ("src", "id", line, "id() is an address, not a value")
        if resolved.startswith("random.") and resolved.count(".") == 1:
            leaf = resolved.rsplit(".", 1)[-1]
            if leaf not in ("Random", "seed"):
                return ("src", "unseeded-rng", line, resolved)
        if resolved == "numpy.random.default_rng":
            unseeded = not node.args and not node.keywords or (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded:
                return ("src", "unseeded-rng", line, "default_rng()")
        elif resolved.startswith("numpy.random."):
            leaf = resolved.rsplit(".", 1)[-1]
            if leaf.islower():  # legacy global-state draw (rand, shuffle...)
                return ("src", "unseeded-rng", line, resolved)
        return None

    def _expr_taints(self, expr: ast.AST, scope: _Scope, env: dict) -> set:
        if isinstance(expr, (ast.Lambda, ast.Constant)):
            return set()
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Call):
            src = self._is_source_call(expr)
            if src is not None:
                return {src}
            resolved = resolve_name(expr.func, self.aliases)
            inner: set = set()
            for a in expr.args:
                inner |= self._expr_taints(a, scope, env)
            for kw in expr.keywords:
                inner |= self._expr_taints(kw.value, scope, env)
            if resolved == "sorted":
                return {t for t in inner if t[:2] != ("src", "set-order")}
            idx = scope.call_index.get(id(expr))
            if idx is None:
                return inner
            return {("call", idx, expr.lineno)}
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            out: set = set()
            for gen in expr.generators:
                out |= self._expr_taints(gen.iter, scope, env)
                if _SET_RULE._is_set_expr(gen.iter):
                    out.add(("src", "set-order", gen.iter.lineno,
                             "comprehension over a set"))
            for part in ast.iter_child_nodes(expr):
                if not isinstance(part, ast.comprehension):
                    out |= self._expr_taints(part, scope, env)
            return out
        out = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr) or isinstance(
                child, (ast.keyword, ast.Starred)
            ):
                out |= self._expr_taints(child, scope, env)
        return out

    def _taint_fixpoint(self, scope: _Scope) -> dict:
        env: dict[str, set] = {}
        for _ in range(10):
            changed = False
            for names, value, extra in scope.assigns:
                taints = set(extra)
                if value is not None:
                    taints |= self._expr_taints(value, scope, env)
                for n in names:
                    have = env.setdefault(n, set())
                    if not taints <= have:
                        have |= taints
                        changed = True
            if not changed:
                break
        return env

    # -- parameter flow -------------------------------------------------

    def _expr_params(self, expr: ast.AST, scope: _Scope, penv: dict) -> set:
        if isinstance(expr, ast.Name):
            if expr.id in scope.params:
                return {expr.id}
            return set(penv.get(expr.id, ()))
        if isinstance(expr, (ast.Call, ast.Lambda, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp, ast.Constant)):
            return set()
        out: set = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.keyword, ast.Starred)):
                out |= self._expr_params(child, scope, penv)
        return out

    def _param_fixpoint(self, scope: _Scope) -> dict:
        penv: dict[str, set] = {}
        for _ in range(10):
            changed = False
            for names, value, _extra in scope.assigns:
                if value is None:
                    continue
                params = self._expr_params(value, scope, penv)
                for n in names:
                    have = penv.setdefault(n, set())
                    if not params <= have:
                        have |= params
                        changed = True
            if not changed:
                break
        return penv

    # -- emission -------------------------------------------------------

    def _arg_param(self, arg: ast.AST, scope: _Scope, penv: dict) -> str | None:
        if not isinstance(arg, ast.Name):
            return None
        candidates = (
            {arg.id} if arg.id in scope.params else penv.get(arg.id, set())
        )
        return next(iter(candidates)) if len(candidates) == 1 else None

    def _receiver(self, func: ast.Attribute, scope: _Scope) -> str:
        """Dotted type of a method call's receiver ("" when unknown)."""
        base = func.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if not isinstance(base, ast.Name):
            return ""
        if base.id == "self" and scope.cls_qual:
            return f"~{scope.cls_qual}"
        # Only a direct `name.method(...)` gets the variable's type —
        # deeper chains (`a.b.method()`) would need field typing.
        if isinstance(func.value, ast.Name):
            return scope.lookup_type(func.value.id)
        return ""

    def _emit_calls(
        self, scope: _Scope, env: dict, penv: dict, fn: FunctionSummary
    ) -> None:
        for node in scope.calls:
            raw = dotted_name(node.func) or ""
            resolved = resolve_name(node.func, self.aliases) or ""
            method = ""
            recv = ""
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                recv = self._receiver(node.func, scope)
            recv_root = None
            if isinstance(node.func, ast.Attribute):
                base = _chain_root(node.func.value)
                if base is not None:
                    recv_root = [base, scope.classify(base)]
            slots: list[tuple[str, ast.AST]] = [
                (str(i), a) for i, a in enumerate(node.args)
            ] + [
                (f"kw:{kw.arg}", kw.value)
                for kw in node.keywords if kw.arg is not None
            ]
            none_slots, pargs, rargs = [], {}, {}
            targs: set = set()
            for slot, arg in slots:
                if isinstance(arg, ast.Constant) and arg.value is None:
                    none_slots.append(slot)
                p = self._arg_param(arg, scope, penv)
                if p is not None:
                    pargs[slot] = p
                root = _chain_root(arg)
                if root is not None:
                    rargs[slot] = [root, scope.classify(root)]
                targs |= self._expr_taints(arg, scope, env)
            atom = {
                "line": node.lineno,
                "col": node.col_offset,
                "raw": raw,
                "callee": resolved,
                "method": method,
                "recv": recv,
                "recv_root": recv_root,
                "nargs": len(node.args),
                "kwnames": sorted(
                    kw.arg for kw in node.keywords if kw.arg is not None
                ),
                "none": none_slots,
                "pargs": pargs,
                "rargs": rargs,
                "targs": taints_to_json(targs),
            }
            fn.calls.append(atom)
            self._maybe_rng_intro(node, resolved, scope, fn)
            self._maybe_host_task(node, raw, scope)
            if method in PHASE_GLOBAL_CALLS:
                fn.comm.append(
                    {"line": node.lineno, "what": f"call:{method}"}
                )

    def _maybe_rng_intro(
        self, node: ast.Call, resolved: str, scope: _Scope, fn: FunctionSummary
    ) -> None:
        if resolved not in ("numpy.random.default_rng", "random.Random"):
            return
        seed: ast.AST | None = node.args[0] if node.args else None
        if seed is None:
            for kw in node.keywords:
                if kw.arg == "seed":
                    seed = kw.value
        if isinstance(seed, ast.Name) and seed.id in scope.params:
            fn.rng.append({
                "line": node.lineno,
                "callee": resolved,
                "seed_param": seed.id,
            })

    def _maybe_host_task(
        self, node: ast.Call, raw: str, scope: _Scope
    ) -> None:
        if raw.split(".")[-1] != "HostTask":
            return
        fn_arg: ast.AST | None = node.args[1] if len(node.args) >= 2 else None
        payload: ast.AST | None = node.args[2] if len(node.args) >= 3 else None
        for kw in node.keywords:
            if kw.arg == "fn":
                fn_arg = kw.value
            elif kw.arg == "payload":
                payload = kw.value
        if isinstance(fn_arg, ast.Name):
            body, kind = fn_arg.id, "name"
        elif isinstance(fn_arg, ast.Lambda):
            body, kind = "<lambda>", "lambda"
        elif fn_arg is not None and dotted_name(fn_arg):
            body, kind = dotted_name(fn_arg) or "", "attr"
        else:
            body, kind = "", ""
        self.summary.host_tasks.append({
            "line": node.lineno,
            "col": node.col_offset,
            "enclosing": scope.qual,
            "fn": body,
            "fn_kind": kind,
            "payload": (
                None if payload is None else self._ship(payload, scope, 0, ())
            ),
            "payload_line": (
                payload.lineno if payload is not None else node.lineno
            ),
        })

    def _emit_effects(
        self, scope: _Scope, env: dict, fn: FunctionSummary
    ) -> None:
        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Attribute) and node.attr == "comm":
                parent = getattr(node, "_repro_parent", None)
                if not isinstance(parent, ast.Attribute):
                    fn.comm.append({"line": node.lineno, "what": "attr:comm"})
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                for leaf in _store_roots(target):
                    self._emit_write(leaf, value, scope, env, fn)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("send", "send_batch", "add")
            ):
                # A tainted value only *sinks* when it lands in state
                # that outlives the function: a `.add` into a local
                # scratch set is membership bookkeeping, not state.
                recv = _chain_root(node.func.value)
                if recv is not None and scope.classify(recv) == "local":
                    continue
                taints: set = set()
                for a in node.args:
                    taints |= self._expr_taints(a, scope, env)
                for kw in node.keywords:
                    taints |= self._expr_taints(kw.value, scope, env)
                if taints:
                    fn.sinks.append({
                        "line": node.lineno,
                        "op": node.func.attr,
                        "taints": taints_to_json(taints),
                    })
        fn.comm.sort(key=lambda c: (c["line"], c["what"]))

    def _emit_write(
        self,
        leaf: ast.AST,
        value: ast.AST | None,
        scope: _Scope,
        env: dict,
        fn: FunctionSummary,
    ) -> None:
        if isinstance(leaf, ast.Name):
            kind = scope.classify(leaf.id)
            if kind not in ("closure", "global"):
                return
            if kind == "global" and leaf.id not in scope.globals_decl:
                return  # plain Name store without `global` binds a local
            root = leaf.id
        elif isinstance(leaf, (ast.Subscript, ast.Attribute)):
            root = _chain_root(leaf)  # type: ignore[assignment]
            if root is None:
                return
            kind = scope.classify(root)
            if kind == "local":
                return
        else:
            return
        taints = (
            self._expr_taints(value, scope, env) if value is not None else set()
        )
        fn.writes.append({
            "line": leaf.lineno,
            "root": root,
            "kind": kind,
            "is_import": root in self.aliases,
            "taints": taints_to_json(taints),
        })

    def _emit_returns(
        self, scope: _Scope, env: dict, penv: dict, fn: FunctionSummary
    ) -> None:
        taints: set = set()
        params: set = set()
        ships: list[dict] = []
        for value in scope.returns:
            if value is None:
                continue
            taints |= self._expr_taints(value, scope, env)
            params |= self._expr_params(value, scope, penv)
            ships.append(self._ship(value, scope, 0, ()))
        fn.return_taints = taints_to_json(taints)
        fn.return_params = sorted(params)
        if len(ships) == 1:
            fn.return_ship = ships[0]
        elif ships:
            fn.return_ship = {"k": "any", "alts": ships}

    def _emit_init_ship(self, scope: _Scope) -> None:
        cls = self.summary.classes.get(scope.cls_qual)
        if cls is None:
            return
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                for leaf in _store_roots(target):
                    if (
                        isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                    ):
                        cls["init_ship"].append({
                            "attr": leaf.attr,
                            "line": node.lineno,
                            "ship": self._ship(node.value, scope, 0, ()),
                        })

    # -- shippability trees ---------------------------------------------

    def _ship(
        self,
        expr: ast.AST,
        scope: _Scope,
        depth: int,
        seen: tuple[str, ...],
    ) -> dict:
        """Symbolic value tree for the payload-shippability analysis."""
        if depth > 8:
            return {"k": "ok"}
        line = getattr(expr, "lineno", 0)
        if isinstance(expr, ast.Constant):
            return {"k": "ok"}
        if isinstance(expr, ast.Lambda):
            return {"k": "lambda", "line": line}
        if isinstance(expr, ast.GeneratorExp):
            return {"k": "gen", "line": line}
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return {
                "k": "items",
                "items": [
                    self._ship(e, scope, depth + 1, seen) for e in expr.elts
                ],
            }
        if isinstance(expr, ast.Dict):
            items = [
                self._ship(e, scope, depth + 1, seen)
                for e in (*expr.keys, *expr.values) if e is not None
            ]
            return {"k": "items", "items": items}
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return {"k": "ok"}  # built eagerly; element types coarse-ok
        if isinstance(expr, ast.Starred):
            return self._ship(expr.value, scope, depth + 1, seen)
        if isinstance(expr, ast.IfExp):
            return {
                "k": "any",
                "alts": [
                    self._ship(expr.body, scope, depth + 1, seen),
                    self._ship(expr.orelse, scope, depth + 1, seen),
                ],
            }
        if isinstance(expr, ast.Await):
            return self._ship(expr.value, scope, depth + 1, seen)
        if isinstance(expr, ast.Call):
            raw = dotted_name(expr.func) or ""
            return {
                "k": "call",
                "line": line,
                "raw": raw,
                "callee": resolve_name(expr.func, self.aliases) or "",
                "method": (
                    expr.func.attr
                    if isinstance(expr.func, ast.Attribute) else ""
                ),
                "recv": (
                    self._receiver(expr.func, scope)
                    if isinstance(expr.func, ast.Attribute) else ""
                ),
                "args": [
                    self._ship(a, scope, depth + 1, seen) for a in expr.args
                ] + [
                    self._ship(kw.value, scope, depth + 1, seen)
                    for kw in expr.keywords
                ],
            }
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr) or ""
            root = _chain_root(expr)
            return {
                "k": "attr",
                "line": line,
                "dotted": dotted,
                "resolved": resolve_name(expr, self.aliases) or "",
                "root_type": scope.lookup_type(root) if root else "",
            }
        if isinstance(expr, ast.Subscript):
            return self._ship(expr.value, scope, depth + 1, seen)
        if isinstance(expr, ast.Name):
            return self._name_ship(expr, scope, depth, seen)
        return {"k": "ok"}

    def _name_ship(
        self,
        expr: ast.Name,
        scope: _Scope,
        depth: int,
        seen: tuple[str, ...],
    ) -> dict:
        name = expr.id
        line = expr.lineno
        if name in seen:
            return {"k": "ok"}
        # A reference to a function defined in an enclosing function is
        # a closure-carrying nested function: never picklable.
        probe: _Scope | None = scope
        while probe is not None:
            if name in probe.nested_defs:
                return {"k": "nestedfn", "name": name, "line": line}
            if name in probe.params:
                return {"k": "ok"}
            if name in probe.assign_map:
                alts = [
                    self._ship(v, probe, depth + 1, seen + (name,))
                    for v in probe.assign_map[name][:4]
                ]
                if len(alts) == 1:
                    return alts[0]
                return {"k": "any", "alts": alts}
            if name in probe.locals:
                return {"k": "ok"}  # loop var / import / def: coarse-ok
            probe = probe.parent
        vtype = scope.lookup_type(name)
        return {
            "k": "ref",
            "name": self.aliases.get(name, name),
            "line": line,
            "root_type": vtype,
        }


def summarize_module(ms: ModuleSource, module_name: str) -> ModuleSummary:
    """Extract the cacheable whole-program summary of one parsed module."""
    return _Extractor(ms, module_name).run()
