"""The ``repro lint --deep`` driver.

One pass over the file set produces everything both lint layers need:

* **cache hit** (same SHA-256, same rule set) — the file is *not even
  parsed*; its recorded shallow findings, suppression tables, and
  module summary are replayed from the cache.
* **cache miss** — the file is parsed exactly once into a
  :class:`~repro.analysis.lint.base.ModuleSource`; the shallow rules
  and the summary extractor share that single AST.

The link phase then builds the :class:`~repro.analysis.ipa.program.
Program` over *all* summaries (cached and fresh alike) and runs the
deep rules — whole-program soundness with per-file incrementality.
Deep findings honour the same suppression comments as shallow ones.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from ..lint.base import (
    LintReport,
    LintRule,
    ModuleSource,
    check_module,
    finding_sort_key,
    Finding,
    parse_error_finding,
)
from .analyses import DEEP_RULES, DeepRule
from .cache import DeepCache
from .program import Program
from .summary import SUMMARY_VERSION, ModuleSummary, summarize_module

__all__ = ["run_deep_lint", "rules_key", "module_name"]

ENGINE_VERSION = 1


def rules_key(
    shallow: Iterable[LintRule], deep: Iterable[DeepRule]
) -> str:
    """Cache invalidation key: engine + summary versions + rule set."""
    doc = json.dumps([
        ENGINE_VERSION,
        SUMMARY_VERSION,
        sorted(r.name for r in shallow),
        sorted(r.name for r in deep),
    ])
    return hashlib.sha256(doc.encode()).hexdigest()


def module_name(root: Path, rel: str) -> str:
    """Dotted module name of ``rel`` under ``root``.

    When ``root`` is itself a package directory (has ``__init__.py``),
    the package path down from the topmost package is prepended — so
    ``runtime/comm.py`` under ``src/repro`` becomes
    ``repro.runtime.comm``, matching what absolute and relative imports
    inside the project resolve to.
    """
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts.pop()
    prefix: list[str] = []
    probe = root
    while (probe / "__init__.py").exists():
        prefix.insert(0, probe.name)
        probe = probe.parent
    return ".".join(prefix + parts) if (prefix or parts) else root.name


def _suppressed(table: dict, line: int, rule: str) -> bool:
    for rules in (table.get("file", ()), table.get("lines", {}).get(str(line), ())):
        if rule in rules or "all" in rules:
            return True
    return False


def run_deep_lint(
    files: Sequence[Path],
    root: Path,
    shallow_rules: Iterable[LintRule],
    cache_path: str | Path | None = None,
    deep_rules: Iterable[DeepRule] | None = None,
) -> LintReport:
    """Shallow + whole-program lint over ``files`` with one parse each."""
    shallow = list(shallow_rules)
    deep = list(DEEP_RULES) if deep_rules is None else list(deep_rules)
    cache = DeepCache.load(cache_path, rules_key(shallow, deep))
    report = LintReport(cache_hits=0, cache_misses=0)
    summaries: dict[str, ModuleSummary] = {}
    suppressions: dict[str, dict] = {}

    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        report.files_checked += 1
        try:
            text = path.read_text()
        except OSError as exc:
            report.findings.append(Finding(
                rule="parse-error", severity="error", path=rel,
                line=1, col=0, message=f"cannot read: {exc}",
            ))
            continue
        sha = hashlib.sha256(text.encode()).hexdigest()
        entry = cache.get(rel, sha)
        if entry is not None:
            report.cache_hits += 1
            report.findings.extend(
                Finding(**f) for f in entry["findings"]
            )
            report.suppressed += entry["suppressed"]
            suppressions[rel] = entry["suppressions"]
            if entry["summary"] is not None:
                summaries[rel] = ModuleSummary.from_dict(entry["summary"])
            continue
        report.cache_misses += 1
        try:
            module = ModuleSource(path, rel, text)
        except SyntaxError as exc:
            finding = parse_error_finding(path, exc)
            report.findings.append(finding)
            cache.put(rel, {
                "sha": sha,
                "findings": [finding.as_dict()],
                "suppressed": 0,
                "suppressions": {"file": [], "lines": {}},
                "summary": None,
            })
            continue
        local = LintReport()
        check_module(module, shallow, local)
        summary = summarize_module(module, module_name(root, rel))
        report.findings.extend(local.findings)
        report.suppressed += local.suppressed
        suppressions[rel] = module.suppression_table()
        summaries[rel] = summary
        cache.put(rel, {
            "sha": sha,
            "findings": [f.as_dict() for f in local.findings],
            "suppressed": local.suppressed,
            "suppressions": suppressions[rel],
            "summary": summary.to_dict(),
        })

    cache.prune({
        (p.relative_to(root).as_posix()
         if p.is_relative_to(root) else p.as_posix())
        for p in files
    })
    cache.save()

    program = Program(summaries)
    for rule in deep:
        for finding in rule.check(program):
            table = suppressions.get(finding.path, {})
            if _suppressed(table, finding.line, finding.rule):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort(key=finding_sort_key)
    return report
