"""The deep-lint incremental cache.

Whole-program findings depend on *transitive callees*, so caching the
findings per file would be unsound: an edit to ``helper.py`` can
change what ``phase.py`` is guilty of.  What **is** per-file is the
expensive part — parsing, the shallow rule pass, and summary
extraction.  The cache therefore stores, keyed by the file's relative
path and guarded by its SHA-256:

* the :class:`~repro.analysis.ipa.summary.ModuleSummary` (as JSON),
* the file's shallow findings and suppressed-count,
* its suppression tables (so cached files can still suppress deep
  findings without being re-read).

The link-and-analyze phase re-runs on every invocation over the full
summary set — it is pure Python over small dicts, no AST — which keeps
warm full-repo runs fast *and* sound.  A ``rules_key`` mismatch
(engine/summary version or rule set changed) discards the cache
wholesale.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["DeepCache"]

CACHE_VERSION = 1


class DeepCache:
    """On-disk map ``rel path -> {sha, summary, findings, ...}``."""

    def __init__(self, path: Path | None, rules_key: str):
        self.path = path
        self.rules_key = rules_key
        self.entries: dict[str, dict] = {}
        self.dirty = False

    @classmethod
    def load(cls, path: str | Path | None, rules_key: str) -> "DeepCache":
        cache = cls(Path(path) if path is not None else None, rules_key)
        if cache.path is None or not cache.path.exists():
            return cache
        try:
            doc = json.loads(cache.path.read_text())
        except (OSError, ValueError):
            return cache  # unreadable/corrupt cache == cold cache
        if (
            doc.get("version") != CACHE_VERSION
            or doc.get("rules_key") != rules_key
        ):
            cache.dirty = True  # rewrite with the current key on save
            return cache
        entries = doc.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
        return cache

    def get(self, rel: str, sha: str) -> dict | None:
        entry = self.entries.get(rel)
        if entry is not None and entry.get("sha") == sha:
            return entry
        return None

    def put(self, rel: str, entry: dict) -> None:
        self.entries[rel] = entry
        self.dirty = True

    def prune(self, live_rels: set[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        dead = [rel for rel in self.entries if rel not in live_rels]
        for rel in dead:
            del self.entries[rel]
            self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        doc = {
            "version": CACHE_VERSION,
            "rules_key": self.rules_key,
            "entries": self.entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a killed run never leaves a torn cache
        # (the loader treats unparsable JSON as cold anyway).
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            # repro-lint: disable-next-line=swallowed-error -- best-effort cleanup of the temp file after a failed cache write; the cache is an optimization, never load-bearing
            except OSError:
                pass
