"""The deep-lint incremental cache.

Whole-program findings depend on *transitive callees*, so caching the
findings per file would be unsound: an edit to ``helper.py`` can
change what ``phase.py`` is guilty of.  What **is** per-file is the
expensive part — parsing, the shallow rule pass, and summary
extraction.  The cache therefore stores, keyed by the file's relative
path and guarded by its SHA-256:

* the :class:`~repro.analysis.ipa.summary.ModuleSummary` (as JSON),
* the file's shallow findings and suppressed-count,
* its suppression tables (so cached files can still suppress deep
  findings without being re-read).

The link-and-analyze phase re-runs on every invocation over the full
summary set — it is pure Python over small dicts, no AST — which keeps
warm full-repo runs fast *and* sound.  A ``rules_key`` mismatch
(engine/summary version or rule set changed) discards the cache
wholesale.

Concurrency
-----------
Mutation campaigns (:mod:`repro.analysis.mutate`) and parallel CI legs
can point several processes at one cache file.  Reads are always safe:
:meth:`DeepCache.save` publishes with ``os.replace``, so a reader sees
either the old bytes or the new bytes, never a torn file.  Writes are
serialized by a pid-stamped advisory lock (``<cache>.lock``, created
``O_CREAT | O_EXCL``): a writer that loses the race simply *skips* its
save — the cache is an optimization, never load-bearing, and the
winner is persisting equally fresh data.  A lock whose recorded pid is
no longer alive is stolen, so a killed run cannot wedge every future
one; liveness is probed with ``os.kill(pid, 0)`` rather than lock-file
age, keeping this module free of wall-clock reads (the repo's own
``wall-clock`` lint rule bans them outside the cost model and benches).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["DeepCache"]

CACHE_VERSION = 1


class DeepCache:
    """On-disk map ``rel path -> {sha, summary, findings, ...}``."""

    def __init__(self, path: Path | None, rules_key: str):
        self.path = path
        self.rules_key = rules_key
        self.entries: dict[str, dict] = {}
        self.dirty = False

    @classmethod
    def load(cls, path: str | Path | None, rules_key: str) -> "DeepCache":
        cache = cls(Path(path) if path is not None else None, rules_key)
        if cache.path is None or not cache.path.exists():
            return cache
        try:
            doc = json.loads(cache.path.read_text())
        except (OSError, ValueError):
            return cache  # unreadable/corrupt cache == cold cache
        if (
            doc.get("version") != CACHE_VERSION
            or doc.get("rules_key") != rules_key
        ):
            cache.dirty = True  # rewrite with the current key on save
            return cache
        entries = doc.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
        return cache

    def get(self, rel: str, sha: str) -> dict | None:
        entry = self.entries.get(rel)
        if entry is not None and entry.get("sha") == sha:
            return entry
        return None

    def put(self, rel: str, entry: dict) -> None:
        self.entries[rel] = entry
        self.dirty = True

    def prune(self, live_rels: set[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        dead = [rel for rel in self.entries if rel not in live_rels]
        for rel in dead:
            del self.entries[rel]
            self.dirty = True

    @property
    def lock_path(self) -> Path:
        assert self.path is not None
        return self.path.with_name(self.path.name + ".lock")

    def _acquire_lock(self) -> bool:
        """Take the advisory write lock, stealing it from dead holders.

        Returns False when a *live* process holds it — the caller skips
        its save (the holder is persisting equally fresh data).
        """
        for _attempt in range(2):  # second pass retries after a steal
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                if not self._holder_alive():
                    try:
                        os.unlink(self.lock_path)
                    # repro-lint: disable-next-line=swallowed-error -- the racing steal lost; the next loop pass re-examines the lock
                    except OSError:
                        pass
                    continue
                return False
            except OSError:
                return False  # unwritable directory: skip the save
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            return True
        return False

    def _holder_alive(self) -> bool:
        """Is the pid recorded in the lock file a live process?"""
        try:
            pid = int(self.lock_path.read_text().strip())
        except (OSError, ValueError):
            return False  # vanished or garbage: treat as stale
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True  # alive, owned by someone else
        except OSError:
            return False
        return True

    def _release_lock(self) -> None:
        try:
            os.unlink(self.lock_path)
        # repro-lint: disable-next-line=swallowed-error -- releasing a lock that a stale-steal already removed must not mask the completed save
        except OSError:
            pass

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        doc = {
            "version": CACHE_VERSION,
            "rules_key": self.rules_key,
            "entries": self.entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return  # nowhere to persist; stay in-memory only
        if not self._acquire_lock():
            return  # a live writer is already persisting fresh data
        # Write-then-rename so a killed run never leaves a torn cache
        # (the loader treats unparsable JSON as cold anyway).
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent),
                prefix=self.path.name,
                suffix=".tmp",
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.path)
            tmp = None
            self.dirty = False
        # repro-lint: disable-next-line=swallowed-error -- best-effort persistence; a failed write leaves the previous cache intact
        except OSError:
            pass
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                # repro-lint: disable-next-line=swallowed-error -- best-effort cleanup of the temp file after a failed cache write; the cache is an optimization, never load-bearing
                except OSError:
                    pass
            self._release_lock()
