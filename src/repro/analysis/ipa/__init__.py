"""Whole-program interprocedural analysis (``repro lint --deep``).

The per-module lint (:mod:`repro.analysis.lint`) and the per-phase
contract extractor (:mod:`repro.analysis.contracts`) both stop at
module (or call-closure-within-module) boundaries.  This package
analyzes the *whole program*:

* :mod:`~repro.analysis.ipa.summary` — one cacheable
  :class:`ModuleSummary` per file: symbols, classes, alias tables,
  call atoms with receiver typing, local taint dataflow, payload
  shippability trees, and ``HostTask`` registrations.
* :mod:`~repro.analysis.ipa.program` — links summaries into a
  project-wide symbol table and call graph (module-level name
  resolution plus method dispatch on statically-typed receivers such
  as ``Communicator``, ``CommLedger``, ``LedgerHostView``).
* :mod:`~repro.analysis.ipa.analyses` — the interprocedural passes:
  determinism taint, payload shippability, and the deep re-hosts of
  the three evasion-prone shallow rules (``comm-in-task``,
  ``unseeded-rng``, ``unshippable-task-capture``), each reporting a
  call-chain witness naming every hop.
* :mod:`~repro.analysis.ipa.cache` — the per-file SHA-256-keyed
  incremental cache that keeps warm full-repo runs fast.
* :mod:`~repro.analysis.ipa.engine` — the driver ``run_lint(...,
  deep=True)`` delegates to.

See the "Whole-program analysis" section of ``docs/ANALYSIS.md``.
"""

from .analyses import DEEP_RULES, all_deep_rules
from .cache import DeepCache
from .engine import run_deep_lint
from .program import Program
from .summary import ModuleSummary, summarize_module

__all__ = [
    "DEEP_RULES",
    "DeepCache",
    "ModuleSummary",
    "Program",
    "all_deep_rules",
    "run_deep_lint",
    "summarize_module",
]
