"""Linking module summaries into a whole-program model.

:class:`Program` owns the project-wide symbol table and resolves call
atoms (see :mod:`~repro.analysis.ipa.summary`) to their target
function summaries:

* **module-level names** — ``helper()``, ``pkg.mod.fn()``, and
  imported names, through each module's alias table (absolute and
  relative imports both resolve to dotted module paths);
* **nested functions** — a bare name is first looked up in the caller's
  enclosing-function chain (``f.<locals>.g``);
* **constructors** — a call to a known class resolves to its
  ``__init__`` (argument slots shift past ``self``);
* **method dispatch on typed receivers** — ``x.m(...)`` dispatches when
  ``x``'s type is statically known (parameter annotation, ``self``, or
  a local constructor assignment), following base classes.  This reuses
  the same philosophy as the contract extractor's ``sync_round``
  dispatch hints: resolve what the runtime's known types make
  unambiguous, stay silent otherwise.

Resolution is deliberately partial — an unresolved call is simply not
an edge.  Every analysis built on top over-approximates *within*
resolved edges and never guesses across unresolved ones, which keeps
deep findings explainable: each one carries a concrete call chain.
"""

from __future__ import annotations

from typing import Iterator

from .summary import FunctionSummary, ModuleSummary

__all__ = ["Program", "Target"]

#: Runtime types whose instances must never be shipped to (or used
#: from) a forked worker: they hold the parent process's sockets,
#: ledgers, pools, or locks.
COMM_TYPE_LEAFS = {
    "Communicator", "CommLedger", "LedgerHostView", "DirectHostView",
    "Executor", "SerialExecutor", "ParallelExecutor", "ProcessExecutor",
    "ThreadPoolExecutor", "ProcessPoolExecutor", "Pool",
}


class Target:
    """One resolved callee: a function summary plus its home module."""

    __slots__ = ("module", "fn", "kind")

    def __init__(self, module: ModuleSummary, fn: FunctionSummary, kind: str):
        self.module = module
        self.fn = fn
        self.kind = kind  # "func" | "init"

    @property
    def key(self) -> tuple[str, str]:
        return (self.module.rel, self.fn.qual)

    def label(self) -> str:
        return f"{self.module.module}.{self.fn.qual}"


class Program:
    """The linked whole-program view over a set of module summaries."""

    def __init__(self, modules: dict[str, ModuleSummary]):
        #: rel path -> summary
        self.modules = modules
        #: dotted name -> ("func" | "class", ModuleSummary, qual)
        self.symbols: dict[str, tuple[str, ModuleSummary, str]] = {}
        for msum in modules.values():
            for qual, fn in msum.functions.items():
                if qual != "<module>" and "." not in qual:
                    self.symbols[f"{msum.module}.{qual}"] = (
                        "func", msum, qual,
                    )
            for cqual, cls in msum.classes.items():
                self.symbols[f"{msum.module}.{cqual}"] = ("class", msum, cqual)
                for mname, mqual in cls["methods"].items():
                    if mqual in msum.functions:
                        self.symbols[f"{msum.module}.{cqual}.{mname}"] = (
                            "func", msum, mqual,
                        )

    # -- functions ------------------------------------------------------

    def functions(self) -> Iterator[tuple[ModuleSummary, FunctionSummary]]:
        for msum in self.modules.values():
            for fn in msum.functions.values():
                yield msum, fn

    def resolve_local_name(
        self, msum: ModuleSummary, caller_qual: str, name: str
    ) -> list[Target]:
        """A bare name in ``caller_qual``'s scope: nested defs outward,
        then module-level functions, classes, and imported symbols."""
        # Enclosing-function chain: f.<locals>.g sees h as
        # f.<locals>.g.<locals>.h, then f.<locals>.h, then h.
        prefix = caller_qual
        while True:
            candidate = (
                f"{prefix}.<locals>.{name}" if prefix != "<module>" else name
            )
            fn = msum.functions.get(candidate)
            if fn is not None and candidate != caller_qual:
                return [Target(msum, fn, "func")]
            if prefix == "<module>" or "<locals>" not in prefix:
                break
            prefix = prefix.rsplit(".<locals>.", 1)[0]
        fn = msum.functions.get(name)
        if fn is not None:
            return [Target(msum, fn, "func")]
        if name in msum.classes:
            return self._class_init(msum, name)
        resolved = msum.aliases.get(name)
        if resolved is not None:
            return self._resolve_symbol(resolved)
        return []

    def _resolve_symbol(self, dotted: str) -> list[Target]:
        entry = self.symbols.get(dotted)
        if entry is None:
            return []
        kind, msum, qual = entry
        if kind == "func":
            return [Target(msum, msum.functions[qual], "func")]
        return self._class_init(msum, qual)

    def _class_init(self, msum: ModuleSummary, cqual: str) -> list[Target]:
        cls = self.resolve_class(msum, f"~{cqual}")
        if cls is None:
            return []
        target = self.find_method(cls[0], cls[1], "__init__")
        if target is None:
            return []
        return [Target(target.module, target.fn, "init")]

    # -- classes --------------------------------------------------------

    def resolve_class(
        self, msum: ModuleSummary, ref: str
    ) -> tuple[ModuleSummary, dict] | None:
        """A class from a receiver-type reference.

        ``~Qual`` names a class in ``msum`` itself (the ``self``
        encoding); a dotted name goes through the symbol table; a bare
        name tries ``msum`` first, then the alias table.
        """
        if not ref:
            return None
        if ref.startswith("~"):
            cls = msum.classes.get(ref[1:])
            return (msum, cls) if cls is not None else None
        if ref in msum.classes:
            return (msum, msum.classes[ref])
        dotted = msum.aliases.get(ref, ref)
        entry = self.symbols.get(dotted)
        if entry is not None and entry[0] == "class":
            _, owner, cqual = entry
            return (owner, owner.classes[cqual])
        return None

    def find_method(
        self,
        msum: ModuleSummary,
        cls: dict,
        method: str,
        _depth: int = 0,
    ) -> Target | None:
        """Method lookup through the class and its resolvable bases."""
        qual = cls["methods"].get(method)
        if qual is not None and qual in msum.functions:
            return Target(msum, msum.functions[qual], "func")
        if _depth >= 5:
            return None
        for base in cls["bases"]:
            entry = self.symbols.get(base)
            if entry is None or entry[0] != "class":
                continue
            _, owner, cqual = entry
            found = self.find_method(
                owner, owner.classes[cqual], method, _depth + 1
            )
            if found is not None:
                return found
        return None

    # -- call atoms -----------------------------------------------------

    def resolve_call(
        self, msum: ModuleSummary, caller_qual: str, atom: dict
    ) -> list[Target]:
        """Targets of one call atom (empty when unresolvable)."""
        if atom["recv"]:
            cls = self.resolve_class(msum, atom["recv"])
            if cls is not None:
                found = self.find_method(cls[0], cls[1], atom["method"])
                if found is None:
                    return []
                # Bound method: the call site's argument slots are
                # shifted one past `self` (see bind_param).
                return [Target(found.module, found.fn, "method")]
            # The receiver type names something we have no class for
            # (an external type): no edge.
            return []
        raw = atom["raw"]
        if not raw:
            return []
        if "." not in raw:
            return self.resolve_local_name(msum, caller_qual, raw)
        if atom["callee"]:
            return self._resolve_symbol(atom["callee"])
        return []

    def callees(
        self, msum: ModuleSummary, fn: FunctionSummary
    ) -> Iterator[tuple[dict, Target]]:
        """(call atom, resolved target) pairs for one function."""
        for atom in fn.calls:
            for target in self.resolve_call(msum, fn.qual, atom):
                yield atom, target

    # -- HostTask bodies ------------------------------------------------

    def resolve_body(
        self, msum: ModuleSummary, task: dict
    ) -> Target | None:
        """The function summary registered as a HostTask's body."""
        if task["fn_kind"] == "name":
            targets = self.resolve_local_name(
                msum, task["enclosing"], task["fn"]
            )
            return targets[0] if targets else None
        if task["fn_kind"] == "attr" and "." in task["fn"]:
            resolved = msum.aliases.get(
                task["fn"].split(".", 1)[0], task["fn"].split(".", 1)[0]
            )
            rest = task["fn"].split(".", 1)[1]
            targets = self._resolve_symbol(f"{resolved}.{rest}")
            return targets[0] if targets else None
        return None

    def host_tasks(self) -> Iterator[tuple[ModuleSummary, dict]]:
        for msum in self.modules.values():
            for task in msum.host_tasks:
                yield msum, task

    # -- argument binding -----------------------------------------------

    @staticmethod
    def bind_param(atom: dict, target: Target, param: str) -> tuple[str, str]:
        """How a call atom binds ``param`` of its target.

        Returns ``(kind, detail)`` with kind one of ``"omitted"``,
        ``"none"`` (literal ``None``), ``"param"`` (detail = the
        caller's parameter forwarded into the slot), ``"receiver"``
        (``self`` of a bound-method call), or ``"expr"``.
        """
        params = target.fn.params
        if param not in params:
            return ("expr", "")
        idx = params.index(param)
        if target.kind in ("init", "method"):
            if param == "self":
                return ("receiver", "")
            idx -= 1  # the call site does not pass `self`
        slot = None
        if 0 <= idx < atom["nargs"]:
            slot = str(idx)
        elif param in atom["kwnames"]:
            slot = f"kw:{param}"
        if slot is None:
            return ("omitted", "")
        if slot in atom["none"]:
            return ("none", "")
        if slot in atom["pargs"]:
            return ("param", atom["pargs"][slot])
        return ("expr", "")
