"""Static and dynamic enforcement of the reproduction's determinism contract.

The headline guarantee of the runtime — ``ParallelExecutor`` is
bit-identical to ``SerialExecutor``, partitions and every simulated
counter alike, even under injected fault plans — rests on three
conventions that ordinary tests cannot see being broken:

1. a host task touches only its own host's state, and every inter-host
   byte flows through a :class:`~repro.runtime.comm.CommLedger` merged
   at a phase barrier;
2. every payload that crosses hosts is charged through the
   ``payload_nbytes`` accounting path;
3. all randomness comes from seeded per-(host, op) generator streams,
   and no partitioning decision reads a wall clock or an unordered
   container's iteration order.

This package enforces the contract mechanically:

* :mod:`repro.analysis.lint` — an AST lint framework with pluggable
  SPMD-safety checkers, exposed as the ``repro lint`` CLI subcommand;
* :mod:`repro.analysis.isolation` — an opt-in dynamic race detector
  that tracks (host, phase, op-index, attribute) accesses during
  ``ParallelExecutor`` runs and raises :class:`IsolationViolation` on
  any cross-host access outside the sanctioned barrier-merge path;
* :mod:`repro.analysis.contracts` — declarative phase-communication
  contracts with a static extraction diff (``repro contracts``) and the
  opt-in runtime sanitizer :class:`CommSan`.

See ``docs/ANALYSIS.md`` for the contract, each rule's rationale, and
the suppression syntax.
"""

from .isolation import IsolationMonitor, IsolationViolation

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "all_rules",
    "run_lint",
    "IsolationMonitor",
    "IsolationViolation",
    "CommSan",
    "check_contracts",
    "ContractViolation",
    "ContractViolationError",
    "PhaseContract",
    "ContractContext",
]

_LINT_EXPORTS = {"Finding", "LintReport", "LintRule", "all_rules", "run_lint"}

_CONTRACT_EXPORTS = {
    "CommSan",
    "check_contracts",
    "ContractViolation",
    "ContractViolationError",
    "PhaseContract",
    "ContractContext",
}


def __getattr__(name: str):
    # The isolation hooks make every `import repro` touch this package;
    # loading the AST lint framework and the contract verifiers is
    # deferred until something actually asks for them.
    if name in _LINT_EXPORTS:
        from . import lint

        return getattr(lint, name)
    if name in _CONTRACT_EXPORTS:
        from . import contracts

        return getattr(contracts, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
