"""CommSan: the runtime phase-communication sanitizer.

An opt-in observer for :class:`~repro.runtime.comm.Communicator` that
audits every finished phase against its declared
:class:`~repro.analysis.contracts.model.PhaseContract` and against the
ledger's conservation laws.  Where the static extractor
(:mod:`repro.analysis.contracts.extract`) proves properties of the
*code*, CommSan checks the *run*: a send on an undeclared or inactive
tag, a topology breach, a collective-round count that disagrees with
the spec, bytes that appear in the accounting without a matching
``send``/``merge_ledger`` (or vice versa), queue entries that bypass
``send``/``recv_all``, and fault-injector retries that are charged more
or less than exactly once.

Attach one ``CommSan`` per run:

* ``CuSP(..., sanitizer=True)`` (or ``sanitizer=CommSan(...)``) wires it
  through :class:`~repro.runtime.cluster.SimulatedCluster`, which calls
  :meth:`CommSan.begin_phase` / :meth:`CommSan.end_phase` around every
  phase;
* the first violation of a phase raises
  :class:`~repro.analysis.contracts.model.ContractViolationError` at
  the phase barrier, naming the (phase, host, op) plus a fix hint; all
  violations also accumulate on :attr:`CommSan.violations` for suites
  that assert emptiness.

Phases that abort (host crash mid-phase) are checked only for the
invariants a truncated phase must still satisfy — op admission,
topology, and byte/queue conservation — not for round counts, drains,
or retry totals, which a replayed attempt legitimately cuts short.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...runtime.faults import retry_event_channels
from .model import (
    ContractContext,
    ContractSet,
    ContractViolation,
    ContractViolationError,
    PhaseContract,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ...runtime.comm import CommLedger, Communicator
    from ...runtime.stats import PhaseStats

__all__ = ["CommSan"]


class CommSan:
    """Runtime differential checker for one run's phase communication.

    Implements the :class:`~repro.runtime.comm.CommObserver` protocol;
    :class:`~repro.runtime.cluster.SimulatedCluster` installs it on each
    phase's fresh communicator.  Mirrors the byte accounting through the
    same operations the communicator itself performs, so a clean run
    compares exactly (no tolerances) and any third party touching the
    matrices or queues directly shows up as a conservation violation.
    """

    def __init__(
        self,
        contracts: ContractSet | None = None,
        context: ContractContext | None = None,
    ) -> None:
        if contracts is None:
            from repro.core.contracts import PHASE_CONTRACTS

            contracts = PHASE_CONTRACTS
        self.contracts = contracts
        #: The run configuration used to evaluate conditional clauses and
        #: expected round counts; ``CuSP.partition`` assigns it, manual
        #: harnesses may leave it ``None`` (counts then go unchecked).
        self.context: ContractContext | None = context
        #: Every violation observed so far, across phases (cumulative).
        self.violations: list[ContractViolation] = []
        self.phases_checked: int = 0
        self.ops_observed: int = 0
        self._reset_phase_state(0)

    # -- observer state ------------------------------------------------

    def _reset_phase_state(self, num_hosts: int) -> None:
        self._sends: dict[tuple[int, int, str], int] = {}
        self._drained: dict[tuple[int, str], int] = {}
        self._observed = np.zeros((num_hosts, num_hosts), dtype=np.float64)
        self._event_mark = 0

    def on_send(self, src: int, dst: int, tag: str, nbytes: int) -> None:
        self.ops_observed += 1
        key = (src, dst, tag)
        self._sends[key] = self._sends.get(key, 0) + 1
        if src != dst:  # self-delivery is free, exactly as in Communicator
            self._observed[src, dst] += nbytes

    def on_merge(self, ledger: "CommLedger") -> None:
        self._observed[ledger.host, :] += ledger.sent_bytes
        for dst, tag, _payload in ledger.queued:
            self.ops_observed += 1
            key = (ledger.host, dst, tag)
            self._sends[key] = self._sends.get(key, 0) + 1

    def on_recv(self, dst: int, tag: str, count: int) -> None:
        key = (dst, tag)
        self._drained[key] = self._drained.get(key, 0) + count

    # -- phase lifecycle ----------------------------------------------

    def begin_phase(self, stats: "PhaseStats") -> None:
        comm = stats.comm
        self._reset_phase_state(comm.num_hosts)
        if comm.injector is not None:
            self._event_mark = len(comm.injector.events)
        comm.observer = self

    def end_phase(self, stats: "PhaseStats", raise_now: bool = True) -> None:
        """Audit the finished phase; raise on the first violation.

        Called at the phase barrier with ``raise_now=False`` when the
        phase is already unwinding an exception (the original failure
        must propagate; violations still accumulate).
        """
        comm = stats.comm
        comm.observer = None
        contract = self.contracts.get(stats.name)
        new: list[ContractViolation] = []
        if contract is not None:
            self._check_p2p_admission(stats, comm, contract, new)
            self._check_collectives(stats, comm, contract, new)
        self._check_queue_conservation(stats, comm, new)
        if contract is not None and not stats.failed:
            self._check_drains(stats, comm, contract, new)
        self._check_byte_conservation(stats, comm, new)
        if comm.injector is not None and not stats.failed:
            self._check_retry_conservation(stats, comm, new)
        self.phases_checked += 1
        self.violations.extend(new)
        self._reset_phase_state(0)
        if new and raise_now:
            raise ContractViolationError(new[0])

    # -- individual checks --------------------------------------------

    def _check_p2p_admission(
        self,
        stats: "PhaseStats",
        comm: "Communicator",
        contract: PhaseContract,
        out: list[ContractViolation],
    ) -> None:
        declared = ", ".join(sorted(repr(t) for t in contract.p2p_tags())) or "none"
        for src, dst, tag in sorted(self._sends):
            spec = contract.find_p2p(tag)
            op = f"p2p tag {tag!r}"
            if spec is None:
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=src,
                        op=op,
                        message=(
                            f"sent {self._sends[(src, dst, tag)]} message(s) to "
                            f"host {dst} on a tag the contract does not declare "
                            f"(declared tags: {declared}); declare an OpSpec in "
                            "repro.core.contracts or remove the send"
                        ),
                    )
                )
            elif not spec.active(self.context):
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=src,
                        op=op,
                        message=(
                            f"sent to host {dst}, but the clause is inactive "
                            f"under this run's configuration ({self.context}); "
                            "the phase should have elided this exchange"
                        ),
                    )
                )
            elif not spec.allows_pair(src, dst, comm.num_hosts):
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=src,
                        op=op,
                        message=(
                            f"sent to host {dst}, outside the declared "
                            f"{spec.topology!r} topology"
                        ),
                    )
                )

    def _check_collectives(
        self,
        stats: "PhaseStats",
        comm: "Communicator",
        contract: PhaseContract,
        out: list[ContractViolation],
    ) -> None:
        kind_counts: dict[str, int] = {}
        for kind, _charged in comm.collective_events:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        for kind in sorted(kind_counts):
            active = [
                s for s in contract.collective_specs(kind) if s.active(self.context)
            ]
            if not active:
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=None,
                        op=kind,
                        message=(
                            f"observed {kind_counts[kind]} {kind} event(s), but "
                            "the contract declares no active clause of this "
                            "kind; declare an OpSpec in repro.core.contracts "
                            "or remove the collective"
                        ),
                    )
                )
        if comm.barriers > 0 and not any(
            s.active(self.context) for s in contract.collective_specs("barrier")
        ):
            out.append(
                ContractViolation(
                    phase=stats.name,
                    host=None,
                    op="barrier",
                    message=(
                        f"observed {comm.barriers} explicit barrier(s), but the "
                        "contract declares none (the phase-end merge is the "
                        "only sanctioned synchronization point)"
                    ),
                )
            )
        if self.context is None or stats.failed:
            return  # round counts are configuration functions; can't check
        for kind in sorted(contract.collective_kinds()):
            if kind == "barrier":
                continue
            active = [
                s for s in contract.collective_specs(kind) if s.active(self.context)
            ]
            if not active:
                continue
            expected_each = [s.expected_rounds(self.context) for s in active]
            if any(e is None for e in expected_each):
                continue  # at least one clause leaves the count unconstrained
            expected = sum(e for e in expected_each if e is not None)
            observed = kind_counts.get(kind, 0)
            if observed != expected:
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=None,
                        op=kind,
                        message=(
                            f"expected {expected} {kind} round(s) under this "
                            f"run's configuration, observed {observed}"
                        ),
                    )
                )

    def _check_queue_conservation(
        self,
        stats: "PhaseStats",
        comm: "Communicator",
        out: list[ContractViolation],
    ) -> None:
        enqueued: dict[tuple[int, str], int] = {}
        for (_src, dst, tag), count in self._sends.items():
            key = (dst, tag)
            enqueued[key] = enqueued.get(key, 0) + count
        for dst, tag in sorted(enqueued):
            sent = enqueued[(dst, tag)]
            drained = self._drained.get((dst, tag), 0)
            pending = comm.pending(dst, tag)
            if sent != drained + pending:
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=dst,
                        op=f"p2p tag {tag!r}",
                        message=(
                            f"{sent} message(s) enqueued but {drained} drained "
                            f"+ {pending} pending; a queue was mutated outside "
                            "Communicator.send/recv_all"
                        ),
                    )
                )

    def _check_drains(
        self,
        stats: "PhaseStats",
        comm: "Communicator",
        contract: PhaseContract,
        out: list[ContractViolation],
    ) -> None:
        for spec in contract.ops:
            if spec.kind != "p2p" or not spec.drained or not spec.active(self.context):
                continue
            assert spec.tag is not None  # p2p clauses always carry a tag
            for dst in range(comm.num_hosts):
                pending = comm.pending(dst, spec.tag)
                if pending:
                    out.append(
                        ContractViolation(
                            phase=stats.name,
                            host=dst,
                            op=f"p2p tag {spec.tag!r}",
                            message=(
                                f"{pending} message(s) left undrained at the "
                                "phase barrier, but the contract declares this "
                                "tag drained=True"
                            ),
                        )
                    )

    def _check_byte_conservation(
        self,
        stats: "PhaseStats",
        comm: "Communicator",
        out: list[ContractViolation],
    ) -> None:
        if self._observed.shape != comm.sent_bytes.shape:
            shape: Any = comm.sent_bytes.shape
            out.append(
                ContractViolation(
                    phase=stats.name,
                    host=None,
                    op="byte accounting",
                    message=f"communicator host count changed mid-phase ({shape})",
                )
            )
            return
        if np.array_equal(self._observed, comm.sent_bytes):
            return
        mismatches = np.argwhere(self._observed != comm.sent_bytes)
        src, dst = (int(x) for x in mismatches[0])
        out.append(
            ContractViolation(
                phase=stats.name,
                host=src,
                op="byte accounting",
                message=(
                    f"channel {src}->{dst}: observed {self._observed[src, dst]:.0f} "
                    f"byte(s) through send/merge_ledger but the ledger records "
                    f"{comm.sent_bytes[src, dst]:.0f}; accounting was mutated "
                    "outside Communicator.send/merge_ledger"
                ),
            )
        )

    def _check_retry_conservation(
        self,
        stats: "PhaseStats",
        comm: "Communicator",
        out: list[ContractViolation],
    ) -> None:
        injector = comm.injector
        assert injector is not None
        events = injector.events[self._event_mark :]
        expected = retry_event_channels(events)
        charged: dict[tuple[int, int], int] = {}
        for src, dst in np.argwhere(comm.retry_messages > 0):
            charged[(int(src), int(dst))] = int(round(comm.retry_messages[src, dst]))
        for key in sorted(set(expected) | set(charged)):
            want = expected.get(key, 0)
            got = charged.get(key, 0)
            if want != got:
                src, dst = key
                out.append(
                    ContractViolation(
                        phase=stats.name,
                        host=src,
                        op="retry transport",
                        message=(
                            f"channel {src}->{dst}: fault injector recorded "
                            f"{want} retry event(s) but {got} were charged; "
                            "retries must be charged exactly once"
                        ),
                    )
                )
