"""Phase-communication contracts: specs, static extraction, and CommSan.

The contract *language* lives in :mod:`.model`; the five CuSP phase
declarations live with the phase code in :mod:`repro.core.contracts`.
The two verifiers — static extraction (:func:`check_contracts`) and the
runtime sanitizer (:class:`CommSan`) — are imported lazily so that
``repro.runtime`` modules can be imported by the sanitizer without a
cycle and so that plain model users never pay for numpy/AST machinery.
"""

from .model import (
    OP_KINDS,
    TOPOLOGIES,
    ContractContext,
    ContractSet,
    ContractViolation,
    ContractViolationError,
    OpSpec,
    PhaseContract,
)

__all__ = [
    "OP_KINDS",
    "TOPOLOGIES",
    "ContractContext",
    "ContractSet",
    "ContractViolation",
    "ContractViolationError",
    "OpSpec",
    "PhaseContract",
    "CommSan",
    "check_contracts",
    "extract_phase_ops",
    "ContractReport",
    "ContractFinding",
    "ExtractedOp",
]

_EXTRACT_EXPORTS = {
    "check_contracts",
    "extract_phase_ops",
    "ContractReport",
    "ContractFinding",
    "ExtractedOp",
}


def __getattr__(name: str):
    if name in _EXTRACT_EXPORTS:
        from . import extract

        return getattr(extract, name)
    if name == "CommSan":
        from .sanitize import CommSan

        return CommSan
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
