"""Static extraction: which comm ops can a phase's code emit?

For every :class:`~repro.analysis.contracts.model.PhaseContract` this
pass parses the phase's declared source modules (reusing the lint
framework's :class:`~repro.analysis.lint.base.ModuleSource`), walks the
phase's entry functions plus every local helper they reference — nested
``HostTask`` bodies included — and derives the set of communication
operations the code can perform: tagged point-to-point sends, queue
drains, collectives, and barriers.

Two dataflow refinements keep the extraction exact rather than merely
syntactic:

* ``state.sync_round(comm, blocking=...)`` is a *dispatch point*: the
  blocking constants observed at the phase's call sites become a hint
  for scanning the ``sync_round`` implementations in the contract's
  rule/state modules, so ``comm.allreduce_sum(..., blocking=blocking)``
  resolves to the async collective the phase actually performs and the
  ``if blocking: comm.barrier()`` branch is recognized as unreachable.
* Every *other* function in the dispatched modules is scanned with no
  hint — communication smuggled into rule code is still attributed to
  the phase that dispatches into it.

The diff against the contract flags, as errors, ops the contract does
not declare (and sends whose tag is not a compile-time constant), and,
as warnings, contract clauses no code path can exercise (dead
contract).  :func:`check_contracts` drives the whole pass and returns a
:class:`ContractReport`; the ``repro contracts`` CLI subcommand is a
thin wrapper around it.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..lint.base import ModuleSource
from .model import ContractSet, OpSpec, PhaseContract

__all__ = [
    "ExtractedOp",
    "ContractFinding",
    "ContractReport",
    "extract_phase_ops",
    "check_contracts",
    "constant_str",
    "keyword_arg",
    "is_nested",
    "mark_visited",
    "call_closure",
]

ERROR = "error"
WARNING = "warning"

#: Communicator collectives and the event kind each records.
_FIXED_COLLECTIVES = {"allreduce_max": "allreduce", "allgather": "allgather"}


@dataclass(frozen=True)
class ExtractedOp:
    """One comm operation the scanned code can emit.

    ``kind`` extends the contract-op kinds with ``"recv"`` (a
    ``recv_all``/``recv_all_batch`` drain, used for dead-drain
    detection) and ``"allreduce-any"`` (an allreduce whose blocking mode
    could not be resolved — it matches both blocking and async clauses).
    ``batch`` marks columnar-fabric traffic (``send_batch``,
    ``recv_all_batch``, accumulator ``append``): such an op is only
    legal on a contract clause declaring ``batched=True``.
    """

    kind: str
    tag: str | None
    path: str
    line: int
    via: str
    batch: bool = False


@dataclass(frozen=True)
class ContractFinding:
    """One extraction-vs-spec diagnostic, anchored to a source location."""

    kind: str  # undeclared-op | dynamic-tag | dead-clause | missing-module | missing-entry
    severity: str
    phase: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity} [{self.kind}] "
            f"phase {self.phase!r}: {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "phase": self.phase,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class ContractReport:
    """Outcome of one static contract check over all phases."""

    findings: list[ContractFinding] = field(default_factory=list)
    phases_checked: int = 0
    ops_extracted: int = 0

    @property
    def errors(self) -> list[ContractFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[ContractFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    def ok(self, strict: bool = False) -> bool:
        """No errors; in strict mode, no warnings (dead clauses) either."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"across {self.phases_checked} phase contract(s) "
            f"({self.ops_extracted} op(s) extracted)"
        )

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.severity] = counts.get(f.severity, 0) + 1
        return json.dumps(
            {
                "version": 1,
                "phases_checked": self.phases_checked,
                "ops_extracted": self.ops_extracted,
                "counts": counts,
                "findings": [f.as_dict() for f in self.findings],
            },
            indent=2,
        )


def constant_str(node: ast.AST | None) -> str | None:
    """The literal string value of a Constant node, else None.

    Shared with :mod:`repro.analysis.ipa` (tag/seed classification).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def keyword_arg(call: ast.Call, name: str) -> ast.AST | None:
    """The value of keyword ``name`` on ``call``, else None (shared)."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


_constant_str = constant_str
_keyword = keyword_arg


def _under_blocking_guard(node: ast.AST, stop: ast.AST) -> bool:
    """Whether ``node`` sits inside an ``if`` that tests ``blocking``."""
    current = getattr(node, "_repro_parent", None)
    while current is not None and current is not stop:
        if isinstance(current, ast.If) and any(
            isinstance(n, ast.Name) and n.id == "blocking"
            for n in ast.walk(current.test)
        ):
            return True
        current = getattr(current, "_repro_parent", None)
    return False


class _FunctionScan:
    """Result of scanning one function definition."""

    def __init__(self) -> None:
        self.ops: list[ExtractedOp] = []
        #: Blocking constants observed at ``.sync_round`` call sites
        #: (True/False); non-constant arguments contribute both.
        self.sync_blocking: set[bool] = set()
        self.dispatches_sync: bool = False
        #: Names this function references (for local call-graph closure).
        self.referenced: set[str] = set()


def _scan_function(
    module: ModuleSource,
    fndef: ast.FunctionDef | ast.AsyncFunctionDef,
    blocking_hint: frozenset[bool] | None,
) -> _FunctionScan:
    """Extract every comm op reachable in ``fndef`` (nested defs included)."""
    scan = _FunctionScan()
    via = fndef.name

    def emit(
        kind: str, tag: str | None, node: ast.AST, batch: bool = False
    ) -> None:
        scan.ops.append(
            ExtractedOp(
                kind=kind,
                tag=tag,
                path=module.rel,
                line=getattr(node, "lineno", 1),
                via=via,
                batch=batch,
            )
        )

    for node in ast.walk(fndef):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            scan.referenced.add(node.id)
            continue
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr == "send":
            tag_node = _keyword(node, "tag")
            if tag_node is None:
                emit("p2p", "default", node)
            else:
                emit("p2p", _constant_str(tag_node), node)  # None => dynamic
        elif attr == "send_batch":
            tag_node = _keyword(node, "tag")
            if tag_node is None:
                emit("p2p", "default", node, batch=True)
            else:
                emit("p2p", _constant_str(tag_node), node, batch=True)
        elif attr == "append" and _keyword(node, "tag") is not None:
            # BatchAccumulator.append: staged columnar p2p traffic (the
            # flush is one transport send under the staged tag).  Plain
            # list.append never carries a tag keyword.
            emit("p2p", _constant_str(_keyword(node, "tag")), node, batch=True)
        elif attr in ("recv_all", "recv_all_batch"):
            tag_node = _keyword(node, "tag")
            tag = _constant_str(tag_node)
            if tag is None and tag_node is None:
                # Positional tag (Communicator.recv_all(dst, tag)) or default.
                tag = next(
                    (t for a in node.args if (t := _constant_str(a)) is not None),
                    "default",
                )
            emit("recv", tag, node, batch=attr == "recv_all_batch")
        elif attr == "allreduce_sum":
            blocking = _keyword(node, "blocking")
            if blocking is None:
                emit("allreduce", None, node)  # parameter default is blocking
            elif isinstance(blocking, ast.Constant) and isinstance(
                blocking.value, bool
            ):
                emit("allreduce" if blocking.value else "allreduce-async", None, node)
            elif blocking_hint == frozenset({True}):
                emit("allreduce", None, node)
            elif blocking_hint == frozenset({False}):
                emit("allreduce-async", None, node)
            else:
                emit("allreduce-any", None, node)
        elif attr in _FIXED_COLLECTIVES:
            emit(_FIXED_COLLECTIVES[attr], None, node)
        elif attr == "barrier":
            if blocking_hint == frozenset({False}) and _under_blocking_guard(
                node, fndef
            ):
                continue  # statically unreachable: every call site is async
            emit("barrier", None, node)
        elif attr == "sync_round":
            scan.dispatches_sync = True
            blocking = _keyword(node, "blocking")
            if blocking is None:
                scan.sync_blocking.add(True)  # sync_round defaults to blocking
            elif isinstance(blocking, ast.Constant) and isinstance(
                blocking.value, bool
            ):
                scan.sync_blocking.add(blocking.value)
            else:
                scan.sync_blocking.update((True, False))
    return scan


def is_nested(fndef: ast.AST) -> bool:
    """Whether ``fndef`` is defined inside another function (shared)."""
    current = getattr(fndef, "_repro_parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return True
        current = getattr(current, "_repro_parent", None)
    return False


def mark_visited(
    fndef: ast.FunctionDef | ast.AsyncFunctionDef, visited: set[int]
) -> None:
    """Mark ``fndef`` and every def nested in it as visited (shared)."""
    for node in ast.walk(fndef):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # repro-lint: disable-next-line=deep-determinism-taint -- identity-keyed visited set; the addresses gate traversal membership only and never reach extractor output
            visited.add(id(node))


_is_nested = is_nested
_mark_visited = mark_visited


def call_closure(
    module: ModuleSource,
    entries: list[ast.FunctionDef | ast.AsyncFunctionDef],
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """The module-local name-based call closure of ``entries``.

    A name referenced anywhere in a visited function pulls in every
    same-named top-level definition — the over-matching resolution the
    contracts extractor uses for HostTask bodies passed by name.  The
    precise (scope- and type-aware) counterpart lives in
    :mod:`repro.analysis.ipa.program`.
    """
    defs = module.defs_by_name
    visited: set[int] = set()
    order: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    queue = list(entries)
    while queue:
        fndef = queue.pop(0)
        if id(fndef) in visited:
            continue
        mark_visited(fndef, visited)
        order.append(fndef)
        referenced = {
            n.id
            for n in ast.walk(fndef)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        for name in sorted(referenced):
            for ref in defs.get(name, ()):
                if id(ref) not in visited and not is_nested(ref):
                    queue.append(ref)
    return order


def extract_phase_ops(
    base: Path, contract: PhaseContract
) -> tuple[list[ExtractedOp], list[ContractFinding]]:
    """Every comm op the phase's sources can emit, plus load findings.

    The primary module is scanned from the contract's entry functions
    outward through the local call graph (a name referenced anywhere in
    a scanned function pulls in every same-named definition — HostTask
    bodies are passed by name, so over-matching is the safe direction).
    Dispatched modules are scanned whole.
    """
    ops: list[ExtractedOp] = []
    findings: list[ContractFinding] = []
    if not contract.modules:
        return ops, findings

    def missing(kind: str, rel: str, message: str) -> None:
        findings.append(
            ContractFinding(
                kind=kind,
                severity=ERROR,
                phase=contract.phase,
                path=rel,
                line=1,
                message=message,
            )
        )

    primary_rel = contract.modules[0]
    primary_path = base / primary_rel
    if not primary_path.is_file():
        missing("missing-module", primary_rel, "declared phase module not found")
        return ops, findings
    module = ModuleSource.load(primary_path, base)

    defs = module.defs_by_name
    entries: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    for entry in contract.entry_points:
        entry_defs = defs.get(entry, [])
        if not entry_defs:
            missing(
                "missing-entry",
                primary_rel,
                f"entry point {entry}() not found in the phase module",
            )
        entries.extend(entry_defs)

    sync_consts: set[bool] = set()
    dispatched = False
    # Nested defs are reachable only from their enclosing scope, which
    # ast.walk of that scope already covered; call_closure resolves
    # names against top-level defs only, so sibling entry points'
    # helpers never leak into this phase.
    for fndef in call_closure(module, entries):
        scan = _scan_function(module, fndef, None)
        ops.extend(scan.ops)
        sync_consts |= scan.sync_blocking
        dispatched = dispatched or scan.dispatches_sync

    hint = frozenset(sync_consts) if sync_consts else None
    for rel in contract.modules[1:]:
        path = base / rel
        if not path.is_file():
            missing("missing-module", rel, "declared phase module not found")
            continue
        dispatch_mod = ModuleSource.load(path, base)
        mod_visited: set[int] = set()
        for node in ast.walk(dispatch_mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if id(node) in mod_visited:
                continue
            _mark_visited(node, mod_visited)
            if node.name == "sync_round":
                if not dispatched:
                    continue  # the phase never dispatches a round boundary
                scan = _scan_function(dispatch_mod, node, hint)
            else:
                scan = _scan_function(dispatch_mod, node, None)
            ops.extend(scan.ops)
    return ops, findings


def _matches_spec(op: ExtractedOp, spec: OpSpec) -> bool:
    if spec.kind == "p2p":
        return op.kind == "p2p" and op.tag == spec.tag
    if op.kind == "allreduce-any":
        return spec.kind in ("allreduce", "allreduce-async")
    return op.kind == spec.kind


def _diff_contract(
    contract: PhaseContract, ops: list[ExtractedOp]
) -> list[ContractFinding]:
    """Extraction-vs-spec diff: undeclared ops (error), dead clauses (warning)."""
    findings: list[ContractFinding] = []
    declared_tags = sorted(contract.p2p_tags())
    for op in ops:
        if op.kind == "recv":
            continue  # receiving is passive; drains are checked per clause
        if op.kind == "p2p" and op.tag is None:
            findings.append(
                ContractFinding(
                    kind="dynamic-tag",
                    severity=ERROR,
                    phase=contract.phase,
                    path=op.path,
                    line=op.line,
                    message=(
                        f"send in {op.via}() uses a non-constant tag; contracts "
                        "can only be checked against compile-time tags"
                    ),
                )
            )
            continue
        matched = [spec for spec in contract.ops if _matches_spec(op, spec)]
        if matched:
            if op.batch and not any(spec.batched for spec in matched):
                findings.append(
                    ContractFinding(
                        kind="unbatched-op",
                        severity=ERROR,
                        phase=contract.phase,
                        path=op.path,
                        line=op.line,
                        message=(
                            f"columnar-fabric traffic on tag {op.tag!r} in "
                            f"{op.via}(), but the contract clause does not "
                            "declare batched=True; mark the OpSpec batched "
                            "or use the scalar send/recv_all path"
                        ),
                    )
                )
            continue
        if op.kind == "p2p":
            declared = ", ".join(repr(t) for t in declared_tags) or "none"
            message = (
                f"send with tag {op.tag!r} in {op.via}() is not declared by "
                f"the contract (declared tags: {declared}); add an OpSpec in "
                "repro.core.contracts or remove the send"
            )
        else:
            message = (
                f"{op.kind} in {op.via}() is not declared by the contract; "
                "add an OpSpec in repro.core.contracts or remove the collective"
            )
        findings.append(
            ContractFinding(
                kind="undeclared-op",
                severity=ERROR,
                phase=contract.phase,
                path=op.path,
                line=op.line,
                message=message,
            )
        )

    primary = contract.modules[0] if contract.modules else "<unknown>"
    for spec in contract.ops:
        if not any(_matches_spec(op, spec) for op in ops):
            findings.append(
                ContractFinding(
                    kind="dead-clause",
                    severity=WARNING,
                    phase=contract.phase,
                    path=primary,
                    line=1,
                    message=(
                        f"contract declares {spec.describe()} but no code path "
                        "in the phase's modules can emit it (dead contract "
                        "clause); delete the clause or implement the op"
                    ),
                )
            )
        elif (
            spec.kind == "p2p"
            and spec.drained
            and not any(op.kind == "recv" and op.tag == spec.tag for op in ops)
        ):
            findings.append(
                ContractFinding(
                    kind="dead-clause",
                    severity=WARNING,
                    phase=contract.phase,
                    path=primary,
                    line=1,
                    message=(
                        f"contract declares {spec.describe()} as drained, but "
                        f"no recv_all(tag={spec.tag!r}) exists in the phase's "
                        "modules"
                    ),
                )
            )
    return findings


def _resolve_base(root: Path) -> Path:
    """Locate the ``repro`` package root under ``root``."""
    for candidate in (root, root / "src" / "repro", root / "repro"):
        if (candidate / "core").is_dir():
            return candidate
    return root


def check_contracts(
    root: str | Path, contracts: ContractSet | None = None
) -> ContractReport:
    """Statically verify every phase contract against the tree at ``root``.

    ``root`` may be the package root (``src/repro``), the repository
    root, or any directory containing a ``core/`` with the phase
    modules (contract module paths are package-relative).
    """
    if contracts is None:
        from repro.core.contracts import PHASE_CONTRACTS

        contracts = PHASE_CONTRACTS
    base = _resolve_base(Path(root))
    report = ContractReport()
    for contract in contracts:
        ops, findings = extract_phase_ops(base, contract)
        report.findings.extend(findings)
        report.findings.extend(_diff_contract(contract, ops))
        report.phases_checked += 1
        report.ops_extracted += sum(1 for op in ops if op.kind != "recv")
    report.findings.sort(key=lambda f: (f.path, f.line, f.phase, f.kind))
    return report
