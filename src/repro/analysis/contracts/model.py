"""The phase-contract language: declarative specs for phase communication.

A :class:`PhaseContract` names every communication operation one of the
partitioner's bulk-synchronous phases is allowed to perform: its
point-to-point message tags (with peer topology and payload kind), its
collectives, and — for collectives — the exact number of rounds expected
as a function of the run configuration (:class:`ContractContext`).

Contracts are *data*; two independent verifiers consume them:

* the static extractor (:mod:`repro.analysis.contracts.extract`) diffs a
  contract against the comm ops an AST walk of the phase's sources can
  emit, and
* the runtime sanitizer (:mod:`repro.analysis.contracts.sanitize`)
  audits every finished phase's :class:`~repro.runtime.comm.Communicator`
  against the contract and the ledger's conservation laws.

The five CuSP phase contracts are declared in
:mod:`repro.core.contracts`; this module only defines the language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

__all__ = [
    "OP_KINDS",
    "TOPOLOGIES",
    "ContractContext",
    "OpSpec",
    "PhaseContract",
    "ContractSet",
    "ContractViolation",
    "ContractViolationError",
]

#: Operation kinds a contract clause may declare.  ``p2p`` covers tagged
#: point-to-point sends (a broadcast is a p2p clause with topology
#: ``"broadcast"``); the remaining kinds mirror the communicator's
#: collective event names.
OP_KINDS = ("p2p", "allreduce", "allreduce-async", "allgather", "barrier")

#: Peer topologies for point-to-point clauses.
TOPOLOGIES = ("all-to-all", "broadcast", "neighbor", "master-only")


@dataclass(frozen=True)
class ContractContext:
    """The run configuration a contract's conditional clauses depend on.

    Collective-round counts and clause activation are functions of this
    context: e.g. the master-assignment phase performs exactly
    ``sync_rounds`` asynchronous allreduces — but only when the master
    rule is history-sensitive.
    """

    num_hosts: int
    sync_rounds: int = 1
    #: True when the master rule is pure (Contiguous family): assignment
    #: is a pure function and the phase needs no communication at all.
    master_pure: bool = True
    #: True when the master rule keeps partitioning state that must be
    #: reconciled at round boundaries (Fennel/FennelEB/LDG).
    master_stateful: bool = False
    #: True when the edge rule keeps streaming state (GreedyVertexCut,
    #: HDRF) reconciled once per host chunk.
    edge_stateful: bool = False
    #: Paper §IV-D5: replicate computation / request-driven exchange
    #: instead of broadcasting assignments (False only for the ablation).
    elide_master_communication: bool = True


@dataclass(frozen=True)
class OpSpec:
    """One allowed communication operation of a phase.

    ``rounds`` (collectives only) maps a :class:`ContractContext` to the
    exact number of events expected in one phase execution; ``None``
    leaves the count unconstrained.  ``when`` gates the clause on the
    run configuration — an op observed while its clause is inactive is a
    violation just like an undeclared op.  ``drained`` promises that
    receivers consume every message of this tag before the phase
    barrier (via ``recv_all``); tags whose payloads are applied directly
    at the merge barrier leave their queues populated and declare
    ``drained=False``.  ``batched`` marks p2p channels carried by the
    columnar fabric (:mod:`repro.runtime.colfab`): the static extractor
    rejects ``send_batch``/``recv_all_batch``/accumulator traffic on a
    clause that does not declare it.
    """

    kind: str
    tag: str | None = None
    topology: str = "all-to-all"
    payload: str = ""
    drained: bool = False
    batched: bool = False
    rounds: Callable[[ContractContext], int] | None = None
    when: Callable[[ContractContext], bool] | None = None

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown op kind {self.kind!r}; choose from {OP_KINDS}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        if self.kind == "p2p" and not self.tag:
            raise ValueError("p2p clauses must declare a message tag")
        if self.kind != "p2p" and self.tag is not None:
            raise ValueError(f"{self.kind} clauses carry no tag")
        if self.batched and self.kind != "p2p":
            raise ValueError("batched applies to p2p clauses only")

    def active(self, ctx: ContractContext | None) -> bool:
        """Whether this clause applies under ``ctx`` (None = unknown: yes)."""
        if ctx is None or self.when is None:
            return True
        return bool(self.when(ctx))

    def expected_rounds(self, ctx: ContractContext) -> int | None:
        """Exact expected event count under ``ctx`` (None = unconstrained)."""
        if self.rounds is None:
            return None
        return int(self.rounds(ctx))

    def allows_pair(self, src: int, dst: int, num_hosts: int) -> bool:
        """Whether a ``src -> dst`` transfer satisfies the topology."""
        if src == dst:
            return True  # local delivery costs nothing and is always legal
        if self.topology in ("all-to-all", "broadcast"):
            return True
        if self.topology == "neighbor":
            return abs(src - dst) in (1, num_hosts - 1)
        return src == 0 or dst == 0  # master-only

    def describe(self) -> str:
        if self.kind == "p2p":
            return f"p2p tag {self.tag!r} ({self.topology})"
        return self.kind


@dataclass(frozen=True)
class PhaseContract:
    """The declared communication contract of one named phase.

    ``modules`` lists the package-relative source files implementing the
    phase: the first is the *primary* module holding the phase's entry
    functions (``entry_points``); the rest are the rule/state modules
    the phase dispatches into (their reachable comm ops count toward
    this phase).
    """

    phase: str
    ops: tuple[OpSpec, ...] = ()
    modules: tuple[str, ...] = ()
    entry_points: tuple[str, ...] = ()
    description: str = ""

    def p2p_tags(self) -> set[str]:
        return {s.tag for s in self.ops if s.kind == "p2p" and s.tag}

    def find_p2p(self, tag: str) -> OpSpec | None:
        for spec in self.ops:
            if spec.kind == "p2p" and spec.tag == tag:
                return spec
        return None

    def collective_specs(self, kind: str) -> list[OpSpec]:
        return [s for s in self.ops if s.kind == kind]

    def collective_kinds(self) -> set[str]:
        return {s.kind for s in self.ops if s.kind != "p2p"}


class ContractSet:
    """An ordered collection of phase contracts, indexed by phase name."""

    def __init__(self, contracts: Iterable[PhaseContract]):
        self._contracts = list(contracts)
        self.by_phase: dict[str, PhaseContract] = {}
        for c in self._contracts:
            if c.phase in self.by_phase:
                raise ValueError(f"duplicate contract for phase {c.phase!r}")
            self.by_phase[c.phase] = c

    def __iter__(self) -> Iterator[PhaseContract]:
        return iter(self._contracts)

    def __len__(self) -> int:
        return len(self._contracts)

    def get(self, phase: str) -> PhaseContract | None:
        return self.by_phase.get(phase)


@dataclass(frozen=True)
class ContractViolation:
    """One runtime contract/conservation breach, fully located.

    ``op`` names the offending operation (e.g. ``p2p tag 'gossip'`` or
    ``allreduce-async``); ``host`` is the originating host when one is
    attributable (``None`` for phase-global invariants).
    """

    phase: str
    host: int | None
    op: str
    message: str

    def render(self) -> str:
        where = f"host {self.host}" if self.host is not None else "all hosts"
        return f"phase {self.phase!r}: {where}: {self.op}: {self.message}"


class ContractViolationError(RuntimeError):
    """Raised by the runtime sanitizer on the first contract breach."""

    def __init__(self, violation: ContractViolation):
        super().__init__(violation.render())
        self.violation = violation
