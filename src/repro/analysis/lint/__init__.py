"""AST-based SPMD-safety lint (``repro lint``).

See :mod:`repro.analysis.lint.base` for the framework (rules,
suppression comments, reports) and :mod:`repro.analysis.lint.rules`
for the bundled determinism-contract checkers.
"""

from .base import (
    ERROR,
    WARNING,
    Finding,
    LintReport,
    LintRule,
    ModuleSource,
    Severity,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleSource",
    "Severity",
    "all_rules",
    "register",
    "run_lint",
]
