"""Framework for the SPMD-safety lint: rules, findings, suppression, reports.

A :class:`LintRule` is a pluggable AST checker.  It receives one parsed
:class:`ModuleSource` at a time and yields :class:`Finding`\\ s; the
driver (:func:`run_lint`) walks a file tree, applies every registered
rule, honours suppression comments, and assembles a :class:`LintReport`
with text and machine-readable JSON renderings.

Suppression comments
--------------------
A finding is suppressed by a comment naming its rule:

* ``# repro-lint: disable=rule-a,rule-b`` — on the flagged line;
* ``# repro-lint: disable-next-line=rule-a`` — on the line above;
* ``# repro-lint: disable-file=rule-a`` — anywhere, whole file;
* the rule list may be ``all``.

Everything after a `` -- `` separator is a free-form justification and
is ignored by the parser (but please write one).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Severity",
    "Finding",
    "ModuleSource",
    "LintRule",
    "LintReport",
    "register",
    "all_rules",
    "run_lint",
]

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
Severity = str

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-next-line|-file)?)\s*=\s*"
    r"([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleSource:
    """One parsed Python file plus its suppression table."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        # Parent links let rules reason about context (e.g. "is this
        # subscript a store target?") without re-walking from the root.
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._repro_parent = node  # type: ignore[attr-defined]
        self._line_rules: dict[int, set[str]] = {}
        self._file_rules: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if not m:
                continue
            kind = m.group(1)
            rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
            if kind == "disable-file":
                self._file_rules |= rules
            elif kind == "disable-next-line":
                self._line_rules.setdefault(lineno + 1, set()).update(rules)
            else:
                self._line_rules.setdefault(lineno, set()).update(rules)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path, rel, path.read_text())

    def suppressed(self, line: int, rule: str) -> bool:
        for rules in (self._file_rules, self._line_rules.get(line, ())):
            if rule in rules or "all" in rules:
                return True
        return False


class LintRule:
    """Base class for pluggable checkers.

    Subclasses set :attr:`name` (kebab-case rule id, used in reports and
    suppression comments), :attr:`severity`, a one-line
    :attr:`description`, and implement :meth:`check`.  ``exempt_paths``
    lists relative paths (or substrings, when ending in ``*``) the rule
    never applies to.
    """

    name: str = ""
    severity: Severity = ERROR
    description: str = ""
    exempt_paths: Sequence[str] = ()

    def applies_to(self, module: ModuleSource) -> bool:
        for pattern in self.exempt_paths:
            if pattern.endswith("*"):
                if pattern[:-1] in module.rel:
                    return False
            elif module.rel == pattern or module.rel.endswith("/" + pattern):
                return False
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a rule by its name."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate lint rule {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> dict[str, LintRule]:
    """All registered rules, by name (importing the bundled rule set)."""
    from . import rules as _rules  # noqa: F401 — registration side effect

    return dict(_REGISTRY)


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def ok(self, strict: bool = False) -> bool:
        """No errors; in strict mode, no unsuppressed warnings either."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"in {self.files_checked} file(s)"
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
        )

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.severity] = counts.get(f.severity, 0) + 1
        return json.dumps(
            {
                "version": 1,
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "counts": counts,
                "findings": [f.as_dict() for f in self.findings],
            },
            indent=2,
        )


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable[LintRule] | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with ``rules``.

    ``root`` anchors the relative paths used in findings and
    ``exempt_paths`` matching; it defaults to the first directory in
    ``paths`` (or the file's parent).
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        root = next(
            (p for p in path_objs if p.is_dir()),
            path_objs[0].parent if path_objs else Path("."),
        )
    root = Path(root)
    active = list(all_rules().values()) if rules is None else list(rules)
    report = LintReport()
    for path in _iter_py_files(path_objs):
        try:
            module = ModuleSource.load(path, root)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule="parse-error",
                    severity=ERROR,
                    path=path.as_posix(),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            report.files_checked += 1
            continue
        report.files_checked += 1
        for rule in active:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if module.suppressed(finding.line, finding.rule):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
