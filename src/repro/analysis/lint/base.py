"""Framework for the SPMD-safety lint: rules, findings, suppression, reports.

A :class:`LintRule` is a pluggable AST checker.  It receives one parsed
:class:`ModuleSource` at a time and yields :class:`Finding`\\ s; the
driver (:func:`run_lint`) walks a file tree, applies every registered
rule, honours suppression comments, and assembles a :class:`LintReport`
with text and machine-readable JSON renderings.

Suppression comments
--------------------
A finding is suppressed by a comment naming its rule:

* ``# repro-lint: disable=rule-a,rule-b`` — on the flagged line;
* ``# repro-lint: disable-next-line=rule-a`` — on the line above;
* ``# repro-lint: disable-file=rule-a`` — anywhere, whole file;
* the rule list may be ``all``.

Everything after a `` -- `` separator is a free-form justification and
is ignored by the parser (but please write one).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Severity",
    "Finding",
    "ModuleSource",
    "LintRule",
    "LintReport",
    "register",
    "all_rules",
    "run_lint",
    "check_module",
    "finding_sort_key",
    "parse_error_finding",
    "dotted_name",
    "resolve_name",
]

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
Severity = str

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-next-line|-file)?)\s*=\s*"
    r"([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Fully-qualified dotted name of a Name/Attribute, alias-expanded."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


def _module_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they refer to (absolute imports)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleSource:
    """One parsed Python file plus its suppression table.

    Each file is parsed exactly once per lint run; the derived
    structures every consumer needs — import aliases, top-level
    function definitions by name, ``HostTask`` body/call pairs — are
    computed lazily and cached on the instance, so rules (and the
    whole-program engine in :mod:`repro.analysis.ipa`) share one AST
    and one resolution pass instead of redoing the walk per rule.
    """

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        # Parent links let rules reason about context (e.g. "is this
        # subscript a store target?") without re-walking from the root.
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._repro_parent = node  # type: ignore[attr-defined]
        self._aliases: dict[str, str] | None = None
        self._defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] | None = None
        self._host_task_bodies: list[tuple[ast.AST, ast.Call]] | None = None
        self._line_rules: dict[int, set[str]] = {}
        self._file_rules: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if not m:
                continue
            kind = m.group(1)
            rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
            if kind == "disable-file":
                self._file_rules |= rules
            elif kind == "disable-next-line":
                self._line_rules.setdefault(lineno + 1, set()).update(rules)
            else:
                self._line_rules.setdefault(lineno, set()).update(rules)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path, rel, path.read_text())

    def suppressed(self, line: int, rule: str) -> bool:
        for rules in (self._file_rules, self._line_rules.get(line, ())):
            if rule in rules or "all" in rules:
                return True
        return False

    def suppression_table(self) -> dict:
        """JSON-serializable suppression tables (for the deep-lint cache)."""
        return {
            "file": sorted(self._file_rules),
            "lines": {
                str(line): sorted(rules)
                for line, rules in sorted(self._line_rules.items())
            },
        }

    @property
    def sha(self) -> str:
        """SHA-256 of the file text (the deep-lint cache key)."""
        return hashlib.sha256(self.text.encode()).hexdigest()

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> dotted import target (absolute imports only)."""
        if self._aliases is None:
            self._aliases = _module_aliases(self.tree)
        return self._aliases

    @property
    def defs_by_name(self) -> dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Every (possibly nested) function definition, grouped by name."""
        if self._defs is None:
            defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defs.setdefault(node.name, []).append(node)
            self._defs = defs
        return self._defs

    def host_task_bodies(self) -> list[tuple[ast.AST, ast.Call]]:
        """(body function/lambda, ``HostTask(...)`` call) pairs.

        A HostTask body is the second positional argument (or ``fn=``
        keyword) of a ``HostTask(...)`` construction.  Named bodies are
        resolved to every same-named function in the module —
        over-matching is acceptable for a lint.  Computed once and
        shared by every rule that reasons about task bodies.
        """
        if self._host_task_bodies is not None:
            return self._host_task_bodies
        pairs: list[tuple[ast.AST, ast.Call]] = []
        seen: set[int] = set()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] != "HostTask":
                continue
            fn_arg: ast.AST | None = None
            if len(node.args) >= 2:
                fn_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        fn_arg = kw.value
            if isinstance(fn_arg, ast.Lambda):
                pairs.append((fn_arg, node))
            elif isinstance(fn_arg, ast.Name):
                for fndef in self.defs_by_name.get(fn_arg.id, ()):
                    if id(fndef) not in seen:
                        seen.add(id(fndef))
                        pairs.append((fndef, node))
        self._host_task_bodies = pairs
        return pairs


class LintRule:
    """Base class for pluggable checkers.

    Subclasses set :attr:`name` (kebab-case rule id, used in reports and
    suppression comments), :attr:`severity`, a one-line
    :attr:`description`, and implement :meth:`check`.  ``exempt_paths``
    lists relative paths (or substrings, when ending in ``*``) the rule
    never applies to.
    """

    name: str = ""
    severity: Severity = ERROR
    description: str = ""
    exempt_paths: Sequence[str] = ()

    def applies_to(self, module: ModuleSource) -> bool:
        for pattern in self.exempt_paths:
            if pattern.endswith("*"):
                if pattern[:-1] in module.rel:
                    return False
            elif module.rel == pattern or module.rel.endswith("/" + pattern):
                return False
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a rule by its name."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate lint rule {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> dict[str, LintRule]:
    """All registered rules, by name (importing the bundled rule set)."""
    from . import rules as _rules  # noqa: F401 — registration side effect

    return dict(_REGISTRY)


#: Total order on findings: every ``LintReport`` is sorted by this key,
#: so text and ``--json`` output (and therefore diffs against them, and
#: the deep-lint cache) are byte-stable across runs and platforms.
#: ``message`` breaks the rare (path, line, col, rule) tie — e.g. one
#: rule flagging the same node twice with different diagnoses.
def finding_sort_key(f: Finding) -> tuple[str, int, int, str, str]:
    return (f.path, f.line, f.col, f.rule, f.message)


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Deep-lint incremental cache counters (None outside ``--deep``).
    cache_hits: int | None = None
    cache_misses: int | None = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def ok(self, strict: bool = False) -> bool:
        """No errors; in strict mode, no unsuppressed warnings either."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def summary(self) -> str:
        cache = ""
        if self.cache_hits is not None:
            cache = (
                f" [deep: {self.cache_hits} cached, "
                f"{self.cache_misses} analyzed]"
            )
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"in {self.files_checked} file(s)"
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
            + cache
        )

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.severity] = counts.get(f.severity, 0) + 1
        doc: dict = {
            "version": 2,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "counts": counts,
            "findings": [f.as_dict() for f in self.findings],
        }
        if self.cache_hits is not None:
            doc["cache"] = {
                "hits": self.cache_hits, "misses": self.cache_misses,
            }
        return json.dumps(doc, indent=2, sort_keys=True)


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def check_module(
    module: ModuleSource, active: Iterable[LintRule], report: LintReport
) -> None:
    """Apply every rule in ``active`` to one parsed module."""
    for rule in active:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if module.suppressed(finding.line, finding.rule):
                report.suppressed += 1
            else:
                report.findings.append(finding)


def parse_error_finding(path: Path, exc: SyntaxError) -> Finding:
    return Finding(
        rule="parse-error",
        severity=ERROR,
        path=path.as_posix(),
        line=exc.lineno or 1,
        col=exc.offset or 0,
        message=f"cannot parse: {exc.msg}",
    )


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable[LintRule] | None = None,
    root: str | Path | None = None,
    deep: bool = False,
    cache: str | Path | None = None,
    deep_rules: Iterable[object] | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with ``rules``.

    ``root`` anchors the relative paths used in findings and
    ``exempt_paths`` matching; it defaults to the first directory in
    ``paths`` (or the file's parent).

    ``deep=True`` additionally runs the whole-program interprocedural
    analyses of :mod:`repro.analysis.ipa` over the same single-parse
    module set (call graph, determinism taint, payload shippability,
    and the interprocedural re-hosts of the evasion-prone rules).
    ``cache`` names the incremental cache file (per-file SHA-256 keyed);
    ``None`` analyzes everything from scratch in memory.
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        root = next(
            (p for p in path_objs if p.is_dir()),
            path_objs[0].parent if path_objs else Path("."),
        )
    root = Path(root)
    active = list(all_rules().values()) if rules is None else list(rules)
    files = list(_iter_py_files(path_objs))
    if deep:
        # One engine drives both layers: shallow rules run on exactly
        # the modules the deep pass has to (re-)parse, cached files
        # contribute their recorded findings without being re-read.
        from ..ipa.engine import run_deep_lint

        return run_deep_lint(files, root, active, cache, deep_rules)  # type: ignore[arg-type]
    report = LintReport()
    for path in files:
        try:
            module = ModuleSource.load(path, root)
        except SyntaxError as exc:
            report.findings.append(parse_error_finding(path, exc))
            report.files_checked += 1
            continue
        report.files_checked += 1
        check_module(module, active, report)
    report.findings.sort(key=finding_sort_key)
    return report
