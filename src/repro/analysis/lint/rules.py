"""The bundled SPMD-safety rules.

Each rule enforces one clause of the determinism contract (see
``docs/ANALYSIS.md``).  Rules are heuristic by design — they must never
crash on valid Python, and anything they over-flag can be suppressed
with a justified ``# repro-lint: disable=<rule>`` comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import (
    ERROR,
    WARNING,
    Finding,
    LintRule,
    ModuleSource,
    dotted_name,
    register,
    resolve_name,
)

__all__ = [
    "UnseededRngRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "UnorderedDictSendRule",
    "CommInTaskRule",
    "LedgerBypassRule",
    "UnaccountedSendRule",
    "CrossHostWriteRule",
    "UnshippableTaskCaptureRule",
    "ScalarSendInHotLoopRule",
    "ContractUndeclaredOpRule",
    "SwallowedErrorRule",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
# Name-resolution helpers live in ``base`` (shared with the contracts
# extractor and the whole-program engine); keep short local aliases so
# rule code stays terse.
_dotted = dotted_name
_resolve = resolve_name


def _root_name(node: ast.AST) -> str | None:
    """The Name at the bottom of a Subscript/Attribute chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _iter_host_task_bodies(
    module: ModuleSource,
) -> Iterator[tuple[ast.AST, ast.Call]]:
    """(body, HostTask call) pairs — one shared computation per module."""
    yield from module.host_task_bodies()


# ----------------------------------------------------------------------
# Nondeterminism sources
# ----------------------------------------------------------------------
@register
class UnseededRngRule(LintRule):
    """Randomness must come from an explicitly seeded Generator.

    The stdlib ``random`` module and NumPy's legacy ``np.random.*``
    functions draw from hidden global state: any draw order change —
    a reordered loop, a new thread — silently changes the partition.
    """

    name = "unseeded-rng"
    severity = ERROR
    description = (
        "global or unseeded RNG; inject a seeded np.random.Generator "
        "(np.random.default_rng(seed)) instead"
    )

    _SEEDED_CONSTRUCTORS = {
        "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve(node.func, aliases)
            if target is None:
                continue
            if target == "random.Random":
                if not node.args:
                    yield self.finding(
                        module, node, "random.Random() without a seed"
                    )
            elif target == "random.SystemRandom" or target.startswith(
                "random.SystemRandom."
            ):
                yield self.finding(
                    module, node,
                    "SystemRandom is OS entropy; never reproducible",
                )
            elif target.startswith("random."):
                yield self.finding(
                    module, node,
                    f"{target}() draws from the global stdlib RNG; "
                    "use an injected seeded Generator",
                )
            elif target.startswith("numpy.random."):
                leaf = target.rsplit(".", 1)[-1]
                if leaf == "default_rng":
                    unseeded = not node.args or (
                        isinstance(node.args[0], ast.Constant)
                        and node.args[0].value is None
                    )
                    if unseeded:
                        yield self.finding(
                            module, node,
                            "default_rng() without a seed is entropy-"
                            "seeded; derive the seed from (host, op)",
                        )
                elif leaf in self._SEEDED_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module, node,
                            f"np.random.{leaf}() without a seed",
                        )
                else:
                    yield self.finding(
                        module, node,
                        f"legacy np.random.{leaf} uses hidden global "
                        "state; use np.random.default_rng(seed)",
                    )


@register
class WallClockRule(LintRule):
    """No wall-clock reads outside the cost model and benchmarks.

    Simulated time is the *output* of the cost model; reading a real
    clock anywhere else lets nondeterministic host speed leak into
    results that must be a pure function of (graph, policy, seed).
    """

    name = "wall-clock"
    severity = ERROR
    description = (
        "wall-clock read outside runtime/cost_model.py or benchmarks; "
        "simulated time must come from the cost model"
    )
    exempt_paths = ("runtime/cost_model.py", "bench*")

    _CLOCKS = {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            parent = getattr(node, "_repro_parent", None)
            if isinstance(parent, ast.Attribute):
                continue  # flag only the full chain, once
            target = _resolve(node, aliases)
            if target in self._CLOCKS:
                yield self.finding(
                    module, node,
                    f"{target} read; results must not depend on real "
                    "host speed",
                )


@register
class UnorderedIterationRule(LintRule):
    """Set iteration order must never reach ordered state.

    ``set`` iteration order depends on insertion history and (for
    strings) hash randomization.  Iterating one — or materializing one
    with ``list``/``tuple``/``enumerate`` — feeds that order into
    whatever consumes it; if that is partition state or a ledger merge,
    reproducibility is gone.  ``sorted(...)`` is the deterministic fix.

    Tracked set expressions cover literals, ``set()``/``frozenset()``
    constructions, set algebra, consistently-set-typed locals, *and*
    consistently-set-typed ``self`` attributes (``self.pending =
    set()`` in any method of the class).  The attribute half exists
    because a mutation campaign proved the gap: stripping ``sorted``
    from ``sorted(self._fired)`` in the fault injector's state export
    survived every detector while the local-variable form was caught
    (see ``MUTATION_MATRIX.json``, ``unsort-iteration:runtime/
    faults.py#1``/``#2``).
    """

    name = "unordered-iteration"
    severity = ERROR
    description = (
        "iteration over a set reaches order-sensitive state; wrap in "
        "sorted(...)"
    )

    _ORDER_CONSUMERS = {"list", "tuple", "enumerate", "iter", "reversed"}
    _SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        """``X`` when ``node`` is exactly ``self.X``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _is_set_expr(
        self,
        node: ast.AST,
        set_vars: frozenset[str] = frozenset(),
        set_attrs: frozenset[str] = frozenset(),
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in set_vars:
            return True
        attr = self._self_attr(node)
        if attr is not None and attr in set_attrs:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            return self._is_set_expr(
                node.left, set_vars, set_attrs
            ) or self._is_set_expr(node.right, set_vars, set_attrs)
        return False

    @staticmethod
    def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
        """Walk ``root`` without descending into nested scopes."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                       ast.ClassDef)
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _scope_set_vars(self, scope: ast.AST) -> frozenset[str]:
        """Names whose every assignment in ``scope`` is a set expression."""
        is_set: dict[str, bool] = {}
        for node in self._walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    sety = self._is_set_expr(node.value)
                    is_set[target.id] = is_set.get(target.id, True) and sety
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
                target = node.target
                if isinstance(target, ast.Name):
                    is_set[target.id] = False
        return frozenset(name for name, ok in is_set.items() if ok)

    def _class_set_attrs(self, cls: ast.ClassDef) -> frozenset[str]:
        """Attrs whose every ``self.X = ...`` in the class is a set.

        Walks the whole class body (all methods, nested scopes): one
        non-set assignment anywhere poisons the attribute, as does any
        augmented assignment or loop-target use — mirroring the local
        tracking's conservatism.
        """
        is_set: dict[str, bool] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = self._self_attr(node.targets[0])
                if attr is not None:
                    sety = self._is_set_expr(node.value)
                    is_set[attr] = is_set.get(attr, True) and sety
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = self._self_attr(node.target)
                if attr is not None:
                    sety = self._is_set_expr(node.value)
                    is_set[attr] = is_set.get(attr, True) and sety
            elif isinstance(node, (ast.AugAssign, ast.For)):
                attr = self._self_attr(node.target)
                if attr is not None:
                    is_set[attr] = False
        return frozenset(attr for attr, ok in is_set.items() if ok)

    def _enclosing_set_attrs(self, scope: ast.AST) -> frozenset[str]:
        """Set-typed ``self`` attrs of the class ``scope`` sits inside."""
        node = scope
        while node is not None:
            if isinstance(node, ast.ClassDef):
                cached = self._attr_cache.get(node)
                if cached is None:
                    cached = self._class_set_attrs(node)
                    self._attr_cache[node] = cached
                return cached
            node = getattr(node, "_repro_parent", None)
        return frozenset()

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        self._attr_cache: dict[ast.AST, frozenset[str]] = {}
        scopes: list[ast.AST] = [module.tree] + [
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            set_vars = self._scope_set_vars(scope)
            set_attrs = self._enclosing_set_attrs(scope)
            yield from self._check_scope(module, scope, set_vars, set_attrs)

    def _check_scope(
        self,
        module: ModuleSource,
        scope: ast.AST,
        set_vars: frozenset[str],
        set_attrs: frozenset[str],
    ) -> Iterator[Finding]:
        for node in self._walk_scope(scope):
            if isinstance(node, ast.For) and self._is_set_expr(
                node.iter, set_vars, set_attrs
            ):
                yield self.finding(
                    module, node.iter,
                    "for-loop over a set has no deterministic order",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter, set_vars, set_attrs):
                        yield self.finding(
                            module, gen.iter,
                            "comprehension over a set has no "
                            "deterministic order",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_CONSUMERS
                and any(
                    self._is_set_expr(a, set_vars, set_attrs)
                    for a in node.args
                )
            ):
                yield self.finding(
                    module, node,
                    f"{node.func.id}() materializes a set's arbitrary "
                    "order; use sorted(...)",
                )


@register
class UnorderedDictSendRule(LintRule):
    """Dict iteration order must not drive the send sequence.

    Python dicts iterate in insertion order — deterministic for one
    process, but *insertion order itself* is host-dependent whenever
    the dict was filled from received messages, merged ledgers, or any
    per-host work split.  A loop that iterates such a dict and sends
    per entry ships that order into the communication schedule, where
    replay, CommSan byte mirroring, and scalar-fabric bit-identity all
    depend on it.  Iterate ``sorted(d)``/``sorted(d.items())`` instead.

    This is the set-order rule's sibling gap, promoted after the
    mutation campaign measured the family: local *set* order feeding
    state was caught, while dict-order hazards had no rule at all (see
    the "Mutation soundness" section of ``docs/ANALYSIS.md``).
    """

    name = "unordered-dict-send"
    severity = ERROR
    description = (
        "dict iteration order drives sends; iterate sorted(...) instead"
    )

    _VIEWS = ("items", "keys", "values")
    _SENDS = ("send", "send_batch")
    _DICT_FACTORIES = ("dict", "defaultdict", "Counter", "OrderedDict")

    def _is_dict_expr(self, node: ast.AST, dict_vars: frozenset[str]) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Name) and node.id in dict_vars:
            return True
        if isinstance(node, ast.Call):
            callee = _dotted(node.func)
            if callee is not None and (
                callee.split(".")[-1] in self._DICT_FACTORIES
            ):
                return True
        return False

    def _scope_dict_vars(self, scope: ast.AST) -> frozenset[str]:
        """Names whose every assignment in ``scope`` is a dict expression."""
        is_dict: dict[str, bool] = {}
        for node in UnorderedIterationRule._walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    dicty = self._is_dict_expr(node.value, frozenset())
                    is_dict[target.id] = is_dict.get(target.id, True) and dicty
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                dicty = node.value is not None and self._is_dict_expr(
                    node.value, frozenset()
                )
                is_dict[node.target.id] = (
                    is_dict.get(node.target.id, True) and dicty
                )
            elif isinstance(node, (ast.AugAssign, ast.For)):
                target = node.target
                if isinstance(target, ast.Name):
                    is_dict[target.id] = False
        return frozenset(name for name, ok in is_dict.items() if ok)

    def _dict_ordered_iter(
        self, node: ast.AST, dict_vars: frozenset[str]
    ) -> bool:
        """Does ``for ... in node`` follow a dict's insertion order?"""
        if self._is_dict_expr(node, dict_vars):
            return True
        return (
            isinstance(node, ast.Call)
            and not node.args
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._VIEWS
            and self._is_dict_expr(node.func.value, dict_vars)
        )

    def _sends_inside(self, body: list[ast.stmt]) -> ast.Call | None:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SENDS
            ):
                return node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        scopes: list[ast.AST] = [module.tree] + [
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            dict_vars = self._scope_dict_vars(scope)
            for node in UnorderedIterationRule._walk_scope(scope):
                if not isinstance(node, ast.For):
                    continue
                if not self._dict_ordered_iter(node.iter, dict_vars):
                    continue
                send = self._sends_inside(node.body)
                if send is not None:
                    assert isinstance(send.func, ast.Attribute)
                    yield self.finding(
                        module, node.iter,
                        f"loop over a dict's insertion order issues "
                        f"`{send.func.attr}(...)`; iterate "
                        "sorted(...) so the send sequence is "
                        "host-independent",
                    )


# ----------------------------------------------------------------------
# Host-isolation hazards
# ----------------------------------------------------------------------
@register
class CommInTaskRule(LintRule):
    """HostTask bodies must not touch the shared Communicator.

    A mapped task runs concurrently under ``ParallelExecutor``; every
    charge must go through its :class:`HostView` so it lands on the
    host's private ledger.  Reaching ``phase.comm`` (or issuing a
    collective) from inside a body bypasses the ledger and races the
    merge barrier.
    """

    name = "comm-in-task"
    severity = ERROR
    description = (
        "shared Communicator accessed inside a HostTask body; route "
        "charges through the HostView"
    )

    _PHASE_GLOBAL_CALLS = {
        "allreduce_sum", "allreduce_max", "allgather", "barrier",
        "merge_ledger", "sync_round",
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for body, _call in _iter_host_task_bodies(module):
            for node in ast.walk(body):
                if isinstance(node, ast.Attribute) and node.attr == "comm":
                    yield self.finding(
                        module, node,
                        "`.comm` reached from a HostTask body bypasses "
                        "the per-host ledger",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PHASE_GLOBAL_CALLS
                ):
                    yield self.finding(
                        module, node,
                        f"phase-global `{node.func.attr}` issued inside "
                        "a HostTask body; collectives belong between "
                        "task submissions",
                    )


@register
class LedgerBypassRule(LintRule):
    """Communicator accounting state is written only by the comm layer.

    Mutating the shared matrices or queues from anywhere but
    ``runtime/comm.py``/``runtime/executor.py`` produces traffic that a
    ledger merge cannot reproduce — the counters stop being a pure
    function of the send sequence.
    """

    name = "ledger-bypass"
    severity = ERROR
    description = (
        "direct mutation of Communicator accounting state outside the "
        "comm layer; use send()/HostView charges"
    )
    exempt_paths = ("runtime/comm.py", "runtime/executor.py")

    _SHARED_ATTRS = {
        "sent_bytes", "sent_messages", "retry_bytes", "retry_messages",
        "backoff_units", "collective_events", "barriers",
        "_queues", "_stream_bytes", "_stream_logical",
    }
    _MUTATORS = {
        "append", "extend", "appendleft", "insert", "clear", "pop",
        "popleft", "update", "remove",
    }

    def _shared_attr(self, node: ast.AST) -> ast.Attribute | None:
        """The `.shared_attr` access inside a (subscripted) chain."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in self._SHARED_ATTRS:
            return node
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MUTATORS
            ):
                hit = self._shared_attr(node.func.value)
                if hit is not None:
                    yield self.finding(
                        module, node,
                        f"`{hit.attr}.{node.func.attr}(...)` mutates "
                        "shared accounting outside the comm layer",
                    )
                continue
            for target in targets:
                hit = self._shared_attr(target)
                if hit is not None:
                    yield self.finding(
                        module, target,
                        f"assignment to shared `{hit.attr}` outside the "
                        "comm layer",
                    )


@register
class UnaccountedSendRule(LintRule):
    """Every send must carry a real byte charge.

    ``send(..., nbytes=0)`` delivers a payload the accounting never
    sees; sending a ``None`` payload without an explicit ``nbytes``
    does the same (``payload_nbytes(None) == 0``).  Free metadata must
    be declared with an explicit, documented ``nbytes=``.
    """

    name = "unaccounted-send"
    severity = ERROR
    description = (
        "send without a payload_nbytes charge path (None payload or "
        "nbytes=0); declare the modelled size explicitly"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
            ):
                continue
            nbytes = next(
                (kw.value for kw in node.keywords if kw.arg == "nbytes"), None
            )
            if (
                isinstance(nbytes, ast.Constant)
                and isinstance(nbytes.value, int)
                and not isinstance(nbytes.value, bool)
                and nbytes.value == 0
            ):
                yield self.finding(
                    module, node,
                    "send with nbytes=0 carries unaccounted traffic",
                )
            elif nbytes is None and any(
                isinstance(a, ast.Constant) and a.value is None
                for a in node.args
            ):
                yield self.finding(
                    module, node,
                    "None payload sizes to 0 bytes; pass an explicit "
                    "nbytes= for the modelled message size",
                )


@register
class CrossHostWriteRule(LintRule):
    """A HostTask body should write only its own host's slots.

    Writing ``shared[j][...]`` where ``j`` iterates over peers inside
    the body is a cross-host write from a mapped task.  It is only safe
    if the writes are provably disjoint across concurrent tasks — if
    they are, say so in a suppression comment; otherwise move the write
    to the merge barrier.
    """

    name = "cross-host-write"
    severity = WARNING
    description = (
        "HostTask body writes a per-host slot indexed by its own loop "
        "variable (cross-host write from a mapped task)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for body, _call in _iter_host_task_bodies(module):
            if isinstance(body, ast.Lambda):
                continue
            local_names: set[str] = {a.arg for a in body.args.args}
            loop_vars: set[str] = set()
            for node in ast.walk(body):
                if isinstance(node, ast.For) and isinstance(
                    node.target, ast.Name
                ):
                    loop_vars.add(node.target.id)
                elif isinstance(node, ast.Assign):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            local_names.add(t.id)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if isinstance(gen.target, ast.Name):
                            local_names.add(gen.target.id)
            if not loop_vars:
                continue
            for node in ast.walk(body):
                targets: list[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    root = _root_name(target)
                    if root is None or root in local_names:
                        continue
                    indices = self._subscript_indices(target)
                    bad = [
                        i.id for i in indices
                        if isinstance(i, ast.Name) and i.id in loop_vars
                    ]
                    if bad:
                        yield self.finding(
                            module, target,
                            f"write to closure `{root}` indexed by body "
                            f"loop variable `{bad[0]}`; prove the writes "
                            "disjoint (and suppress) or move them to the "
                            "merge barrier",
                        )

    @staticmethod
    def _subscript_indices(node: ast.Subscript) -> list[ast.AST]:
        indices: list[ast.AST] = []
        while isinstance(node, ast.Subscript):
            indices.append(node.slice)
            node = node.value  # type: ignore[assignment]
        return indices


def _flatten_store_targets(node: ast.AST) -> Iterator[ast.AST]:
    """Leaf assignment targets under tuple/list/star unpacking."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _flatten_store_targets(elt)
    elif isinstance(node, ast.Starred):
        yield from _flatten_store_targets(node.value)
    else:
        yield node


@register
class UnshippableTaskCaptureRule(LintRule):
    """A HostTask body must not mutate state captured from its closure.

    Task bodies may run in a forked worker process (``--executor
    process``): a write to captured shared state lands in the worker's
    copy-on-write snapshot and dies with the worker, silently diverging
    from the serial schedule.  Bodies must *return* their results — the
    parent installs them through the task's ``apply`` callback at the
    merge barrier — and take per-host inputs through the declared
    ``payload``.  A mutation that is provably worker-local (recomputed
    scratch, idempotent caches) must say so in a suppression
    justification.
    """

    name = "unshippable-task-capture"
    severity = WARNING
    description = (
        "HostTask body writes captured shared state, which a forked "
        "worker cannot ship back; return the value and install it via "
        "the task's apply callback"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for body, _call in _iter_host_task_bodies(module):
            if isinstance(body, ast.Lambda):
                # A lambda body is a single expression: it can only
                # mutate through calls, which this rule does not model.
                continue
            args = body.args
            local_names: set[str] = {
                a.arg for a in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs
                )
            }
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    local_names.add(extra.arg)
            # Any name the body (or a function nested in it) binds is
            # treated as local — an over-approximation that errs toward
            # silence, the right direction for a lint.
            for node in ast.walk(body):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    local_names.add(node.id)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    local_names.add(node.name)
            for node in ast.walk(body):
                targets: list[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                elif isinstance(node, ast.Delete):
                    targets = list(node.targets)
                for target in targets:
                    for leaf in _flatten_store_targets(target):
                        if not isinstance(
                            leaf, (ast.Subscript, ast.Attribute)
                        ):
                            continue
                        root = _root_name(leaf)
                        if root is None or root in local_names:
                            continue
                        yield self.finding(
                            module, leaf,
                            f"write to captured `{root}` inside a task "
                            "body dies with a forked worker; return the "
                            "value and install it in the task's apply "
                            "callback",
                        )


def _explicit_phase(module: ModuleSource) -> str | None:
    """The module-level ``__phase_contract__`` constant, if declared."""
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__phase_contract__"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            return node.value.value
    return None


def _governing_contracts(module: ModuleSource) -> list:
    """The phase contracts whose *primary* module is ``module``.

    A module is governed when it is ``contract.modules[0]`` of a contract
    in :data:`repro.core.contracts.PHASE_CONTRACTS` (matched by
    package-relative path suffix) or when it opts in explicitly with a
    module-level ``__phase_contract__ = "Phase Name"`` constant.
    """
    try:
        from ...core.contracts import PHASE_CONTRACTS
    except Exception:  # pragma: no cover - partial checkouts
        return []
    explicit = _explicit_phase(module)
    if explicit is not None:
        contract = PHASE_CONTRACTS.get(explicit)
        return [contract] if contract is not None else []
    governing = []
    for contract in PHASE_CONTRACTS:
        if not contract.modules:
            continue
        primary = contract.modules[0]
        if module.rel == primary or module.rel.endswith("/" + primary):
            governing.append(contract)
    return governing


@register
class ScalarSendInHotLoopRule(LintRule):
    """Per-element sends in a phase loop belong on the columnar fabric.

    A ``send`` issued once per peer (or worse, once per element) inside a
    ``for``/``while`` loop of a contract-governed phase module is the
    scalar message path: every call pays Python-level pack/charge
    overhead that :meth:`~repro.runtime.executor.HostView.send_batch` or
    a :class:`~repro.runtime.colfab.BatchAccumulator` amortizes over a
    whole column batch.  Intentional scalar paths — the compatibility
    fabric, accounting-only ablations — must say so in a suppression
    justification.
    """

    name = "scalar-send-in-hot-loop"
    severity = WARNING
    description = (
        "per-element send inside a loop in a phase module; batch through "
        "the columnar fabric (send_batch / BatchAccumulator) or justify "
        "the scalar path"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not _governing_contracts(module):
            return
        seen: set[int] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "send"
                    and id(node) not in seen
                ):
                    seen.add(id(node))
                    yield self.finding(
                        module, node,
                        "scalar `.send` inside a loop; ship one "
                        "MessageBatch via send_batch or accumulate "
                        "per-peer batches instead",
                    )


@register
class ContractUndeclaredOpRule(LintRule):
    """Comm calls in a phase module must be covered by its PhaseContract.

    A module is *governed* when it is the primary module of a contract
    in :data:`repro.core.contracts.PHASE_CONTRACTS` (matched by
    package-relative path suffix) or when it declares its phase
    explicitly with a module-level ``__phase_contract__ = "Phase Name"``
    constant.  In a governed module every ``send`` tag must be a
    compile-time constant declared by a governing contract, and
    collectives/barriers are only allowed when a clause of that kind
    exists.  The full dataflow diff — including dispatch into rule/state
    modules and dead-clause detection — is the ``repro contracts``
    subcommand's job; this rule is the fast in-editor subset.
    """

    name = "contract-undeclared-op"
    severity = ERROR
    description = (
        "comm op in a phase module not covered by its declared "
        "PhaseContract; declare an OpSpec in repro.core.contracts"
    )

    _COLLECTIVE_CALLS = {
        "allreduce_sum": ("allreduce", "allreduce-async"),
        "allreduce_max": ("allreduce",),
        "allgather": ("allgather",),
        "barrier": ("barrier",),
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        contracts = _governing_contracts(module)
        if not contracts:
            return
        tags: set[str] = set()
        kinds: set[str] = set()
        for contract in contracts:
            tags |= contract.p2p_tags()
            kinds |= contract.collective_kinds()
        phases = " + ".join(c.phase for c in contracts)
        declared = ", ".join(sorted(repr(t) for t in tags)) or "none"
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            if attr == "send":
                tag_node = next(
                    (kw.value for kw in node.keywords if kw.arg == "tag"), None
                )
                if tag_node is None:
                    tag: str | None = "default"
                elif isinstance(tag_node, ast.Constant) and isinstance(
                    tag_node.value, str
                ):
                    tag = tag_node.value
                else:
                    yield self.finding(
                        module, node,
                        f"send with a non-constant tag cannot be checked "
                        f"against the {phases} contract",
                    )
                    continue
                if tag not in tags:
                    yield self.finding(
                        module, node,
                        f"send tag {tag!r} is not declared by the {phases} "
                        f"contract (declared: {declared})",
                    )
            elif attr in self._COLLECTIVE_CALLS:
                if not any(k in kinds for k in self._COLLECTIVE_CALLS[attr]):
                    yield self.finding(
                        module, node,
                        f"`{attr}` has no matching clause in the {phases} "
                        "contract",
                    )


@register
class SwallowedErrorRule(LintRule):
    """An ``except`` body that only ``pass``es erases the failure.

    Fault injection, checkpoint verification, and crash recovery all
    communicate through exceptions; an ``except: pass`` (or a broad
    ``except Exception: pass``) on their paths turns an injected fault
    or a corrupt checkpoint into silent success — the chaos campaign
    then "passes" a run that never exercised the recovery it claims to.
    Handlers that swallow a *fault- or checkpoint-flavoured* exception,
    or any bare/broad catch, are errors; swallowing a specific narrow
    exception is a warning.  Legitimate swallows (e.g. closing an
    already-broken pipe on exit) must say why in a suppression comment.
    """

    name = "swallowed-error"
    severity = ERROR
    description = (
        "except body only passes, dropping the exception; handle it, "
        "re-raise, or justify the swallow in a suppression comment"
    )

    _BROAD = {"Exception", "BaseException"}
    #: Name fragments marking exceptions the robustness machinery
    #: signals through — swallowing these always defeats it.
    _CRITICAL_MARKERS = (
        "Fault", "Checkpoint", "Corruption", "Crash", "Recovery",
        "Unrecoverable", "Retries",
    )

    @staticmethod
    def _only_passes(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or bare `...`
            return False
        return True

    @staticmethod
    def _type_names(node: ast.AST | None) -> list[str]:
        if node is None:
            return []
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        names = []
        for expr in exprs:
            dotted = _dotted(expr)
            if dotted is not None:
                names.append(dotted.rsplit(".", 1)[-1])
        return names

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._only_passes(node.body):
                continue
            names = self._type_names(node.type)
            if node.type is None:
                severity, what = ERROR, "bare `except:`"
            elif any(n in self._BROAD for n in names):
                severity = ERROR
                what = f"broad `except {', '.join(names)}`"
            elif any(
                marker in n
                for n in names
                for marker in self._CRITICAL_MARKERS
            ):
                severity = ERROR
                what = (
                    f"`except {', '.join(names)}` on a fault/checkpoint "
                    "signal path"
                )
            else:
                severity = WARNING
                what = f"`except {', '.join(names) or '?'}`"
            yield Finding(
                rule=self.name,
                severity=severity,
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{what} swallows the exception without handling it; "
                    "recover, re-raise, or suppress with a justification"
                ),
            )
