"""CuSP: a customizable streaming edge partitioner for distributed graph
analytics — a faithful reproduction of Hoang et al., IPDPS 2019.

Public API quick tour::

    from repro import CuSP, make_policy, get_dataset
    from repro.analytics import Engine, BFS, default_source

    graph = get_dataset("clueweb", "small")
    dg = CuSP(num_partitions=8, policy="CVC").partition(graph)
    dg.validate(graph)                       # structural invariants
    print(dg.replication_factor(), dg.breakdown.total)

    result = Engine(dg).run(BFS(default_source(graph)))
    print(result.values[:10], result.time)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    CuSP,
    DistributedGraph,
    LocalPartition,
    PAPER_POLICIES,
    Policy,
    make_policy,
    policy_names,
)
from .graph import CSRGraph, dataset_names, get_dataset
from .runtime import REPRO_CALIBRATED, STAMPEDE2, CostModel, SimulatedCluster

__version__ = "1.0.0"

__all__ = [
    "CuSP",
    "Policy",
    "make_policy",
    "policy_names",
    "PAPER_POLICIES",
    "DistributedGraph",
    "LocalPartition",
    "CSRGraph",
    "get_dataset",
    "dataset_names",
    "CostModel",
    "STAMPEDE2",
    "REPRO_CALIBRATED",
    "SimulatedCluster",
    "__version__",
]
