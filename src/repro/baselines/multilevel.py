"""Multilevel offline edge-cut partitioner (Metis-like baseline).

The paper's Table I lists Metis [8] as the classic offline edge-cut
partitioner (too slow/memory-hungry for the web-crawl inputs, which is
why the evaluation uses XtraPulp instead).  For completeness the
reproduction includes a from-scratch multilevel partitioner in the Metis
mold:

1. **Coarsen**: repeatedly contract a heavy-edge matching until the graph
   is small;
2. **Initial partition**: contiguous blocks by coarse vertex weight;
3. **Uncoarsen + refine**: project labels back level by level, running a
   constrained label-propagation refinement at each level (a practical
   stand-in for FM refinement that keeps everything vectorizable).

It produces a vertex labeling (outgoing edge-cut), assembled into the
standard :class:`~repro.core.partition.DistributedGraph` like the other
baselines.  It is a single-machine offline algorithm; it reports no
simulated distributed timing.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import DistributedGraph
from ..graph.csr import CSRGraph
from .common import assemble_edge_cut

__all__ = ["MultilevelPartitioner"]


class _Level:
    """One coarsening level: symmetric weighted adjacency + vertex map."""

    def __init__(self, src, dst, weight, vertex_weight, fine_to_coarse):
        self.src = src
        self.dst = dst
        self.weight = weight
        self.vertex_weight = vertex_weight
        self.fine_to_coarse = fine_to_coarse

    @property
    def num_nodes(self) -> int:
        return self.vertex_weight.size


class MultilevelPartitioner:
    """Metis-style multilevel edge-cut partitioner."""

    def __init__(
        self,
        num_partitions: int,
        coarsen_until: int = 128,
        max_levels: int = 20,
        refine_iters: int = 4,
        imbalance: float = 1.1,
        seed: int = 0,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if coarsen_until < num_partitions:
            coarsen_until = num_partitions
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1")
        self.num_partitions = num_partitions
        self.coarsen_until = coarsen_until
        self.max_levels = max_levels
        self.refine_iters = refine_iters
        self.imbalance = imbalance
        self.seed = seed

    # ------------------------------------------------------------------
    def partition(self, graph: CSRGraph) -> DistributedGraph:
        labels = self.partition_labels(graph)
        return assemble_edge_cut(
            graph, labels, self.num_partitions, policy_name="Multilevel"
        )

    def partition_labels(self, graph: CSRGraph) -> np.ndarray:
        n = graph.num_nodes
        if n == 0:
            return np.zeros(0, dtype=np.int32)
        if self.num_partitions == 1:
            return np.zeros(n, dtype=np.int32)

        # Build the symmetric weighted edge list (parallel edges merged).
        src, dst = graph.edges()
        u = np.concatenate([src, dst])
        v = np.concatenate([dst, src])
        keep = u != v
        u, v = u[keep], v[keep]
        w = np.ones(u.size, dtype=np.int64)
        u, v, w = _merge_parallel(u, v, w, n)
        vertex_weight = np.ones(n, dtype=np.int64)

        # Coarsen.
        levels: list[_Level] = []
        for _ in range(self.max_levels):
            if vertex_weight.size <= self.coarsen_until or u.size == 0:
                break
            mapping, coarse_n = _heavy_edge_matching(
                u, v, w, vertex_weight.size, self.seed + len(levels)
            )
            if coarse_n >= vertex_weight.size:
                break
            levels.append(_Level(u, v, w, vertex_weight, mapping))
            cu, cv = mapping[u], mapping[v]
            keep = cu != cv
            cu, cv, cw = _merge_parallel(cu[keep], cv[keep], w[keep], coarse_n)
            cvw = np.bincount(mapping, weights=vertex_weight, minlength=coarse_n)
            u, v, w = cu, cv, cw
            vertex_weight = cvw.astype(np.int64)

        # Initial partition of the coarsest graph: balanced blocks by
        # cumulative vertex weight.
        labels = self._initial(vertex_weight)
        labels = self._refine(u, v, w, vertex_weight, labels)

        # Uncoarsen and refine.
        for level in reversed(levels):
            labels = labels[level.fine_to_coarse]
            labels = self._refine(
                level.src, level.dst, level.weight, level.vertex_weight, labels
            )
        return labels.astype(np.int32)

    # ------------------------------------------------------------------
    def _initial(self, vertex_weight: np.ndarray) -> np.ndarray:
        """Contiguous blocks of roughly equal cumulative vertex weight."""
        cum = np.cumsum(vertex_weight)
        total = cum[-1]
        targets = total * np.arange(1, self.num_partitions) / self.num_partitions
        bounds = np.searchsorted(cum, targets, side="left")
        labels = np.searchsorted(
            bounds, np.arange(vertex_weight.size), side="right"
        )
        return labels.astype(np.int64)

    def _refine(self, u, v, w, vertex_weight, labels) -> np.ndarray:
        """Constrained weighted label propagation (FM stand-in)."""
        n = vertex_weight.size
        k = self.num_partitions
        labels = labels.astype(np.int64).copy()
        total_w = float(vertex_weight.sum())
        cap = self.imbalance * total_w / k
        for _ in range(self.refine_iters):
            if u.size == 0:
                break
            gains_to = np.zeros((n, k), dtype=np.float64)
            np.add.at(gains_to, (u, labels[v]), w)
            current = gains_to[np.arange(n), labels]
            desired = np.argmax(gains_to, axis=1)
            gain = gains_to[np.arange(n), desired] - current
            movers = np.flatnonzero(gain > 0)
            if movers.size == 0:
                break
            # Strongest gains first; respect capacity.
            movers = movers[np.argsort(-gain[movers], kind="stable")]
            load = np.bincount(labels, weights=vertex_weight, minlength=k)
            moved = 0
            for vtx in movers:
                dest = desired[vtx]
                if load[dest] + vertex_weight[vtx] > cap:
                    continue
                load[dest] += vertex_weight[vtx]
                load[labels[vtx]] -= vertex_weight[vtx]
                labels[vtx] = dest
                moved += 1
            if moved == 0:
                break
        return labels


def _merge_parallel(u, v, w, n):
    """Merge parallel edges, summing weights."""
    if u.size == 0:
        return u, v, w
    key = u.astype(np.int64) * n + v
    order = np.argsort(key, kind="stable")
    key, u, v, w = key[order], u[order], v[order], w[order]
    boundary = np.empty(key.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = key[1:] != key[:-1]
    group = np.cumsum(boundary) - 1
    merged_w = np.bincount(group, weights=w).astype(np.int64)
    return u[boundary], v[boundary], merged_w


def _heavy_edge_matching(u, v, w, n, seed):
    """Greedy heavy-edge matching; returns (fine->coarse map, coarse size).

    Edges are visited heaviest first; each vertex is matched at most once.
    Unmatched vertices become singleton coarse vertices.
    """
    order = np.argsort(-w, kind="stable")
    match = np.full(n, -1, dtype=np.int64)
    for e in order:
        a, b = int(u[e]), int(v[e])
        if match[a] == -1 and match[b] == -1 and a != b:
            match[a] = b
            match[b] = a
    mapping = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for vtx in range(n):
        if mapping[vtx] != -1:
            continue
        mapping[vtx] = next_id
        partner = match[vtx]
        if partner != -1 and mapping[partner] == -1:
            mapping[partner] = next_id
        next_id += 1
    return mapping, next_id
