"""Shared helpers for baseline partitioners.

Baselines produce a *vertex label* array (an edge-cut: every out-edge
follows its source's label).  :func:`assemble_edge_cut` materializes the
same :class:`~repro.core.partition.DistributedGraph` structure CuSP
produces, so baseline partitions can be loaded into the analytics engine
exactly the way the paper loads XtraPulp partitions into D-Galois (§V-A).
"""

from __future__ import annotations

import numpy as np

from ..core.partition import DistributedGraph, LocalPartition
from ..graph.csr import CSRGraph
from ..runtime.stats import TimeBreakdown

__all__ = ["assemble_edge_cut"]


def assemble_edge_cut(
    graph: CSRGraph,
    labels: np.ndarray,
    num_partitions: int,
    policy_name: str,
    breakdown: TimeBreakdown | None = None,
) -> DistributedGraph:
    """Build a distributed graph from a vertex-label edge-cut.

    Vertex ``v`` is mastered on partition ``labels[v]``; every outgoing
    edge of ``v`` is owned there too (an outgoing edge-cut, §II-A1).
    """
    labels = np.asarray(labels, dtype=np.int32)
    n = graph.num_nodes
    if labels.shape != (n,):
        raise ValueError("labels must have one entry per node")
    if labels.size and (labels.min() < 0 or labels.max() >= num_partitions):
        raise ValueError("labels out of range")
    src, dst = graph.edges()
    partitions = []
    for j in range(num_partitions):
        owned = labels[src] == j
        s, d = src[owned], dst[owned]
        w = graph.edge_data[owned] if graph.is_weighted else None
        mastered = np.flatnonzero(labels == j).astype(np.int64)
        endpoints = np.unique(np.concatenate([s, d, mastered]))
        is_master = labels[endpoints] == j
        ordered = np.concatenate([endpoints[is_master], endpoints[~is_master]])
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[ordered] = np.arange(ordered.size)
        local = CSRGraph.from_edges(
            lookup[s], lookup[d], num_nodes=ordered.size, edge_data=w
        )
        partitions.append(
            LocalPartition(
                host=j,
                global_ids=ordered,
                num_masters=int(is_master.sum()),
                master_host=labels[ordered].astype(np.int32),
                local_graph=local,
                _lookup=lookup,
            )
        )
    return DistributedGraph(
        partitions=partitions,
        masters=labels,
        num_global_nodes=n,
        num_global_edges=graph.num_edges,
        policy_name=policy_name,
        invariant="edge-cut",
        breakdown=breakdown,
    )
