"""XtraPulp-style offline label-propagation partitioner (the paper's
comparison baseline, §V).

XtraPulp [9] is the distributed implementation of PuLP: a multi-constraint
(vertex *and* edge balance) label-propagation edge-cut partitioner.  It
makes several complete passes over the graph — initialization, label
propagation to pull vertices toward their neighbors, and balancing passes
to repair constraint violations — with global reductions between passes.
That iterate-over-everything structure is precisely why the paper's
streaming partitioner beats it on partitioning time (§V-B), so the
reproduction keeps it:

* semi-synchronous label propagation (all vertices propose moves from the
  current labeling; moves are applied subject to per-partition capacity,
  deterministically by vertex order),
* alternating vertex-weighted and edge-weighted balance objectives,
* per-pass cost accounting: every pass scans all edges, reconciles
  partition sizes with an allreduce, and ships boundary label updates.

The output is a genuine edge-cut labeling loaded into the same
:class:`~repro.core.partition.DistributedGraph` structure CuSP produces.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import DistributedGraph
from ..core.reading import compute_read_ranges, read_bytes_for_range
from ..graph.csr import CSRGraph
from ..runtime.cluster import SimulatedCluster
from ..runtime.cost_model import STAMPEDE2, CostModel
from .common import assemble_edge_cut

__all__ = ["XtraPulp"]


class XtraPulp:
    """Offline multi-constraint label-propagation edge-cut partitioner.

    Parameters mirror PuLP's: ``outer_iters`` alternations of label
    propagation (``lp_iters`` passes, vertex-balance constrained) and
    balancing (``balance_iters`` passes, edge-balance constrained);
    ``vertex_imbalance`` / ``edge_imbalance`` are the allowed max/mean
    ratios (PuLP defaults: 1.10 vertex, 1.50 edge).
    """

    def __init__(
        self,
        num_partitions: int,
        outer_iters: int = 3,
        lp_iters: int = 3,
        balance_iters: int = 2,
        vertex_imbalance: float = 1.10,
        edge_imbalance: float = 1.50,
        cost_model: CostModel = STAMPEDE2,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if outer_iters < 1 or lp_iters < 0 or balance_iters < 0:
            raise ValueError("iteration counts must be sensible")
        if vertex_imbalance < 1.0 or edge_imbalance < 1.0:
            raise ValueError("imbalance ratios must be >= 1")
        self.num_partitions = num_partitions
        self.outer_iters = outer_iters
        self.lp_iters = lp_iters
        self.balance_iters = balance_iters
        self.vertex_imbalance = vertex_imbalance
        self.edge_imbalance = edge_imbalance
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def partition(self, graph: CSRGraph) -> DistributedGraph:
        """Partition ``graph``; returns the edge-cut with timing breakdown.

        As in the paper's measurement, XtraPulp's time covers graph
        reading and master (label) assignment only — it has no built-in
        graph construction (§V-A) — but the returned object still carries
        constructed partitions so it can be fed to the analytics engine,
        exactly like loading XtraPulp output into D-Galois.
        """
        k = self.num_partitions
        cluster = SimulatedCluster(k, cost_model=self.cost_model)
        ranges = compute_read_ranges(graph, k)

        with cluster.phase("Graph Reading") as ph:
            for h, (start, stop) in enumerate(ranges):
                ph.add_disk(h, read_bytes_for_range(graph, start, stop))

        labels = self._initial_labels(graph)
        undirected = self._adjacency_both_ways(graph)
        ones = np.ones(graph.num_nodes, dtype=np.int64)
        degrees = np.maximum(graph.out_degree(), 1)
        vertex_constraint = (ones, self.vertex_imbalance)
        edge_constraint = (degrees, self.edge_imbalance)
        with cluster.phase("Label Propagation") as ph:
            for _ in range(self.outer_iters):
                for _ in range(self.lp_iters):
                    labels = self._lp_pass(
                        graph, undirected, labels, [vertex_constraint]
                    )
                    self._charge_pass(ph, graph, ranges, labels)
                for _ in range(self.balance_iters):
                    labels = self._lp_pass(
                        graph, undirected, labels,
                        [edge_constraint, vertex_constraint],
                    )
                    self._charge_pass(ph, graph, ranges, labels)

        with cluster.phase("Refinement") as ph:
            labels = self._lp_pass(
                graph, undirected, labels,
                [vertex_constraint, edge_constraint],
            )
            self._charge_pass(ph, graph, ranges, labels)

        return assemble_edge_cut(
            graph, labels, k, policy_name="XtraPulp",
            breakdown=cluster.breakdown(),
        )

    def partition_labels(self, graph: CSRGraph) -> np.ndarray:
        """Just the vertex labels (no assembly, no timing)."""
        return self.partition(graph).masters

    # ------------------------------------------------------------------
    # Algorithm pieces
    # ------------------------------------------------------------------
    def _initial_labels(self, graph: CSRGraph) -> np.ndarray:
        """Contiguous block initialization (PuLP's default)."""
        n = graph.num_nodes
        block = -(-n // self.num_partitions) if n else 1
        return (np.arange(n, dtype=np.int64) // block).astype(np.int32)

    @staticmethod
    def _adjacency_both_ways(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) over the union of out- and in-edges.

        Label propagation pulls a vertex toward *all* its neighbors; PuLP
        operates on the undirected structure.
        """
        src, dst = graph.edges()
        return np.concatenate([src, dst]), np.concatenate([dst, src])

    def _lp_pass(
        self,
        graph: CSRGraph,
        undirected: tuple[np.ndarray, np.ndarray],
        labels: np.ndarray,
        constraints: list[tuple[np.ndarray, float]],
    ) -> np.ndarray:
        """One semi-synchronous multi-constraint label-propagation pass.

        ``constraints`` is a list of (per-vertex weight, allowed max/mean
        ratio) pairs; a move is accepted only while the destination stays
        within *every* constraint's capacity (PuLP's multi-constraint
        formulation).
        """
        n = graph.num_nodes
        k = self.num_partitions
        if n == 0:
            return labels
        u_src, u_dst = undirected
        # Neighbor-label histogram per vertex, one bincount over the edges.
        counts = np.bincount(
            u_src.astype(np.int64) * k + labels[u_dst], minlength=n * k
        ).reshape(n, k)
        # Hysteresis: a vertex only moves for a strictly better label.
        stay_bonus = counts[np.arange(n), labels]
        desired = np.argmax(counts, axis=1).astype(np.int32)
        gains = counts[np.arange(n), desired] - stay_bonus
        movers = np.flatnonzero(gains > 0)
        if movers.size == 0:
            return labels
        new_labels = labels.copy()
        caps = []
        loads = []
        for weights, imbalance in constraints:
            caps.append(imbalance * float(weights.sum()) / k)
            loads.append(
                np.bincount(labels, weights=weights, minlength=k).astype(np.float64)
            )
        # Deterministic application in vertex order; a vectorized prefix
        # trick per destination caps accepted moves at remaining capacity
        # under the tightest constraint.
        for dest in range(k):
            cand = movers[desired[movers] == dest]
            if cand.size == 0:
                continue
            take = cand.size
            for (weights, _), cap, load in zip(constraints, caps, loads):
                room = cap - load[dest]
                if room <= 0:
                    take = 0
                    break
                w = weights[cand].astype(np.float64)
                take = min(
                    take, int(np.searchsorted(np.cumsum(w), room, side="right"))
                )
            accepted = cand[:take]
            if accepted.size == 0:
                continue
            for (weights, _), load in zip(constraints, loads):
                load[dest] += float(weights[accepted].sum())
                load -= np.bincount(
                    labels[accepted], weights=weights[accepted], minlength=k
                )
            new_labels[accepted] = dest
        return new_labels

    def _charge_pass(self, phase, graph, ranges, labels) -> None:
        """Cost of one whole-graph pass (the baseline's signature expense).

        Every host scans its share of edges twice (out + in adjacency),
        reconciles partition loads with an allreduce, and ships its
        boundary vertices' labels to the hosts holding their neighbors.
        """
        src, dst = graph.edges()
        boundary = labels[src] != labels[dst]
        cut = int(boundary.sum())
        num_hosts = len(ranges)
        for h, (start, stop) in enumerate(ranges):
            edges_here = int(graph.indptr[stop] - graph.indptr[start])
            phase.add_compute(h, 2.0 * edges_here + (stop - start))
        # Boundary label exchange, attributed to the source's reading host.
        if cut and num_hosts > 1:
            cut_src = src[boundary]
            bounds = np.array([r[0] for r in ranges] + [graph.num_nodes])
            owner = np.searchsorted(bounds, cut_src, side="right") - 1
            per_host = np.bincount(owner, minlength=num_hosts)
            for h in range(num_hosts):
                if per_host[h]:
                    peer = (h + 1) % num_hosts
                    phase.comm.send(
                        h, peer, None, tag="labels",
                        nbytes=int(per_host[h]) * 8,
                        logical_messages=1,
                    )
        phase.comm.allreduce_sum(
            [np.zeros(2 * self.num_partitions, dtype=np.int64)] * num_hosts
        )
        phase.comm.barrier()
