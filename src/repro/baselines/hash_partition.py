"""Hash/random vertex partitioner — the trivial lower bound baseline.

Not in the paper's evaluation, but useful for tests and as a quality
floor: a hash edge-cut balances vertices perfectly and ignores structure
entirely, so any structure-aware policy should cut no worse.
"""

from __future__ import annotations

import numpy as np

from ..core.partition import DistributedGraph
from ..graph.csr import CSRGraph
from .common import assemble_edge_cut

__all__ = ["hash_partition"]


def hash_partition(graph: CSRGraph, num_partitions: int) -> DistributedGraph:
    """Edge-cut with vertices assigned by a deterministic hash."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    ids = np.arange(graph.num_nodes, dtype=np.uint64)
    labels = (
        (ids * np.uint64(11400714819323198485)) >> np.uint64(40)
    ) % np.uint64(num_partitions)
    return assemble_edge_cut(
        graph, labels.astype(np.int32), num_partitions, policy_name="Hash"
    )
