"""Baseline partitioners: XtraPulp-style offline LP and hash edge-cut."""

from .common import assemble_edge_cut
from .hash_partition import hash_partition
from .multilevel import MultilevelPartitioner
from .xtrapulp import XtraPulp

__all__ = [
    "XtraPulp",
    "MultilevelPartitioner",
    "hash_partition",
    "assemble_edge_cut",
]
