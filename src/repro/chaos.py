"""Seeded chaos campaigns over the full fault family (``repro chaos``).

A chaos campaign is the robustness analogue of the experiment suite: it
derives N deterministic fault plans spanning every fault family the
runtime models — message faults (transient failures, drops, duplicates),
payload corruption, boundary and mid-phase host crashes, stragglers
under run supervision, torn durable-checkpoint writes, and kill -9
mid-checkpoint (simulated by running a planned crash with a zero retry
budget, then resuming the interrupted checkpoint in a fresh
partitioner) — and asserts, for every plan, the headline guarantee:

* the resulting partition is **bit-identical** to the fault-free run
  (masters, per-host global ids, local CSR arrays);
* CommSan audits every phase with **zero violations** (so all recovery,
  re-request and migration traffic obeys the conservation laws);
* scenario-specific postconditions hold (a torn write was detected and
  repaired, a straggler was quarantined, a kill/resume pair reproduces
  the uninterrupted :class:`~repro.runtime.stats.TimeBreakdown` exactly).

Campaigns are pure functions of ``(seed, plans, hosts, policy)``; the CI
gate pins one and must stay green forever.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .core import CuSP
from .core.partition import DistributedGraph
from .graph import CSRGraph, erdos_renyi
from .runtime.faults import FaultPlan, HostCrash, UnrecoverableClusterError

__all__ = ["ChaosScenario", "ChaosResult", "ChaosReport", "derive_scenarios",
           "run_campaign"]

#: Checkpoint stages a torn-write scenario may target (construction is
#: never checkpointed).
_STAGES = ("reading", "masters", "assignment", "allocation")


@dataclass(frozen=True)
class ChaosScenario:
    """One derived fault plan plus how to run and judge it."""

    index: int
    kind: str
    plan: FaultPlan
    #: Run under the straggler supervisor (and expect a quarantine).
    supervise: bool = False
    #: Run with a durable checkpoint directory.
    durable: bool = False
    #: Kill the run (zero retry budget) and resume it in a fresh
    #: partitioner, asserting the resumed run matches the uninterrupted
    #: reference exactly.
    kill_resume: bool = False

    def describe(self) -> str:
        return f"#{self.index} {self.kind}: {self.plan.describe()}"


@dataclass(frozen=True)
class ChaosResult:
    scenario: ChaosScenario
    ok: bool
    detail: str


@dataclass
class ChaosReport:
    results: list[ChaosResult] = field(default_factory=list)

    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> list[ChaosResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        n = len(self.results)
        bad = len(self.failures)
        if bad:
            return f"{bad} of {n} chaos plan(s) failed"
        return f"{n} chaos plan(s) survived bit-identically"

    def render_text(self) -> str:
        lines = []
        for r in self.results:
            mark = "ok  " if r.ok else "FAIL"
            lines.append(f"{mark} {r.scenario.describe()} — {r.detail}")
        return "\n".join(lines)


def derive_scenarios(
    plans: int, seed: int, num_hosts: int = 4
) -> list[ChaosScenario]:
    """Derive ``plans`` deterministic scenarios cycling the fault families.

    Parameters are jittered per scenario from ``default_rng([seed, i])``,
    so a campaign is reproducible from ``(seed, plans, num_hosts)`` alone.
    """
    if plans < 1:
        raise ValueError("plans must be >= 1")
    if num_hosts < 2:
        raise ValueError("chaos campaigns need >= 2 hosts")
    kinds = (
        "message-faults",
        "boundary-crash",
        "midphase-crash",
        "straggler",
        "corrupt-payload",
        "torn-checkpoint",
        "kill-resume",
    )
    out: list[ChaosScenario] = []
    for i in range(plans):
        rng = np.random.default_rng([seed, i])
        kind = kinds[i % len(kinds)]
        plan_seed = int(rng.integers(0, 2**31))
        host = int(rng.integers(0, num_hosts))
        phase = int(rng.integers(0, 5))
        if kind == "message-faults":
            plan = FaultPlan(
                seed=plan_seed,
                send_failure_rate=float(rng.choice([0.02, 0.05, 0.1])),
                drop_rate=float(rng.choice([0.0, 0.02, 0.05])),
                duplicate_rate=float(rng.choice([0.0, 0.02])),
            )
            out.append(ChaosScenario(i, kind, plan))
        elif kind == "boundary-crash":
            plan = FaultPlan(
                seed=plan_seed,
                drop_rate=float(rng.choice([0.0, 0.02])),
                crashes=(HostCrash(host=host, phase=phase),),
            )
            out.append(ChaosScenario(i, kind, plan, durable=bool(i % 2)))
        elif kind == "midphase-crash":
            plan = FaultPlan(
                seed=plan_seed,
                crashes=(
                    HostCrash(
                        host=host, phase=phase,
                        op_count=int(rng.integers(1, 40)),
                    ),
                ),
            )
            out.append(ChaosScenario(i, kind, plan, durable=bool(i % 2)))
        elif kind == "straggler":
            plan = FaultPlan(
                seed=plan_seed,
                slow_hosts={host: float(rng.uniform(0.005, 0.02))},
            )
            out.append(ChaosScenario(i, kind, plan, supervise=True))
        elif kind == "corrupt-payload":
            plan = FaultPlan(
                seed=plan_seed,
                corrupt_rate=float(rng.choice([0.2, 0.3, 0.4])),
            )
            out.append(ChaosScenario(i, kind, plan))
        elif kind == "torn-checkpoint":
            stage = _STAGES[int(rng.integers(0, len(_STAGES)))]
            plan = FaultPlan(seed=plan_seed, torn_checkpoints=(stage,))
            out.append(ChaosScenario(i, kind, plan, durable=True))
        else:  # kill-resume
            plan = FaultPlan(
                seed=plan_seed,
                crashes=(
                    HostCrash(
                        host=host,
                        phase=int(rng.integers(1, 5)),
                        op_count=int(rng.integers(1, 40)),
                    ),
                ),
            )
            out.append(
                ChaosScenario(i, kind, plan, durable=True, kill_resume=True)
            )
    return out


def _same_partition(a: DistributedGraph, b: DistributedGraph) -> bool:
    if not np.array_equal(a.masters, b.masters):
        return False
    for pa, pb in zip(a.partitions, b.partitions):
        if not np.array_equal(pa.global_ids, pb.global_ids):
            return False
        if pa.num_masters != pb.num_masters:
            return False
        if not np.array_equal(pa.local_graph.indptr, pb.local_graph.indptr):
            return False
        if not np.array_equal(pa.local_graph.indices, pb.local_graph.indices):
            return False
    return True


def _run_scenario(
    scenario: ChaosScenario,
    graph: CSRGraph,
    base: DistributedGraph,
    policy: str,
    k: int,
    executor: str = "serial",
) -> ChaosResult:
    plan = scenario.plan
    kwargs: dict[str, Any] = {
        "fault_plan": plan,
        "sanitizer": True,
        "supervise": scenario.supervise,
        "executor": executor,
    }

    def finish(
        cusp: CuSP, dg: DistributedGraph, extra: str = ""
    ) -> ChaosResult:
        if cusp.sanitizer.violations:
            return ChaosResult(
                scenario, False,
                f"{len(cusp.sanitizer.violations)} CommSan violation(s): "
                f"{cusp.sanitizer.violations[0]}",
            )
        if not _same_partition(dg, base):
            return ChaosResult(
                scenario, False, "partition differs from the fault-free run"
            )
        report = cusp.last_fault_report
        detail = report.summary() if report is not None else "no faults"
        if scenario.supervise:
            sup = cusp.last_supervisor_report
            if not sup.mitigations:
                return ChaosResult(
                    scenario, False,
                    "straggler plan ran supervised but nothing was "
                    "quarantined",
                )
            detail += f"; {sup.summary()}"
        if scenario.plan.torn_checkpoints:
            if report is None or report.torn_repairs < 1:
                return ChaosResult(
                    scenario, False,
                    "torn-checkpoint plan never tore a verified write",
                )
        return ChaosResult(scenario, True, detail + extra)

    if scenario.kill_resume:
        with tempfile.TemporaryDirectory() as ckpt:
            # The uninterrupted reference for this plan (recovers
            # in-process with the normal retry budget).
            ref = CuSP(k, policy, **kwargs)
            ref_dg = ref.partition(graph)
            # kill -9: a zero retry budget makes the planned crash
            # fatal, leaving a partial durable checkpoint behind.
            victim = CuSP(
                k, policy, fault_plan=plan, max_retries=0,
                checkpoint_dir=ckpt,
            )
            try:
                victim.partition(graph)
                return ChaosResult(
                    scenario, False, "victim run survived a fatal plan"
                )
            # repro-lint: disable-next-line=swallowed-error -- the victim dying here is the scenario
            except UnrecoverableClusterError:
                pass
            resumed = CuSP(
                k, policy, checkpoint_dir=ckpt, resume=True, **kwargs
            )
            dg = resumed.partition(graph)
            if dg.breakdown.phases != ref_dg.breakdown.phases:
                return ChaosResult(
                    scenario, False,
                    "resumed TimeBreakdown differs from the "
                    "uninterrupted run",
                )
            if resumed.last_fault_report.events != ref.last_fault_report.events:
                return ChaosResult(
                    scenario, False,
                    "resumed fault-event log differs from the "
                    "uninterrupted run",
                )
            return finish(resumed, dg, extra="; resumed bit-exactly")

    if scenario.durable:
        with tempfile.TemporaryDirectory() as ckpt:
            cusp = CuSP(k, policy, checkpoint_dir=ckpt, **kwargs)
            return finish(cusp, cusp.partition(graph))
    cusp = CuSP(k, policy, **kwargs)
    return finish(cusp, cusp.partition(graph))


def run_campaign(
    plans: int = 10,
    seed: int = 7,
    num_hosts: int = 4,
    policy: str = "CVC",
    graph: CSRGraph | None = None,
    verbose: bool = False,
    executor: str = "serial",
) -> ChaosReport:
    """Run a seeded chaos campaign and return its report.

    ``executor`` selects the execution engine for every scenario run;
    the fault-free reference always runs serially, so a non-serial
    campaign additionally proves executor equivalence under chaos.
    """
    if graph is None:
        graph = erdos_renyi(300, 2400, seed=11)
    base = CuSP(num_hosts, policy).partition(graph)
    report = ChaosReport()
    for scenario in derive_scenarios(plans, seed, num_hosts=num_hosts):
        try:
            result = _run_scenario(
                scenario, graph, base, policy, num_hosts, executor=executor
            )
        except Exception as exc:
            result = ChaosResult(
                scenario, False, f"{type(exc).__name__}: {exc}"
            )
        report.results.append(result)
        if verbose:
            print(("ok   " if result.ok else "FAIL ") + scenario.describe())
    return report
