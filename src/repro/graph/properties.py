"""Structural graph properties (the Table III columns)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .formats import gr_file_size

__all__ = ["GraphProperties", "compute_properties", "degree_histogram"]


@dataclass(frozen=True)
class GraphProperties:
    """The properties the paper reports per input graph (Table III)."""

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    max_in_degree: int
    size_on_disk: int  # bytes in the binary CSR format

    def row(self) -> dict:
        """Table III row, formatted like the paper."""
        return {
            "graph": self.name,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "|E|/|V|": round(self.avg_degree, 1),
            "MaxOutDegree": self.max_out_degree,
            "MaxInDegree": self.max_in_degree,
            "SizeOnDisk(MB)": round(self.size_on_disk / 2**20, 2),
        }


def compute_properties(graph: CSRGraph, name: str = "graph") -> GraphProperties:
    """Compute the Table III properties of ``graph``."""
    out_deg = graph.out_degree()
    in_deg = graph.in_degree()
    n, m = graph.num_nodes, graph.num_edges
    return GraphProperties(
        name=name,
        num_nodes=n,
        num_edges=m,
        avg_degree=m / n if n else 0.0,
        max_out_degree=int(out_deg.max(initial=0)),
        max_in_degree=int(in_deg.max(initial=0)),
        size_on_disk=gr_file_size(graph),
    )


def degree_histogram(graph: CSRGraph, direction: str = "out") -> np.ndarray:
    """``hist[d]`` = number of nodes with degree ``d``."""
    if direction == "out":
        deg = graph.out_degree()
    elif direction == "in":
        deg = graph.in_degree()
    else:
        raise ValueError("direction must be 'out' or 'in'")
    return np.bincount(deg)
