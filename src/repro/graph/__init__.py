"""Graph substrate: storage, generators, formats, datasets, properties."""

from .csr import CSRGraph
from .generators import (
    GRAPH500_WEIGHTS,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    kronecker,
    path_graph,
    preferential_attachment,
    rmat,
    star_graph,
    webcrawl_like,
)
from .generators import paper_figure1_graph
from .formats import (
    convert,
    gr_file_size,
    read_edgelist,
    read_gr,
    read_gr_slice,
    read_metis,
    write_edgelist,
    write_gr,
    write_metis,
)
from .properties import GraphProperties, compute_properties, degree_histogram
from .datasets import DATASETS, SCALES, dataset_names, get_dataset
from .transforms import (
    largest_wcc,
    relabel,
    relabel_by_degree,
    remove_self_loops,
    shuffle_labels,
    simplify,
)

__all__ = [
    "CSRGraph",
    "GRAPH500_WEIGHTS",
    "chung_lu",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "grid_graph",
    "kronecker",
    "path_graph",
    "preferential_attachment",
    "rmat",
    "star_graph",
    "webcrawl_like",
    "paper_figure1_graph",
    "convert",
    "gr_file_size",
    "read_edgelist",
    "read_gr",
    "read_gr_slice",
    "read_metis",
    "write_edgelist",
    "write_gr",
    "write_metis",
    "GraphProperties",
    "compute_properties",
    "degree_histogram",
    "DATASETS",
    "SCALES",
    "dataset_names",
    "get_dataset",
    "relabel",
    "relabel_by_degree",
    "shuffle_labels",
    "remove_self_loops",
    "simplify",
    "largest_wcc",
]
