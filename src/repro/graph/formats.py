"""On-disk graph formats and converters.

CuSP consumes graphs stored on disk in CSR or CSC binary form and "provides
converters between these and other graph formats like edge-lists"
(paper §III-A).  This module implements:

* ``.gr``-style binary CSR files (modeled on the Galois format: a fixed
  header followed by the row-pointer and destination arrays, plus optional
  edge data),
* whitespace edge-list text files,
* METIS adjacency text files (1-indexed, undirected),

and converters among them.  The binary reader can load just a slice of the
edge array, which is how the graph-reading phase gives each simulated host
its contiguous chunk without materializing the whole file per host.
"""

from __future__ import annotations

import io
import os
import struct
from pathlib import Path

import numpy as np

from .csr import CSRGraph

__all__ = [
    "write_gr",
    "read_gr",
    "read_gr_header",
    "read_gr_slice",
    "gr_file_size",
    "write_edgelist",
    "read_edgelist",
    "write_metis",
    "read_metis",
    "convert",
    "GRHeader",
]

_GR_MAGIC = b"CUSPGR01"
_HEADER_STRUCT = struct.Struct("<8sQQB7x")  # magic, num_nodes, num_edges, flags
_FLAG_WEIGHTED = 1


class FormatError(ValueError):
    """Raised for malformed or truncated graph files."""


class GRHeader:
    """Parsed header of a binary ``.gr`` file."""

    __slots__ = ("num_nodes", "num_edges", "weighted")

    def __init__(self, num_nodes: int, num_edges: int, weighted: bool):
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.weighted = weighted

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"GRHeader(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"weighted={self.weighted})"
        )


def write_gr(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` to ``path`` in binary CSR form."""
    flags = _FLAG_WEIGHTED if graph.is_weighted else 0
    with open(path, "wb") as f:
        f.write(_HEADER_STRUCT.pack(_GR_MAGIC, graph.num_nodes, graph.num_edges, flags))
        f.write(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
        f.write(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
        if graph.is_weighted:
            f.write(np.ascontiguousarray(graph.edge_data, dtype=np.int64).tobytes())


def read_gr_header(f: io.BufferedReader) -> GRHeader:
    raw = f.read(_HEADER_STRUCT.size)
    if len(raw) != _HEADER_STRUCT.size:
        raise FormatError("truncated gr header")
    magic, n, m, flags = _HEADER_STRUCT.unpack(raw)
    if magic != _GR_MAGIC:
        raise FormatError(f"bad magic {magic!r}; not a gr file")
    return GRHeader(int(n), int(m), bool(flags & _FLAG_WEIGHTED))


def read_gr(path: str | os.PathLike) -> CSRGraph:
    """Load an entire binary CSR file."""
    with open(path, "rb") as f:
        header = read_gr_header(f)
        indptr = _read_array(f, header.num_nodes + 1)
        indices = _read_array(f, header.num_edges)
        data = _read_array(f, header.num_edges) if header.weighted else None
    return CSRGraph(indptr=indptr, indices=indices, edge_data=data)


def read_gr_slice(
    path: str | os.PathLike, node_start: int, node_stop: int
) -> tuple[GRHeader, np.ndarray, np.ndarray, np.ndarray | None]:
    """Read only the rows [node_start, node_stop) from a binary CSR file.

    Returns ``(header, indptr_slice, indices_slice, edge_data_slice)`` where
    ``indptr_slice`` has ``node_stop - node_start + 1`` entries in *global*
    edge coordinates.  This is what one simulated host reads from "disk".
    """
    with open(path, "rb") as f:
        header = read_gr_header(f)
        if not (0 <= node_start <= node_stop <= header.num_nodes):
            raise ValueError("node range out of bounds")
        base = _HEADER_STRUCT.size
        f.seek(base + node_start * 8)
        indptr_slice = _read_array(f, node_stop - node_start + 1)
        edge_lo = int(indptr_slice[0])
        edge_hi = int(indptr_slice[-1])
        indices_base = base + (header.num_nodes + 1) * 8
        f.seek(indices_base + edge_lo * 8)
        indices_slice = _read_array(f, edge_hi - edge_lo)
        data_slice = None
        if header.weighted:
            data_base = indices_base + header.num_edges * 8
            f.seek(data_base + edge_lo * 8)
            data_slice = _read_array(f, edge_hi - edge_lo)
    return header, indptr_slice, indices_slice, data_slice


def gr_file_size(graph: CSRGraph) -> int:
    """Bytes the graph occupies in the binary format (Table III column)."""
    size = _HEADER_STRUCT.size + (graph.num_nodes + 1) * 8 + graph.num_edges * 8
    if graph.is_weighted:
        size += graph.num_edges * 8
    return size


def _read_array(f, count: int) -> np.ndarray:
    raw = f.read(count * 8)
    if len(raw) != count * 8:
        raise FormatError("truncated gr payload")
    return np.frombuffer(raw, dtype=np.int64).copy()


# ----------------------------------------------------------------------
# Edge-list text format
# ----------------------------------------------------------------------

def write_edgelist(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``src dst [weight]`` lines."""
    src, dst = graph.edges()
    with open(path, "w") as f:
        if graph.is_weighted:
            for s, d, w in zip(src.tolist(), dst.tolist(), graph.edge_data.tolist()):
                f.write(f"{s} {d} {w}\n")
        else:
            for s, d in zip(src.tolist(), dst.tolist()):
                f.write(f"{s} {d}\n")


def read_edgelist(
    path: str | os.PathLike, num_nodes: int | None = None, weighted: bool = False
) -> CSRGraph:
    """Parse an edge-list file; ``#``-prefixed lines are comments."""
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[int] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise FormatError(f"{path}:{lineno}: expected 'src dst [w]'")
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
                if weighted:
                    weights.append(int(parts[2]) if len(parts) > 2 else 1)
            except (ValueError, IndexError) as exc:
                raise FormatError(f"{path}:{lineno}: {exc}") from exc
    data = np.array(weights, dtype=np.int64) if weighted else None
    return CSRGraph.from_edges(
        np.array(srcs, dtype=np.int64),
        np.array(dsts, dtype=np.int64),
        num_nodes=num_nodes,
        edge_data=data,
    )


# ----------------------------------------------------------------------
# METIS adjacency text format (undirected, 1-indexed)
# ----------------------------------------------------------------------

def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the symmetrized graph in METIS adjacency format.

    METIS counts each undirected edge once in the header; self-loops are
    dropped (METIS disallows them).
    """
    sym = graph.symmetrize()
    src, dst = sym.edges()
    keep = src != dst
    src, dst = src[keep], dst[keep]
    undirected = int(src.size) // 2
    with open(path, "w") as f:
        f.write(f"{sym.num_nodes} {undirected}\n")
        indptr = np.zeros(sym.num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=sym.num_nodes), out=indptr[1:])
        for v in range(sym.num_nodes):
            nbrs = dst[indptr[v] : indptr[v + 1]] + 1
            f.write(" ".join(map(str, nbrs.tolist())) + "\n")


def read_metis(path: str | os.PathLike) -> CSRGraph:
    """Parse a METIS adjacency file into a (symmetric) directed graph."""
    with open(path) as f:
        header = f.readline().split()
        if len(header) < 2:
            raise FormatError(f"{path}: malformed METIS header")
        n = int(header[0])
        srcs: list[int] = []
        dsts: list[int] = []
        for v in range(n):
            line = f.readline()
            if line == "":
                raise FormatError(f"{path}: expected {n} adjacency lines")
            for tok in line.split():
                srcs.append(v)
                dsts.append(int(tok) - 1)
    return CSRGraph.from_edges(
        np.array(srcs, dtype=np.int64), np.array(dsts, dtype=np.int64), num_nodes=n
    )


# ----------------------------------------------------------------------
# Generic converter
# ----------------------------------------------------------------------

_READERS = {".gr": read_gr, ".el": read_edgelist, ".metis": read_metis}
_WRITERS = {".gr": write_gr, ".el": write_edgelist, ".metis": write_metis}


def convert(src_path: str | os.PathLike, dst_path: str | os.PathLike) -> CSRGraph:
    """Convert between formats, dispatching on file extension.

    Recognized extensions: ``.gr`` (binary CSR), ``.el`` (edge list),
    ``.metis`` (METIS adjacency).  Returns the loaded graph.
    """
    src_ext = Path(src_path).suffix
    dst_ext = Path(dst_path).suffix
    if src_ext not in _READERS:
        raise ValueError(f"unknown input format {src_ext!r}")
    if dst_ext not in _WRITERS:
        raise ValueError(f"unknown output format {dst_ext!r}")
    graph = _READERS[src_ext](src_path)
    _WRITERS[dst_ext](graph, dst_path)
    return graph
