"""Compressed Sparse Row graph storage.

This is the fundamental in-memory graph representation used throughout the
reproduction, mirroring the on-disk CSR/CSC formats CuSP consumes
(paper §III-A).  A :class:`CSRGraph` stores a directed graph as two NumPy
arrays:

``indptr``
    ``int64`` array of length ``num_nodes + 1``; the outgoing edges of node
    ``v`` occupy ``indices[indptr[v]:indptr[v + 1]]``.
``indices``
    ``int64`` array of length ``num_edges`` holding destination node ids.

An optional ``edge_data`` array of the same length as ``indices`` carries
edge weights (used by sssp).  Interpreting the same arrays as a CSC matrix
yields the incoming-edge view; :meth:`CSRGraph.transpose` converts between
the two (the paper's in-memory transpose, §IV-B5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph"]


def _as_int64(a, name: str) -> np.ndarray:
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=np.int64)


#: Largest node count for which src * num_nodes + dst fits in int64.
_MAX_COMPOSITE_NODES = 3_037_000_499


def _edge_sort_order(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Indices sorting edges by (src, dst), duplicates in input order.

    ``np.lexsort`` runs one comparison sort per key; when the composite
    key ``src * num_nodes + dst`` fits an integer word, a single stable
    (radix) argsort of the fused key yields the identical permutation —
    the key is injective over (src, dst) pairs and stability preserves
    duplicate order — at 2-3x the speed.  Graphs too large for the
    fused key fall back to lexsort.
    """
    if num_nodes >= _MAX_COMPOSITE_NODES:
        return np.lexsort((dst, src))
    key = src * num_nodes + dst
    if num_nodes <= 65536:
        # Keys < 2**32: a narrower dtype halves the radix passes.
        key = key.astype(np.uint32)
    return np.argsort(key, kind="stable")


@dataclass
class CSRGraph:
    """A directed graph in CSR form.

    Parameters
    ----------
    indptr:
        Row-pointer array, length ``num_nodes + 1``, non-decreasing,
        ``indptr[0] == 0`` and ``indptr[-1] == len(indices)``.
    indices:
        Destination node id per edge.
    edge_data:
        Optional per-edge payload (e.g. weights).  ``None`` for unweighted
        graphs.

    The constructor validates the structural invariants; use
    :meth:`from_edges` to build from an edge list.
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_data: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.indptr = _as_int64(self.indptr, "indptr")
        self.indices = _as_int64(self.indices, "indices")
        if self.indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError(
                f"indptr[-1] ({self.indptr[-1]}) must equal len(indices) "
                f"({self.indices.size})"
            )
        if self.indptr.size > 1 and np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = self.num_nodes
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("edge destinations out of range [0, num_nodes)")
        if self.edge_data is not None:
            self.edge_data = np.ascontiguousarray(self.edge_data)
            if self.edge_data.shape[0] != self.indices.size:
                raise ValueError("edge_data must have one entry per edge")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def is_weighted(self) -> bool:
        return self.edge_data is not None

    def out_degree(self, node: int | np.ndarray | None = None) -> np.ndarray | int:
        """Out-degree of ``node``, or of every node when ``node`` is None."""
        degrees = np.diff(self.indptr)
        if node is None:
            return degrees
        if np.isscalar(node):
            return int(degrees[node])
        return degrees[np.asarray(node)]

    def in_degree(self) -> np.ndarray:
        """In-degree of every node (one pass over the edge array)."""
        return np.bincount(self.indices, minlength=self.num_nodes).astype(np.int64)

    def neighbors(self, node: int) -> np.ndarray:
        """Destinations of the outgoing edges of ``node`` (a view)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def edge_weights(self, node: int) -> np.ndarray | None:
        if self.edge_data is None:
            return None
        return self.edge_data[self.indptr[node] : self.indptr[node + 1]]

    def edge_sources(self) -> np.ndarray:
        """Source node id per edge, aligned with ``indices``."""
        return np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
        )

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` arrays for all edges, in CSR order."""
        return self.edge_sources(), self.indices.copy()

    def nbytes(self) -> int:
        """In-memory footprint (bytes) of the arrays."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.edge_data is not None:
            total += self.edge_data.nbytes
        return total

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src,
        dst,
        num_nodes: int | None = None,
        edge_data=None,
        dedup: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel ``src``/``dst`` arrays.

        Edges are sorted by (source, destination).  With ``dedup=True``
        duplicate (src, dst) pairs are removed (keeping the first payload).
        """
        src = _as_int64(src, "src")
        dst = _as_int64(dst, "dst")
        if src.size != dst.size:
            raise ValueError("src and dst must have the same length")
        if num_nodes is None:
            num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if src.size and (src.min() < 0 or src.max() >= num_nodes):
            raise ValueError("edge sources out of range")
        if src.size and (dst.min() < 0 or dst.max() >= num_nodes):
            raise ValueError("edge destinations out of range")
        data = None
        if edge_data is not None:
            data = np.ascontiguousarray(edge_data)
            if data.shape[0] != src.size:
                raise ValueError("edge_data must have one entry per edge")
        order = _edge_sort_order(src, dst, num_nodes)
        src, dst = src[order], dst[order]
        if data is not None:
            data = data[order]
        if dedup and src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=keep[1:])
            src, dst = src[keep], dst[keep]
            if data is not None:
                data = data[keep]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
        return cls(indptr=indptr, indices=dst, edge_data=data)

    @classmethod
    def empty(cls, num_nodes: int) -> "CSRGraph":
        """A graph with ``num_nodes`` vertices and no edges."""
        return cls(
            indptr=np.zeros(num_nodes + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """The reverse graph (in-memory transpose; CSR -> CSC view).

        Implemented with a counting sort over destinations so it runs in
        O(V + E) without per-edge Python work.
        """
        n = self.num_nodes
        in_deg = np.bincount(self.indices, minlength=n)
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=new_indptr[1:])
        order = np.argsort(self.indices, kind="stable")
        new_indices = self.edge_sources()[order]
        new_data = None if self.edge_data is None else self.edge_data[order]
        return CSRGraph(indptr=new_indptr, indices=new_indices, edge_data=new_data)

    def symmetrize(self) -> "CSRGraph":
        """Undirected version: union of edges and reverse edges, deduplicated.

        Used for connected components, which the paper runs on symmetric
        versions of the graphs (§V-A).
        """
        src, dst = self.edges()
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        data = None
        if self.edge_data is not None:
            data = np.concatenate([self.edge_data, self.edge_data])
        return CSRGraph.from_edges(
            all_src, all_dst, num_nodes=self.num_nodes, edge_data=data, dedup=True
        )

    def with_uniform_weights(self, value=1) -> "CSRGraph":
        """Copy of the graph with every edge weight set to ``value``."""
        return CSRGraph(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            edge_data=np.full(self.num_edges, value, dtype=np.int64),
        )

    def with_random_weights(self, low: int = 1, high: int = 100, seed: int = 0) -> "CSRGraph":
        """Copy with integer edge weights drawn uniformly from [low, high)."""
        rng = np.random.default_rng(seed)
        return CSRGraph(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            edge_data=rng.integers(low, high, size=self.num_edges, dtype=np.int64),
        )

    def subgraph_rows(self, start: int, stop: int) -> "CSRGraph":
        """CSR slice containing the outgoing edges of nodes [start, stop).

        Node ids are preserved (the result still has ``num_nodes`` rows);
        rows outside the range are empty.  This mirrors how a CuSP host
        holds the contiguous block of the edge array it read from disk.
        """
        if not (0 <= start <= stop <= self.num_nodes):
            raise ValueError("invalid node range")
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        indptr[start : stop + 1] = self.indptr[start : stop + 1] - lo
        indptr[stop + 1 :] = indptr[stop]
        data = None if self.edge_data is None else self.edge_data[lo:hi]
        return CSRGraph(indptr=indptr, indices=self.indices[lo:hi], edge_data=data)

    # ------------------------------------------------------------------
    # Comparison / debugging
    # ------------------------------------------------------------------
    def edge_set(self) -> set[tuple[int, int]]:
        """Edges as a Python set (testing helper; O(E) memory)."""
        src, dst = self.edges()
        return set(zip(src.tolist(), dst.tolist()))

    def __eq__(self, other) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        ):
            return False
        if (self.edge_data is None) != (other.edge_data is None):
            return False
        if self.edge_data is not None:
            return np.array_equal(self.edge_data, other.edge_data)
        return True

    def __repr__(self) -> str:
        w = ", weighted" if self.is_weighted else ""
        return f"CSRGraph(|V|={self.num_nodes}, |E|={self.num_edges}{w})"
