"""Synthetic graph generators.

The paper evaluates on one synthetic Kronecker graph (kron30, generated with
the graph500 weights 0.57/0.19/0.19/0.05) and four public web-crawls.  The
web-crawls are not redistributable at this scale, so :mod:`repro.graph.datasets`
builds scaled stand-ins from the generators here, matched on the structural
properties Table III reports (|E|/|V| ratio, extreme in-degree skew with
modest out-degree skew).

All generators are deterministic given a ``seed`` and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "kronecker",
    "rmat",
    "chung_lu",
    "erdos_renyi",
    "preferential_attachment",
    "webcrawl_like",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "GRAPH500_WEIGHTS",
]

#: Edge-probability weights used by the graph500 reference RMAT generator,
#: as cited in the paper (§V-A): a, b, c, d for the four quadrants.
GRAPH500_WEIGHTS = (0.57, 0.19, 0.19, 0.05)


def rmat(
    scale: int,
    edge_factor: int = 16,
    weights: tuple[float, float, float, float] = GRAPH500_WEIGHTS,
    seed: int = 0,
    dedup: bool = False,
) -> CSRGraph:
    """Recursive-MATrix power-law generator.

    Produces ``2**scale`` vertices and ``edge_factor * 2**scale`` directed
    edges.  Each edge picks one of the four adjacency-matrix quadrants per
    bit level according to ``weights``, which yields the skewed degree
    distribution of the graph500 kron inputs.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    a, b, c, d = weights
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"weights must sum to 1 (got {total})")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrant choice: bit of src set when r >= a + b (lower half),
        # bit of dst set when r in [a, a+b) or [a+b+c, 1) (right half).
        src_bit = r >= (a + b)
        dst_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src |= src_bit.astype(np.int64) << level
        dst |= dst_bit.astype(np.int64) << level
    return CSRGraph.from_edges(src, dst, num_nodes=n, dedup=dedup)


def kronecker(scale: int, edge_factor: int = 16, seed: int = 0) -> CSRGraph:
    """The paper's kron30 recipe at an arbitrary scale (graph500 weights)."""
    return rmat(scale, edge_factor=edge_factor, weights=GRAPH500_WEIGHTS, seed=seed)


def chung_lu(
    num_nodes: int,
    num_edges: int,
    out_exponent: float = 0.5,
    in_exponent: float = 0.85,
    seed: int = 0,
) -> CSRGraph:
    """Directed Chung-Lu graph with independent power-law degree weights.

    Every edge samples its source from a distribution proportional to a
    rank weight ``rank**-out_exponent`` and its destination with exponent
    ``in_exponent``.  For exponents below 1 the top-ranked node's share of
    edges scales like ``(1 - a) / n**(1 - a)``, so a *larger* exponent
    yields a *heavier* tail.  Web crawls have much heavier in-degree tails
    than out-degree tails (Table III), hence the asymmetric defaults.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    out_w = ranks ** (-out_exponent)
    in_w = ranks ** (-in_exponent)
    out_p = out_w / out_w.sum()
    in_p = in_w / in_w.sum()
    # Random permutations decorrelate node id from degree so contiguous
    # partitioning is not trivially balanced.
    out_perm = rng.permutation(num_nodes)
    in_perm = rng.permutation(num_nodes)
    src = out_perm[rng.choice(num_nodes, size=num_edges, p=out_p)]
    dst = in_perm[rng.choice(num_nodes, size=num_edges, p=in_p)]
    return CSRGraph.from_edges(src, dst, num_nodes=num_nodes)


def erdos_renyi(num_nodes: int, num_edges: int, seed: int = 0) -> CSRGraph:
    """Uniform random directed multigraph with ``num_edges`` edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes=num_nodes)


def preferential_attachment(num_nodes: int, out_degree: int = 4, seed: int = 0) -> CSRGraph:
    """Barabási–Albert-style generator (vectorized repeated-target trick).

    Each new node emits ``out_degree`` edges whose destinations are sampled
    from the current multiset of edge endpoints, which is equivalent to
    degree-proportional attachment.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    rng = np.random.default_rng(seed)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    # Endpoint pool seeded with node 0 so the first draws are valid.
    pool = np.zeros(1, dtype=np.int64)
    for v in range(1, num_nodes):
        k = min(out_degree, v)
        targets = pool[rng.integers(0, pool.size, size=k)]
        srcs.append(np.full(k, v, dtype=np.int64))
        dsts.append(targets)
        pool = np.concatenate([pool, targets, np.full(k, v, dtype=np.int64)])
    if not srcs:
        return CSRGraph.empty(num_nodes)
    return CSRGraph.from_edges(
        np.concatenate(srcs), np.concatenate(dsts), num_nodes=num_nodes
    )


def webcrawl_like(
    num_nodes: int,
    avg_degree: float,
    hub_fraction: float = 1e-3,
    hub_boost: float = 8.0,
    seed: int = 0,
) -> CSRGraph:
    """Stand-in for a web-crawl: power-law in-degree with extreme hubs.

    A Chung-Lu base is augmented by promoting a tiny ``hub_fraction`` of
    nodes to super-attractors (their in-weight multiplied by ``hub_boost``),
    reproducing the Table III signature of max in-degree being orders of
    magnitude above max out-degree.
    """
    num_edges = int(round(num_nodes * avg_degree))
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    out_w = ranks ** (-0.45)
    in_w = ranks ** (-0.7)
    n_hubs = max(1, int(num_nodes * hub_fraction))
    in_w[:n_hubs] *= hub_boost
    out_p = out_w / out_w.sum()
    in_p = in_w / in_w.sum()
    out_perm = rng.permutation(num_nodes)
    in_perm = rng.permutation(num_nodes)
    src = out_perm[rng.choice(num_nodes, size=num_edges, p=out_p)]
    dst = in_perm[rng.choice(num_nodes, size=num_edges, p=in_p)]
    return CSRGraph.from_edges(src, dst, num_nodes=num_nodes)


# ----------------------------------------------------------------------
# Small deterministic graphs (testing / examples)
# ----------------------------------------------------------------------

def path_graph(num_nodes: int) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    src = np.arange(num_nodes - 1, dtype=np.int64)
    return CSRGraph.from_edges(src, src + 1, num_nodes=num_nodes)


def cycle_graph(num_nodes: int) -> CSRGraph:
    """Directed cycle over ``num_nodes`` vertices."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    src = np.arange(num_nodes, dtype=np.int64)
    return CSRGraph.from_edges(src, (src + 1) % num_nodes, num_nodes=num_nodes)


def star_graph(num_leaves: int) -> CSRGraph:
    """Node 0 points at every leaf 1..num_leaves."""
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes=num_leaves + 1)


def complete_graph(num_nodes: int) -> CSRGraph:
    """All directed edges between distinct vertices."""
    idx = np.arange(num_nodes, dtype=np.int64)
    src = np.repeat(idx, num_nodes)
    dst = np.tile(idx, num_nodes)
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], num_nodes=num_nodes)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """2-D grid with right/down directed edges (row-major node ids)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    return CSRGraph.from_edges(
        np.concatenate([right_src, down_src]),
        np.concatenate([right_dst, down_dst]),
        num_nodes=rows * cols,
    )


def paper_figure1_graph() -> CSRGraph:
    """The 10-vertex example graph of Figure 1a (vertices A..J -> 0..9).

    Edges are read off the figure's partitioning examples: the EEC
    partitions in Fig. 1b and the CVC adjacency matrix in Fig. 1c both
    derive from this edge set.
    """
    # A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9
    edges = [
        (0, 1),  # A -> B
        (1, 5),  # B -> F
        (4, 5),  # E -> F
        (5, 8),  # F -> I
        (1, 6),  # B -> G
        (2, 6),  # C -> G
        (2, 3),  # C -> D
        (3, 7),  # D -> H
        (6, 9),  # G -> J
        (7, 9),  # H -> J
    ]
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes=10)
