"""Named input graphs: scaled stand-ins for the paper's Table III inputs.

The paper evaluates on kron30 (synthetic Kronecker, graph500 weights) and
four public web-crawls (gsh15, clueweb12, uk14, wdc12) of 17-129 billion
edges.  Those cannot be stored or processed here, so each input is replaced
by a deterministic synthetic stand-in that preserves the structural
signature that drives partitioning behaviour:

* the |E|/|V| ratio class of the original (Table III),
* the relative size ordering (wdc largest, kron smallest vertex count among
  crawls is preserved in spirit),
* for the web crawls: extreme in-degree skew (max in-degree orders of
  magnitude above max out-degree), via :func:`webcrawl_like`;
* for kron: the actual graph500 RMAT recipe at a smaller scale.

Three size presets are provided; ``tiny`` is for unit tests, ``small`` for
quick runs, ``bench`` for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from .csr import CSRGraph
from . import generators as gen

__all__ = ["DATASETS", "SCALES", "get_dataset", "dataset_names", "DatasetSpec"]

#: Size presets: multiplier applied to the node counts below.
SCALES = {"tiny": 0.02, "small": 0.2, "bench": 1.0}


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named input graph."""

    name: str
    paper_name: str
    builder: Callable[[float], CSRGraph]
    description: str


def _kron(scale_mult: float) -> CSRGraph:
    # kron30: |E|/|V| = 16.7.  Scale 13 at bench size, graph500 weights.
    log_scale = {0.02: 8, 0.2: 11, 1.0: 13}.get(scale_mult)
    if log_scale is None:
        log_scale = max(4, int(13 + round(3.3 * (scale_mult - 1))))
    return gen.kronecker(scale=log_scale, edge_factor=17, seed=30)


def _crawl(nodes: int, avg_deg: float, seed: int):
    def build(scale_mult: float) -> CSRGraph:
        n = max(64, int(nodes * scale_mult))
        return gen.webcrawl_like(n, avg_degree=avg_deg, seed=seed)

    return build


DATASETS: dict[str, DatasetSpec] = {
    "kron": DatasetSpec(
        name="kron",
        paper_name="kron30",
        builder=_kron,
        description="graph500 Kronecker/RMAT, weights .57/.19/.19/.05",
    ),
    "gsh": DatasetSpec(
        name="gsh",
        paper_name="gsh15",
        builder=_crawl(28_000, 34.3, seed=15),
        description="web-crawl stand-in, |E|/|V| ~ 34",
    ),
    "clueweb": DatasetSpec(
        name="clueweb",
        paper_name="clueweb12",
        builder=_crawl(26_000, 43.5, seed=12),
        description="web-crawl stand-in, |E|/|V| ~ 44",
    ),
    "uk": DatasetSpec(
        name="uk",
        paper_name="uk14",
        builder=_crawl(21_000, 60.4, seed=14),
        description="web-crawl stand-in, |E|/|V| ~ 60",
    ),
    "wdc": DatasetSpec(
        name="wdc",
        paper_name="wdc12",
        builder=_crawl(60_000, 36.1, seed=34),
        description="largest web-crawl stand-in, |E|/|V| ~ 36",
    ),
}


def dataset_names() -> list[str]:
    """Names in the paper's Table III order."""
    return list(DATASETS)


@lru_cache(maxsize=32)
def get_dataset(name: str, scale: str = "small") -> CSRGraph:
    """Build (and memoize) the named dataset at the given size preset."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {list(SCALES)}")
    return DATASETS[name].builder(SCALES[scale])
