"""Graph transformations: relabeling and component extraction.

Utilities a partitioning practitioner reaches for constantly:
degree-ordered relabeling (contiguous policies are sensitive to vertex
order — web-crawl ids encode crawl locality, random ids destroy it),
permutation relabeling, self-loop/duplicate cleanup, and largest-WCC
extraction.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "relabel",
    "relabel_by_degree",
    "shuffle_labels",
    "remove_self_loops",
    "simplify",
    "largest_wcc",
]


def relabel(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Rename vertex ``v`` to ``permutation[v]``.

    ``permutation`` must be a bijection over ``[0, num_nodes)``.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    n = graph.num_nodes
    if perm.shape != (n,):
        raise ValueError("permutation must have one entry per node")
    check = np.zeros(n, dtype=bool)
    check[perm] = True
    if not check.all():
        raise ValueError("permutation must be a bijection")
    src, dst = graph.edges()
    return CSRGraph.from_edges(
        perm[src], perm[dst], num_nodes=n, edge_data=graph.edge_data
    )


def relabel_by_degree(graph: CSRGraph, direction: str = "out",
                      descending: bool = True) -> CSRGraph:
    """Relabel so vertex ids follow degree rank (hubs get low ids).

    Many web-graph frameworks store crawls this way; it concentrates the
    adjacency matrix's mass near the origin, which benefits blocked
    (Cartesian) policies.
    """
    if direction == "out":
        deg = graph.out_degree()
    elif direction == "in":
        deg = graph.in_degree()
    else:
        raise ValueError("direction must be 'out' or 'in'")
    order = np.argsort(-deg if descending else deg, kind="stable")
    perm = np.empty(graph.num_nodes, dtype=np.int64)
    perm[order] = np.arange(graph.num_nodes)
    return relabel(graph, perm)


def shuffle_labels(graph: CSRGraph, seed: int = 0) -> CSRGraph:
    """Random bijective relabeling (destroys any id locality)."""
    rng = np.random.default_rng(seed)
    return relabel(graph, rng.permutation(graph.num_nodes))


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Drop edges (v, v)."""
    src, dst = graph.edges()
    keep = src != dst
    data = graph.edge_data[keep] if graph.is_weighted else None
    return CSRGraph.from_edges(
        src[keep], dst[keep], num_nodes=graph.num_nodes, edge_data=data
    )


def simplify(graph: CSRGraph) -> CSRGraph:
    """Drop self-loops and parallel edges (keeping the first weight)."""
    src, dst = graph.edges()
    keep = src != dst
    data = graph.edge_data[keep] if graph.is_weighted else None
    return CSRGraph.from_edges(
        src[keep], dst[keep], num_nodes=graph.num_nodes,
        edge_data=data, dedup=True,
    )


def largest_wcc(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by the largest weakly-connected component.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    input id of the subgraph's vertex ``i``.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = graph.num_nodes
    if n == 0:
        return graph, np.empty(0, dtype=np.int64)
    mat = csr_matrix(
        (np.ones(graph.num_edges, dtype=np.int8), graph.indices, graph.indptr),
        shape=(n, n),
    )
    _, labels = connected_components(mat, directed=True, connection="weak")
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    members = np.flatnonzero(labels == biggest).astype(np.int64)
    remap = np.full(n, -1, dtype=np.int64)
    remap[members] = np.arange(members.size)
    src, dst = graph.edges()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    data = graph.edge_data[keep] if graph.is_weighted else None
    sub = CSRGraph.from_edges(
        remap[src[keep]], remap[dst[keep]],
        num_nodes=members.size, edge_data=data,
    )
    return sub, members
