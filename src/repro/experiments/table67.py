"""Tables VI and VII: effect of the number of state-synchronization rounds
on SVC's partitioning time (VI) and on the quality of its partitions as
application execution time (VII)."""

from __future__ import annotations

from .common import APP_NAMES, ExperimentContext, ExperimentResult

__all__ = ["run_table6", "run_table7", "SYNC_ROUNDS"]

SYNC_ROUNDS = [1, 10, 100, 1000]


def run_table6(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: int = 16,
    rounds: list[int] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or ["clueweb", "uk"]
    rounds = rounds or SYNC_ROUNDS
    rows = []
    for name in graphs:
        row = {"graph": name}
        for r in rounds:
            row[f"{r} rounds"] = (
                ctx.partition_time(name, "SVC", hosts, sync_rounds=r) * 1e3
            )
        rows.append(row)
    return ExperimentResult(
        experiment="Table VI",
        title=f"SVC partitioning time (ms) vs synchronization rounds, {hosts} hosts",
        columns=["graph"] + [f"{r} rounds" for r in rounds],
        rows=rows,
        notes=[
            "Expected shape: roughly flat until a very high round count, "
            "where synchronization overhead becomes visible.",
        ],
    )


def run_table7(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: int = 16,
    rounds: list[int] | None = None,
    apps: list[str] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or ["clueweb", "uk"]
    rounds = rounds or SYNC_ROUNDS
    apps = apps or APP_NAMES
    rows = []
    for name in graphs:
        for app in apps:
            row = {"graph": name, "app": app}
            for r in rounds:
                row[f"{r} rounds"] = (
                    ctx.app_time(app, name, "SVC", hosts, sync_rounds=r) * 1e3
                )
            rows.append(row)
    return ExperimentResult(
        experiment="Table VII",
        title=(
            f"Application execution time (ms) with SVC partitions built "
            f"with different synchronization round counts, {hosts} hosts"
        ),
        columns=["graph", "app"] + [f"{r} rounds" for r in rounds],
        rows=rows,
        notes=[
            "Expected shape: more rounds can improve quality (uk-like) or "
            "be mixed (clueweb-like); gains are not monotonic.",
        ],
    )
