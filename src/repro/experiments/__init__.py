"""Experiment harness: one module per paper table/figure.

Each module's ``run(...)`` regenerates the corresponding artifact as an
:class:`~repro.experiments.common.ExperimentResult`; the ``benchmarks/``
directory wires one pytest-benchmark target to each.
"""

from . import charts, fig3, fig4, fig56, fig7, memory_study, motivation, scaling, schedulers, supplementary, table3, table4, table5, table67
from .common import (
    ALL_GRAPHS,
    APP_NAMES,
    CUSP_POLICIES,
    ExperimentContext,
    ExperimentResult,
    FIGURE_GRAPHS,
    HOST_COUNTS,
    PAPER_HOSTS,
)

#: Registry: experiment id -> callable returning an ExperimentResult.
EXPERIMENTS = {
    "table3": table3.run,
    "fig3": fig3.run,
    "table4": table4.run,
    "fig4": fig4.run,
    "table5": table5.run,
    "fig5": fig56.run_fig5,
    "fig6": fig56.run_fig6,
    "fig7": fig7.run,
    "table6": table67.run_table6,
    "table7": table67.run_table7,
    "supp_quality": supplementary.run_quality_table,
    "supp_vertex_order": supplementary.run_vertex_order,
    "supp_scaling": scaling.run_strong_scaling,
    "supp_end_to_end": motivation.run_end_to_end,
    "supp_orientation": motivation.run_orientation,
    "supp_straggler": motivation.run_straggler,
    "supp_schedulers": schedulers.run_schedulers,
    "supp_memory": memory_study.run_memory_study,
}

__all__ = [
    "EXPERIMENTS",
    "charts",
    "ExperimentContext",
    "ExperimentResult",
    "ALL_GRAPHS",
    "APP_NAMES",
    "CUSP_POLICIES",
    "FIGURE_GRAPHS",
    "HOST_COUNTS",
    "PAPER_HOSTS",
]
