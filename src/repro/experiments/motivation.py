"""Supplementary studies rooted in the paper's motivation and design notes.

* ``run_end_to_end`` — §I's opening argument: partitioning used to cost
  as much as the analytics itself (D-Galois/Gemini take longer to
  partition clueweb12 than to run pagerank on it).  This experiment
  tabulates partition time, application time, and their ratio per
  partitioner, showing streaming partitioning pushes the ratio far below
  the offline baseline's.
* ``run_orientation`` — §III-B: every policy has a CSR and a CSC variant,
  and PowerLyra defined HVC/GVC on *in*-degrees, i.e. the CSC variant.
  Compares both orientations of HVC on the skewed stand-ins.
* ``run_straggler`` — bulk-synchronous phases wait for the slowest host;
  quantifies the cost of one degraded host across policies.
"""

from __future__ import annotations

from ..core import CuSP, make_policy
from ..metrics import measure_quality
from .common import ExperimentContext, ExperimentResult

__all__ = ["run_end_to_end", "run_orientation", "run_straggler"]


def run_end_to_end(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "clueweb",
    hosts: int = 16,
    app: str = "pagerank",
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    rows = []
    for partitioner in ("XtraPulp", "EEC", "CVC", "SVC"):
        part_ms = ctx.partition_time(graph, partitioner, hosts) * 1e3
        app_ms = ctx.app_time(app, graph, partitioner, hosts) * 1e3
        rows.append(
            {
                "partitioner": partitioner,
                "partition ms": part_ms,
                f"{app} ms": app_ms,
                "partition/app ratio": part_ms / app_ms if app_ms else 0.0,
                "end-to-end ms": part_ms + app_ms,
            }
        )
    return ExperimentResult(
        experiment="Supplementary D",
        title=f"End-to-end: partitioning vs {app} time ({graph}, {hosts} hosts)",
        columns=["partitioner", "partition ms", f"{app} ms",
                 "partition/app ratio", "end-to-end ms"],
        rows=rows,
        notes=[
            "The paper's motivation (SI): with offline partitioners the "
            "preprocessing rivals the analytics; streaming partitioning "
            "drives the ratio down.",
        ],
    )


def run_orientation(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "clueweb",
    hosts: int = 16,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    g = ctx.graph(graph)
    rows = []
    for fmt in ("csr", "csc"):
        policy = make_policy(
            "HVC", input_format=fmt, degree_threshold=ctx.degree_threshold
        )
        dg = CuSP(hosts, policy, cost_model=ctx.cost_model).partition(g)
        reference = g if fmt == "csr" else g.transpose()
        q = measure_quality(dg, reference)
        rows.append(
            {
                "orientation": f"HVC over {fmt.upper()} "
                + ("(out-degrees)" if fmt == "csr" else "(in-degrees, PowerLyra's)"),
                "replication": q.replication_factor,
                "edge balance": q.edge_balance,
                "partition ms": dg.breakdown.total * 1e3,
            }
        )
    return ExperimentResult(
        experiment="Supplementary E",
        title=f"CSR vs CSC orientation of HVC ({graph}, {hosts} hosts)",
        columns=["orientation", "replication", "edge balance", "partition ms"],
        rows=rows,
        notes=[
            "Web crawls have extreme in-degree skew and modest out-degree "
            "skew, so the two orientations classify very different "
            "vertices as 'high degree' (paper SIII-B).",
        ],
    )


def run_straggler(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "uk",
    hosts: int = 8,
    slow_factor: float = 0.25,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    g = ctx.graph(graph)
    rows = []
    for policy in ("EEC", "CVC", "SVC"):
        nominal = CuSP(
            hosts, make_policy(policy, degree_threshold=ctx.degree_threshold),
            cost_model=ctx.cost_model,
        ).partition(g)
        speeds = [1.0] * hosts
        speeds[0] = slow_factor
        degraded = CuSP(
            hosts, make_policy(policy, degree_threshold=ctx.degree_threshold),
            cost_model=ctx.cost_model, host_speeds=speeds,
        ).partition(g)
        rows.append(
            {
                "policy": policy,
                "nominal ms": nominal.breakdown.total * 1e3,
                "one slow host ms": degraded.breakdown.total * 1e3,
                "slowdown": degraded.breakdown.total / nominal.breakdown.total,
            }
        )
    return ExperimentResult(
        experiment="Supplementary F",
        title=(
            f"Straggler sensitivity: one host at {slow_factor:.0%} speed "
            f"({graph}, {hosts} hosts)"
        ),
        columns=["policy", "nominal ms", "one slow host ms", "slowdown"],
        rows=rows,
        notes=[
            "Bulk-synchronous phases wait for the slowest host, so a "
            "single degraded node taxes every policy.  Compute-bound "
            "phases absorb the full slowdown; communication-bound phases "
            "hide part of it behind the dedicated comm thread, so "
            "comm-heavier policies degrade relatively less.",
        ],
    )
