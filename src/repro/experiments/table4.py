"""Table IV: average speedup of CuSP policies over XtraPulp in
partitioning time and application execution time."""

from __future__ import annotations

from ..metrics import geomean
from .common import (
    APP_NAMES,
    CUSP_POLICIES,
    ExperimentContext,
    ExperimentResult,
    FIGURE_GRAPHS,
)

__all__ = ["run"]

#: The paper's Table IV, for side-by-side comparison.
PAPER_SPEEDUPS = {
    "EEC": (22.22, 1.73), "HVC": (10.81, 0.91), "CVC": (11.90, 1.88),
    "FEC": (2.40, 1.44), "GVC": (2.19, 0.83), "SVC": (2.67, 1.45),
}


def run(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: list[int] | None = None,
    apps: list[str] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or FIGURE_GRAPHS
    hosts = hosts or [8, 16]
    apps = apps or APP_NAMES
    rows = []
    for policy in CUSP_POLICIES:
        part_ratios = []
        app_ratios = []
        for k in hosts:
            for g in graphs:
                xp = ctx.partition_time(g, "XtraPulp", k)
                part_ratios.append(xp / ctx.partition_time(g, policy, k))
                for app in apps:
                    xp_t = ctx.app_time(app, g, "XtraPulp", k)
                    app_ratios.append(xp_t / ctx.app_time(app, g, policy, k))
        paper_part, paper_app = PAPER_SPEEDUPS[policy]
        rows.append(
            {
                "policy": policy,
                "partitioning speedup": geomean(part_ratios),
                "paper": paper_part,
                "app execution speedup": geomean(app_ratios),
                "paper ": paper_app,
            }
        )
    return ExperimentResult(
        experiment="Table IV",
        title="Average speedup of CuSP policies over XtraPulp (geomean)",
        columns=["policy", "partitioning speedup", "paper",
                 "app execution speedup", "paper "],
        rows=rows,
        notes=[
            "Expected shape: all partitioning speedups > 1; ContiguousEB "
            "policies far above FennelEB policies; app speedups near or "
            "above 1 except the general vertex-cuts (HVC/GVC).",
        ],
    )
