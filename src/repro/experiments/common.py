"""Shared infrastructure for the paper's experiments.

Every experiment module exposes ``run(scale=...) -> ExperimentResult`` and
regenerates one table or figure from the paper's evaluation (§V).  The
scaled setup is fixed here:

* host counts {4, 8, 16} stand in for the paper's {32, 64, 128};
* the five Table III graphs are replaced by the stand-ins of
  :mod:`repro.graph.datasets` at the requested size preset;
* the cost model is :data:`~repro.runtime.cost_model.REPRO_CALIBRATED`
  (fixed latencies shrunk by the same factor as the data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analytics import (
    BFS,
    ConnectedComponents,
    Engine,
    PageRank,
    SSSP,
    default_source,
)
from ..baselines import XtraPulp
from ..core import CuSP, make_policy
from ..core.partition import DistributedGraph
from ..graph import CSRGraph, get_dataset
from ..runtime.cost_model import REPRO_CALIBRATED, CostModel

__all__ = [
    "ExperimentResult",
    "ExperimentContext",
    "HOST_COUNTS",
    "PAPER_HOSTS",
    "FIGURE_GRAPHS",
    "ALL_GRAPHS",
    "APP_NAMES",
    "CUSP_POLICIES",
]

#: Scaled host counts and the paper host counts they stand in for.
HOST_COUNTS = [4, 8, 16]
PAPER_HOSTS = {4: 32, 8: 64, 16: 128}

#: The four inputs of Figures 5/6 (wdc is partitioning-time only, Fig. 3).
FIGURE_GRAPHS = ["kron", "gsh", "clueweb", "uk"]
ALL_GRAPHS = ["kron", "gsh", "clueweb", "uk", "wdc"]

APP_NAMES = ["bfs", "cc", "pagerank", "sssp"]
CUSP_POLICIES = ["EEC", "HVC", "CVC", "FEC", "GVC", "SVC"]


@dataclass
class ExperimentResult:
    """One regenerated table/figure: rows of named columns plus notes."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict]
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        """Render as an aligned ASCII table (the bench harness prints this)."""
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows))
            if self.rows
            else len(c)
            for c in self.columns
        }
        lines = [f"== {self.experiment}: {self.title} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rows:
            lines.append(
                "  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        return [r.get(name) for r in self.rows]


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.3f}"
    return str(v)


class ExperimentContext:
    """Caches graphs, partitions, and app runs across experiments.

    A context pins the dataset scale and cost model so that every
    experiment in a session works from the same inputs, and partitioning
    the same (graph, policy, hosts, rounds) twice is free.
    """

    def __init__(
        self,
        scale: str = "small",
        cost_model: CostModel = REPRO_CALIBRATED,
        sync_rounds: int = 10,
        degree_threshold: int = 20,
    ):
        # degree_threshold=20 puts the stand-ins in the paper's regime:
        # the bulk of the edge mass originates at above-threshold sources
        # (at web-crawl scale the paper's threshold of 1000 does the same),
        # so Hybrid genuinely scatters hub fan-out and HVC communicates
        # more than CVC (Table V).
        self.scale = scale
        self.cost_model = cost_model
        self.sync_rounds = sync_rounds
        self.degree_threshold = degree_threshold
        self._graphs: dict[tuple[str, str], CSRGraph] = {}
        self._partitions: dict[tuple, DistributedGraph] = {}

    # ------------------------------------------------------------------
    # Graph variants
    # ------------------------------------------------------------------
    def graph(self, name: str, variant: str = "base") -> CSRGraph:
        """Dataset ``name`` in one of three variants.

        ``base`` is the directed graph; ``sym`` is symmetrized (cc runs on
        it, paper §V-A); ``weighted`` carries random integer weights
        (sssp needs them).
        """
        key = (name, variant)
        if key not in self._graphs:
            base = get_dataset(name, self.scale)
            if variant == "base":
                g = base
            elif variant == "sym":
                g = base.symmetrize()
            elif variant == "weighted":
                g = base.with_random_weights(seed=42)
            else:
                raise KeyError(f"unknown variant {variant!r}")
            self._graphs[key] = g
        return self._graphs[key]

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def partition(
        self,
        graph_name: str,
        policy: str,
        num_hosts: int,
        variant: str = "base",
        sync_rounds: int | None = None,
        buffer_size: int = 8 << 20,
    ) -> DistributedGraph:
        """Partition a named graph (cached)."""
        rounds = sync_rounds if sync_rounds is not None else self.sync_rounds
        key = (graph_name, variant, policy, num_hosts, rounds, buffer_size)
        if key not in self._partitions:
            g = self.graph(graph_name, variant)
            if policy == "XtraPulp":
                dg = XtraPulp(num_hosts, cost_model=self.cost_model).partition(g)
            else:
                cusp = CuSP(
                    num_hosts,
                    make_policy(policy, degree_threshold=self.degree_threshold),
                    cost_model=self.cost_model,
                    sync_rounds=rounds,
                    buffer_size=buffer_size,
                )
                dg = cusp.partition(g)
            self._partitions[key] = dg
        return self._partitions[key]

    def partition_time(self, graph_name: str, policy: str, num_hosts: int,
                       **kwargs) -> float:
        return self.partition(graph_name, policy, num_hosts, **kwargs).breakdown.total

    # ------------------------------------------------------------------
    # Applications
    # ------------------------------------------------------------------
    def app_variant(self, app: str) -> str:
        """Which graph variant an application runs on."""
        return {"cc": "sym", "sssp": "weighted"}.get(app, "base")

    def run_app(
        self,
        app: str,
        graph_name: str,
        policy: str,
        num_hosts: int,
        sync_rounds: int | None = None,
    ):
        """Partition (cached) and execute one application; returns AppResult."""
        variant = self.app_variant(app)
        dg = self.partition(
            graph_name, policy, num_hosts, variant=variant, sync_rounds=sync_rounds
        )
        g = self.graph(graph_name, variant)
        engine = Engine(dg, cost_model=self.cost_model)
        if app == "bfs":
            program = BFS(default_source(g))
        elif app == "sssp":
            program = SSSP(default_source(g))
        elif app == "cc":
            program = ConnectedComponents()
        elif app == "pagerank":
            program = PageRank()
        else:
            raise KeyError(f"unknown app {app!r}")
        return engine.run(program)

    def app_time(self, app, graph_name, policy, num_hosts, **kwargs) -> float:
        return self.run_app(app, graph_name, policy, num_hosts, **kwargs).time
