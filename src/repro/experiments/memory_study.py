"""Supplementary H: per-host memory footprints and the paper's OOM bars.

§V-B explains Figure 3's missing bars: XtraPulp cannot allocate memory
for the large inputs at low host counts (its full-length global vectors
and doubled adjacency don't fit), while CuSP fits because its working
set shrinks with k.  This experiment estimates both systems' per-host
peaks across host counts and marks which configurations a scaled
memory capacity would reject.
"""

from __future__ import annotations

import numpy as np

from ..runtime.memory import cusp_peak_memory, xtrapulp_peak_memory
from .common import ExperimentContext, ExperimentResult

__all__ = ["run_memory_study", "scaled_capacity"]


def scaled_capacity(graph) -> int:
    """A per-host capacity playing the role of Stampede2's 192 GB.

    The paper's regime: one host cannot hold the doubled graph plus
    global vectors, but 1/k of it fits comfortably at large k.  Scaled to
    the stand-ins: capacity = half of the single-host XtraPulp footprint.
    """
    single = int(xtrapulp_peak_memory(graph, 1)[0])
    return single // 2


def run_memory_study(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "wdc",
    hosts: list[int] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    hosts = hosts or [4, 8, 16]
    g = ctx.graph(graph)
    capacity = scaled_capacity(g)
    rows = []
    for k in hosts:
        xp_peak = int(xtrapulp_peak_memory(g, k).max())
        row = {
            "hosts": k,
            "XtraPulp MB/host": xp_peak / 2**20,
            "XtraPulp fits": "OOM" if xp_peak > capacity else "ok",
        }
        for policy in ("EEC", "CVC"):
            dg = ctx.partition(graph, policy, k)
            peak = int(cusp_peak_memory(dg, g).max())
            row[f"{policy} MB/host"] = peak / 2**20
            row[f"{policy} fits"] = "OOM" if peak > capacity else "ok"
        rows.append(row)
    return ExperimentResult(
        experiment="Supplementary H",
        title=(
            f"Per-host peak memory on {graph} "
            f"(capacity {capacity / 2**20:.1f} MB/host)"
        ),
        columns=[
            "hosts", "XtraPulp MB/host", "XtraPulp fits",
            "EEC MB/host", "EEC fits", "CVC MB/host", "CVC fits",
        ],
        rows=rows,
        notes=[
            "The paper's Figure 3 gaps: XtraPulp's full-length global "
            "vectors keep its footprint from shrinking with k, so it OOMs "
            "at low host counts where CuSP fits (SV-B).",
        ],
    )
