"""ASCII chart rendering for figure-type experiments.

The paper's Figures 3/5/6 are grouped bar charts and Figure 7 a log-log
line chart; the experiment drivers emit tables, and this module renders
those tables as terminal charts so a reader can *see* the shapes the
benchmarks assert.  Used by ``cusp experiment --chart`` and the
``reproduce_paper`` example.
"""

from __future__ import annotations

import math

from .common import ExperimentResult

__all__ = ["render_bars", "render_series", "render_experiment"]

_WIDTH = 48


def render_bars(
    result: ExperimentResult,
    value_columns: list[str] | None = None,
    label_columns: list[str] | None = None,
    log: bool = False,
) -> str:
    """Horizontal grouped bars, one bar per (row, value column)."""
    value_columns = value_columns or _numeric_columns(result)
    label_columns = label_columns or [
        c for c in result.columns if c not in value_columns
    ]
    values = [
        float(row[c])
        for row in result.rows
        for c in value_columns
        if row.get(c) is not None
    ]
    if not values:
        return "(no data)"
    top = max(values)
    lo = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1.0
    lines = [f"== {result.experiment}: {result.title} =="]
    name_width = max(
        len(_label(row, label_columns, c))
        for row in result.rows
        for c in value_columns
    )
    for row in result.rows:
        for c in value_columns:
            v = row.get(c)
            if v is None:
                continue
            v = float(v)
            frac = _scale(v, lo, top, log)
            bar = "#" * max(1 if v > 0 else 0, round(frac * _WIDTH))
            lines.append(
                f"{_label(row, label_columns, c):<{name_width}} "
                f"{v:>10.3f} {bar}"
            )
        lines.append("")
    if log:
        lines.append("(log scale)")
    return "\n".join(lines).rstrip()


def render_series(
    result: ExperimentResult,
    x_column: str,
    series_columns: list[str] | None = None,
    log: bool = True,
    height: int = 12,
) -> str:
    """A simple scatter/line chart: one glyph per series over the x column."""
    series_columns = series_columns or [
        c for c in _numeric_columns(result) if c != x_column
    ]
    xs = [float(r[x_column]) for r in result.rows]
    all_vals = [
        float(r[c]) for r in result.rows for c in series_columns
        if r.get(c) is not None
    ]
    if not all_vals or not xs:
        return "(no data)"
    top, lo = max(all_vals), min(v for v in all_vals if v > 0)
    grid = [[" "] * len(xs) for _ in range(height)]
    glyphs = "ox+*#@%&"
    for si, c in enumerate(series_columns):
        for xi, row in enumerate(result.rows):
            v = row.get(c)
            if v is None:
                continue
            frac = _scale(float(v), lo, top, log)
            y = height - 1 - min(height - 1, round(frac * (height - 1)))
            cell = grid[y][xi]
            grid[y][xi] = glyphs[si % len(glyphs)] if cell == " " else "*"
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append(f"{top:10.3f} ┐")
    for row_cells in grid:
        lines.append(" " * 11 + "│ " + "  ".join(row_cells))
    lines.append(f"{lo:10.3f} ┘ " + "  ".join("·" * len(xs)))
    lines.append(
        " " * 13 + "  ".join(_short(x) for x in xs) + f"   <- {x_column}"
    )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={c}" for i, c in enumerate(series_columns)
    )
    lines.append("legend: " + legend + ("   (log y)" if log else ""))
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Pick a sensible chart for a known experiment, else bars."""
    if result.experiment == "Figure 7":
        return render_series(result, x_column="batch size (KB)")
    return render_bars(result)


def _numeric_columns(result: ExperimentResult) -> list[str]:
    numeric = []
    for c in result.columns:
        vals = [r.get(c) for r in result.rows]
        if any(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in vals):
            numeric.append(c)
    return numeric


def _label(row, label_columns, value_column) -> str:
    parts = [str(row.get(c, "")) for c in label_columns if row.get(c) is not None]
    parts.append(str(value_column))
    return " / ".join(parts)


def _scale(v: float, lo: float, hi: float, log: bool) -> float:
    if hi <= 0:
        return 0.0
    if not log:
        return max(0.0, v / hi)
    if v <= 0:
        return 0.0
    if math.isclose(hi, lo):
        return 1.0
    return (math.log(v) - math.log(lo)) / (math.log(hi) - math.log(lo))


def _short(x: float) -> str:
    if x == int(x):
        return str(int(x))
    return f"{x:g}"
