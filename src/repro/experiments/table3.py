"""Table III: input (directed) graphs and their properties."""

from __future__ import annotations

from ..graph import compute_properties, dataset_names
from ..graph.datasets import DATASETS
from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]

#: The paper's Table III values, for side-by-side reporting.
PAPER_ROWS = {
    "kron": {"|V|": "1,073M", "|E|": "17,091M", "|E|/|V|": 16.0},
    "gsh": {"|V|": "988M", "|E|": "33,877M", "|E|/|V|": 34.3},
    "clueweb": {"|V|": "978M", "|E|": "42,574M", "|E|/|V|": 43.5},
    "uk": {"|V|": "788M", "|E|": "47,615M", "|E|/|V|": 60.4},
    "wdc": {"|V|": "3,563M", "|E|": "128,736M", "|E|/|V|": 36.1},
}


def run(ctx: ExperimentContext | None = None, scale: str = "small") -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    rows = []
    for name in dataset_names():
        g = ctx.graph(name)
        props = compute_properties(g, name).row()
        props["paper graph"] = DATASETS[name].paper_name
        props["paper |E|/|V|"] = PAPER_ROWS[name]["|E|/|V|"]
        rows.append(props)
    return ExperimentResult(
        experiment="Table III",
        title="Input (directed) graphs and their properties (scaled stand-ins)",
        columns=[
            "graph", "paper graph", "|V|", "|E|", "|E|/|V|", "paper |E|/|V|",
            "MaxOutDegree", "MaxInDegree", "SizeOnDisk(MB)",
        ],
        rows=rows,
        notes=[
            "Stand-ins match the paper's |E|/|V| ratio and in/out degree "
            "skew at ~10^4-10^6 edges (see DESIGN.md substitutions).",
        ],
    )
