"""Figure 4: time spent by the partitioning policies in the different
phases of CuSP (clueweb and uk at the largest host count)."""

from __future__ import annotations

from ..core.framework import PHASE_NAMES
from .common import CUSP_POLICIES, ExperimentContext, ExperimentResult

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: int = 16,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or ["clueweb", "uk"]
    rows = []
    for name in graphs:
        for policy in CUSP_POLICIES:
            dg = ctx.partition(name, policy, hosts)
            row = {"graph": name, "policy": policy}
            for phase in PHASE_NAMES:
                row[phase] = dg.breakdown.phase(phase).total * 1e3  # ms
            row["Total"] = dg.breakdown.total * 1e3
            rows.append(row)
    return ExperimentResult(
        experiment="Figure 4",
        title=f"Per-phase partitioning time (ms) on {hosts} hosts",
        columns=["graph", "policy"] + PHASE_NAMES + ["Total"],
        rows=rows,
        notes=[
            "Expected shape: EEC dominated by Graph Reading; HVC/CVC by "
            "Edge Assignment + Graph Construction (HVC > CVC in edge "
            "assignment); FEC/GVC/SVC dominated by Master Assignment.",
        ],
    )
