"""Strong-scaling study: fixed input, growing host count.

Not a paper artifact, but the natural question after Figure 3/6: how do
partitioning time and application time move as hosts are added for a
fixed graph?  The paper's CVC argument (§V-B/C) predicts the 2-D cut's
advantage *grows* with host count because its partner set grows as
sqrt(k) while general cuts grow as k.
"""

from __future__ import annotations

from ..metrics import measure_quality
from .common import ExperimentContext, ExperimentResult

__all__ = ["run_strong_scaling"]


def run_strong_scaling(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "clueweb",
    hosts: list[int] | None = None,
    policies: list[str] | None = None,
    app: str = "bfs",
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    hosts = hosts or [2, 4, 8, 16, 32]
    policies = policies or ["EEC", "HVC", "CVC"]
    g = ctx.graph(graph)
    rows = []
    for k in hosts:
        row = {"hosts": k}
        for policy in policies:
            dg = ctx.partition(graph, policy, k)
            q = measure_quality(dg, g)
            row[f"{policy} part ms"] = dg.breakdown.total * 1e3
            row[f"{policy} {app} ms"] = ctx.app_time(app, graph, policy, k) * 1e3
            row[f"{policy} partners"] = q.max_partners
        rows.append(row)
    columns = ["hosts"]
    for policy in policies:
        columns += [f"{policy} part ms", f"{policy} {app} ms",
                    f"{policy} partners"]
    return ExperimentResult(
        experiment="Supplementary C",
        title=f"Strong scaling on {graph} ({app})",
        rows=rows,
        columns=columns,
        notes=[
            "Expected: partitioning time falls with k (more readers, less "
            "per-host data); CVC's partner count grows ~sqrt(k) while "
            "HVC's grows ~k, so CVC's app-time advantage widens.",
        ],
    )
