"""Supplementary G: scheduling-policy study (push/pull/direction-optimizing
BFS; Bellman-Ford vs delta-stepping SSSP).

D-Galois pairs every partitioning policy with a *scheduling* policy per
application; the reproduction implements the main ones, and this
experiment shows they return identical answers with different
work/communication profiles — the same result-invariance argument the
partitioning experiments make, one layer up.
"""

from __future__ import annotations

import numpy as np

from ..analytics import (
    BFS,
    BFSDirectionOptimizing,
    BFSPull,
    DeltaSteppingSSSP,
    Engine,
    SSSP,
    default_source,
)
from .common import ExperimentContext, ExperimentResult

__all__ = ["run_schedulers"]


def run_schedulers(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "gsh",
    hosts: int = 8,
    policy: str = "CVC",
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    base = ctx.graph(graph)
    weighted = ctx.graph(graph, "weighted")
    src = default_source(base)
    dg = ctx.partition(graph, policy, hosts)
    wdg = ctx.partition(graph, policy, hosts, variant="weighted")
    engine = Engine(dg, cost_model=ctx.cost_model)
    wengine = Engine(wdg, cost_model=ctx.cost_model)

    runs = [
        ("bfs push", engine, BFS(src)),
        ("bfs pull", engine, BFSPull(src)),
        ("bfs direction-opt", engine, BFSDirectionOptimizing(src)),
        ("sssp bellman-ford", wengine, SSSP(src)),
        ("sssp delta-stepping", wengine, DeltaSteppingSSSP(src, delta=64)),
    ]
    rows = []
    answers = {}
    for label, eng, app in runs:
        res = eng.run(app)
        family = label.split()[0]
        if family in answers:
            assert np.array_equal(res.values, answers[family]), label
        else:
            answers[family] = res.values
        rows.append(
            {
                "scheduler": label,
                "rounds": res.rounds,
                "time ms": res.time * 1e3,
                "comm KB": res.comm_bytes / 1024,
            }
        )
    return ExperimentResult(
        experiment="Supplementary G",
        title=f"Scheduling policies on {policy} partitions ({graph}, {hosts} hosts)",
        columns=["scheduler", "rounds", "time ms", "comm KB"],
        rows=rows,
        notes=[
            "All schedulers of a family return identical answers (asserted "
            "during the run); they differ in rounds, local work, and "
            "communication volume.",
        ],
    )
