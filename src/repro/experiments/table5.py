"""Table V: data volume sent in the edge assignment and graph construction
phases of CuSP, CVC vs HVC, at the largest host count."""

from __future__ import annotations

from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: int = 16,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or ["kron", "gsh", "clueweb", "uk"]
    rows = []
    for name in graphs:
        for policy in ("CVC", "HVC"):
            dg = ctx.partition(name, policy, hosts)
            rows.append(
                {
                    "graph": name,
                    "policy": policy,
                    "assignment (MB)": dg.breakdown.comm_bytes("Edge Assignment")
                    / 2**20,
                    "construction (MB)": dg.breakdown.comm_bytes(
                        "Graph Construction"
                    )
                    / 2**20,
                    "total time (ms)": dg.breakdown.total * 1e3,
                }
            )
    return ExperimentResult(
        experiment="Table V",
        title=f"Data volume in edge assignment and construction, {hosts} hosts",
        columns=["graph", "policy", "assignment (MB)", "construction (MB)",
                 "total time (ms)"],
        rows=rows,
        notes=[
            "Expected shape: HVC sends at least as much as CVC (up to ~an "
            "order of magnitude more on skewed inputs) yet its total "
            "partitioning time is only mildly worse.",
        ],
    )
