"""Figures 5 and 6: execution time of bfs/cc/pagerank/sssp on partitions
from XtraPulp and the six CuSP policies (Fig. 5 = 64 paper hosts -> 8
scaled; Fig. 6 = 128 paper hosts -> 16 scaled)."""

from __future__ import annotations

from .common import (
    APP_NAMES,
    CUSP_POLICIES,
    ExperimentContext,
    ExperimentResult,
    FIGURE_GRAPHS,
    PAPER_HOSTS,
)

__all__ = ["run", "run_fig5", "run_fig6"]

PARTITIONERS = ["XtraPulp"] + CUSP_POLICIES


def run(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    hosts: int = 8,
    graphs: list[str] | None = None,
    apps: list[str] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or FIGURE_GRAPHS
    apps = apps or APP_NAMES
    rows = []
    for name in graphs:
        for app in apps:
            row = {"graph": name, "app": app}
            for p in PARTITIONERS:
                row[p] = ctx.app_time(app, name, p, hosts) * 1e3  # ms
            rows.append(row)
    figure = "Figure 5" if hosts <= 8 else "Figure 6"
    return ExperimentResult(
        experiment=figure,
        title=(
            f"Application execution time (ms, simulated) on {hosts} hosts "
            f"(paper: {PAPER_HOSTS.get(hosts, '?')})"
        ),
        columns=["graph", "app"] + PARTITIONERS,
        rows=rows,
        notes=[
            "Expected shape: edge-cuts (XtraPulp/EEC/FEC) comparable; "
            "CVC/SVC best in several cases; general vertex-cuts "
            "(HVC/GVC) generally worst (no invariant for the engine's "
            "communication optimizations).",
        ],
    )


def run_fig5(ctx=None, scale="small", **kw) -> ExperimentResult:
    return run(ctx, scale, hosts=8, **kw)


def run_fig6(ctx=None, scale="small", **kw) -> ExperimentResult:
    return run(ctx, scale, hosts=16, **kw)
