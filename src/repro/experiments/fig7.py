"""Figure 7: partitioning time of CVC with varying message batch sizes
(log-log in the paper; 0 means send-immediately)."""

from __future__ import annotations

from .common import ExperimentContext, ExperimentResult

__all__ = ["run", "BUFFER_SIZES"]

#: Scaled sweep: the paper sweeps 0..32 MB against billions of edges; the
#: stand-ins are ~1000x smaller, so the buffer axis shrinks likewise.
BUFFER_SIZES = [0, 512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10]


def run(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: int = 16,
    buffer_sizes: list[int] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or ["clueweb", "uk", "wdc"]
    buffer_sizes = buffer_sizes or BUFFER_SIZES
    rows = []
    for buf in buffer_sizes:
        row = {"batch size (KB)": buf / 1024}
        for name in graphs:
            row[name] = (
                ctx.partition_time(name, "CVC", hosts, buffer_size=buf) * 1e3
            )
        rows.append(row)
    return ExperimentResult(
        experiment="Figure 7",
        title=f"CVC partitioning time (ms) vs message batch size, {hosts} hosts",
        columns=["batch size (KB)"] + graphs,
        rows=rows,
        notes=[
            "Expected shape: batch size 0 (send-immediately) is several "
            "times slower; beyond a modest buffer the curve flattens.",
        ],
    )
