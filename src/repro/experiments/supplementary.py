"""Supplementary experiments beyond the paper's figures.

* ``run_quality_table`` — the structural metrics (replication factor,
  balance, communication partners) for every policy; the paper discusses
  these (§V-C) but tabulates only runtimes, so this fills in the
  underlying numbers.
* ``run_vertex_order`` — sensitivity of the contiguous-master policies to
  vertex id order: crawl ordering (locality) vs random relabeling.
  Contiguous policies implicitly rely on id locality, which this
  quantifies.
"""

from __future__ import annotations

from ..core import CuSP, make_policy
from ..graph.transforms import relabel_by_degree, shuffle_labels
from ..metrics import measure_quality
from .common import CUSP_POLICIES, ExperimentContext, ExperimentResult

__all__ = ["run_quality_table", "run_vertex_order"]


def run_quality_table(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graph: str = "clueweb",
    hosts: int = 16,
    policies: list[str] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    policies = policies or (["XtraPulp"] + CUSP_POLICIES + ["DBH", "PGC", "HDRF"])
    g = ctx.graph(graph)
    rows = []
    for policy in policies:
        dg = ctx.partition(graph, policy, hosts)
        q = measure_quality(dg, g)
        rows.append(
            {
                "policy": policy,
                "invariant": dg.invariant,
                "replication": q.replication_factor,
                "node balance": q.node_balance,
                "edge balance": q.edge_balance,
                "cut fraction": q.cut_fraction,
                "max partners": q.max_partners,
            }
        )
    return ExperimentResult(
        experiment="Supplementary A",
        title=f"Structural partition quality ({graph}, {hosts} hosts)",
        columns=["policy", "invariant", "replication", "node balance",
                 "edge balance", "cut fraction", "max partners"],
        rows=rows,
        notes=[
            "2d-cut policies bound communication partners by the grid "
            "row+column; the paper notes these metrics do not map 1:1 to "
            "runtime (§V-C), which Figures 5/6 measure directly.",
        ],
    )


def run_vertex_order(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    hosts: int = 16,
) -> ExperimentResult:
    """Needs an input whose id space *has* locality to lose: real crawls
    number pages in crawl order, which clusters neighborhoods.  The
    synthetic stand-ins permute ids, so this experiment uses a grid
    (row-major ids = maximal locality) as the locality-rich input."""
    from ..graph.generators import grid_graph

    ctx = ctx or ExperimentContext(scale=scale)
    side = {"tiny": 24, "small": 60, "bench": 120}.get(scale, 60)
    base = grid_graph(side, side).symmetrize()
    variants = {
        "row-major order (locality)": base,
        "degree order": relabel_by_degree(base),
        "random order": shuffle_labels(base, seed=99),
    }
    rows = []
    for label, g in variants.items():
        for policy in ("EEC", "CVC"):
            cusp = CuSP(
                hosts, make_policy(policy, degree_threshold=ctx.degree_threshold),
                cost_model=ctx.cost_model,
            )
            dg = cusp.partition(g)
            q = measure_quality(dg, g)
            rows.append(
                {
                    "vertex order": label,
                    "policy": policy,
                    "replication": q.replication_factor,
                    "cut fraction": q.cut_fraction,
                    "partition ms": dg.breakdown.total * 1e3,
                }
            )
    return ExperimentResult(
        experiment="Supplementary B",
        title="Vertex-order sensitivity of contiguous policies (grid)",
        columns=["vertex order", "policy", "replication", "cut fraction",
                 "partition ms"],
        rows=rows,
        notes=[
            "Contiguous master blocks inherit whatever locality the id "
            "space has; random relabeling removes it and replication "
            "rises toward the structure-oblivious ceiling.",
        ],
    )
