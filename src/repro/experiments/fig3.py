"""Figure 3: partitioning time for XtraPulp and the six CuSP policies,
five graphs, three host counts."""

from __future__ import annotations

from .common import (
    ALL_GRAPHS,
    CUSP_POLICIES,
    ExperimentContext,
    ExperimentResult,
    HOST_COUNTS,
    PAPER_HOSTS,
)

__all__ = ["run"]

PARTITIONERS = ["XtraPulp"] + CUSP_POLICIES


def run(
    ctx: ExperimentContext | None = None,
    scale: str = "small",
    graphs: list[str] | None = None,
    hosts: list[int] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext(scale=scale)
    graphs = graphs or ALL_GRAPHS
    hosts = hosts or HOST_COUNTS
    rows = []
    for k in hosts:
        for name in graphs:
            row = {"graph": name, "hosts": f"{k} (paper {PAPER_HOSTS.get(k, '?')})"}
            for p in PARTITIONERS:
                row[p] = ctx.partition_time(name, p, k) * 1e3  # ms
            rows.append(row)
    return ExperimentResult(
        experiment="Figure 3",
        title="Partitioning time (ms, simulated) for XtraPulp and CuSP policies",
        columns=["graph", "hosts"] + PARTITIONERS,
        rows=rows,
        notes=[
            "Expected shape: every CuSP policy beats XtraPulp; EEC is the "
            "fastest CuSP policy; FennelEB policies (FEC/GVC/SVC) are the "
            "slowest CuSP policies but still faster than XtraPulp.",
        ],
    )
