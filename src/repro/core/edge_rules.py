"""``getEdgeOwner`` rules (paper Algorithm 2).

An edge rule decides which partition owns each edge, given the partitions
holding the master proxies of the edge's endpoints.  All built-in rules
are stateless and fully vectorized; custom rules may keep state via the
same :class:`~repro.core.state.PartitioningState` machinery as master
rules.
"""

from __future__ import annotations

import math

import numpy as np

from .prop import GraphProp
from .state import PartitioningState, VoidState

__all__ = [
    "EdgeRule",
    "SourceRule",
    "DestRule",
    "HybridRule",
    "CartesianRule",
    "CheckerboardRule",
    "JaggedRule",
    "DegreeHashRule",
    "grid_shape",
    "EDGE_RULES",
    "make_edge_rule",
]


def grid_shape(num_partitions: int) -> tuple[int, int]:
    """Factor ``num_partitions`` into the most square (rows, cols) grid.

    Cartesian vertex-cuts view the partitions as a ``p_r x p_c`` grid with
    ``p_r * p_c == num_partitions`` (paper §II-A3).  We pick the
    factorization with ``p_r`` closest to sqrt(k) from below, matching
    common 2-D partitioner practice.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    pr = int(math.isqrt(num_partitions))
    while num_partitions % pr:
        pr -= 1
    return pr, num_partitions // pr


class EdgeRule:
    """Base class for ``getEdgeOwner`` rules."""

    name: str = "abstract"
    stateful: bool = False

    def make_state(
        self,
        num_partitions: int,
        num_hosts: int,
        num_nodes: int | None = None,
    ) -> PartitioningState:
        """Create this rule's estate.

        ``num_nodes`` is supplied for rules whose state is per-vertex
        (e.g. the Table I streaming vertex-cuts); stateless rules ignore
        it.
        """
        return VoidState()

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        """Partition owning edge ``(src_id, dst_id)`` (paper signature)."""
        raise NotImplementedError

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        """Batched owner computation; default loops over :meth:`owner`."""
        out = np.empty(len(src_ids), dtype=np.int32)
        for i in range(len(src_ids)):
            out[i] = self.owner(
                prop,
                int(src_ids[i]),
                int(dst_ids[i]),
                int(src_masters[i]),
                int(dst_masters[i]),
                estate,
            )
        return out

    #: Structural invariant the rule guarantees, used by the analytics
    #: engine to pick communication optimizations (paper §V-C):
    #: "edge-cut", "2d-cut", or "vertex-cut" (no invariant).
    invariant: str = "vertex-cut"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class SourceRule(EdgeRule):
    """Assign every edge to its source's master (outgoing edge-cut)."""

    name = "Source"
    invariant = "edge-cut"

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        return src_master

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        return np.asarray(src_masters, dtype=np.int32).copy()


class DestRule(EdgeRule):
    """Assign every edge to its destination's master (incoming edge-cut).

    Not in the paper's Algorithm 2, but the natural dual of Source: a
    Source policy over a CSC input equals a Dest policy over CSR, and
    having both makes the CSR/CSC policy variants (paper §III-B) explicit.
    """

    name = "Dest"
    invariant = "edge-cut"

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        return dst_master

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        return np.asarray(dst_masters, dtype=np.int32).copy()


class HybridRule(EdgeRule):
    """PowerLyra's hybrid cut (Algorithm 2, HYBRID).

    Low-degree sources keep their edges (like Source); edges of
    high-degree sources follow the destination's master instead, which
    spreads hub fan-out across partitions.  The result is a general
    vertex-cut with no structural invariant.
    """

    name = "Hybrid"
    invariant = "vertex-cut"

    def __init__(self, degree_threshold: int = 100):
        if degree_threshold < 0:
            raise ValueError("degree_threshold must be >= 0")
        self.degree_threshold = degree_threshold

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        if prop.getNodeOutDegree(src_id) > self.degree_threshold:
            return dst_master
        return src_master

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        degrees = prop.out_degrees(np.asarray(src_ids))
        return np.where(
            degrees > self.degree_threshold, dst_masters, src_masters
        ).astype(np.int32)


class CartesianRule(EdgeRule):
    """Cartesian (2-D block) vertex-cut (Algorithm 2, CARTESIAN).

    The adjacency matrix is blocked by the master assignment in both
    dimensions; block (m_s, m_d) goes to the partition at grid position
    (blocked row m_s, cyclic column m_d).  Every partition then only
    shares vertices with partitions in its grid row or column, the
    invariant D-Galois exploits (paper §V-C).
    """

    name = "Cartesian"
    invariant = "2d-cut"

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        _, pc = grid_shape(prop.getNumPartitions())
        blocked_row = (src_master // pc) * pc
        cyclic_col = dst_master % pc
        return blocked_row + cyclic_col

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        _, pc = grid_shape(prop.getNumPartitions())
        blocked_row = (np.asarray(src_masters) // pc) * pc
        cyclic_col = np.asarray(dst_masters) % pc
        return (blocked_row + cyclic_col).astype(np.int32)


class CheckerboardRule(EdgeRule):
    """Checkerboard (block-block) vertex-cut — BVC [19], [18] from Table I.

    Like Cartesian, the adjacency matrix is blocked by masters in both
    dimensions, but *both* dimensions are distributed blocked (CVC uses a
    cyclic column distribution): grid cell (row band of the source
    master, column band of the destination master) owns the edge.
    """

    name = "Checkerboard"
    invariant = "2d-cut"

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        pr, pc = grid_shape(prop.getNumPartitions())
        row_band = src_master // pc          # in [0, pr)
        col_band = dst_master // pr          # in [0, pc)
        return row_band * pc + col_band

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        pr, pc = grid_shape(prop.getNumPartitions())
        row_band = np.asarray(src_masters) // pc
        col_band = np.asarray(dst_masters) // pr
        return (row_band * pc + col_band).astype(np.int32)


class JaggedRule(EdgeRule):
    """Jagged vertex-cut — JVC [18] from Table I (streaming analogue).

    Offline JVC blocks the rows, then splits each row band's columns
    independently to balance its nonzeros.  A streaming partitioner only
    has the master assignment, so this analogue keeps the blocked rows
    and *staggers* the cyclic column distribution per row band — the
    column boundaries differ across bands (the "jagged" property) while
    each edge's owner still follows from pure arithmetic on the masters.
    """

    name = "Jagged"
    invariant = "2d-cut"

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        pr, pc = grid_shape(prop.getNumPartitions())
        row_band = src_master // pc
        col = (dst_master + row_band) % pc
        return row_band * pc + col

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        pr, pc = grid_shape(prop.getNumPartitions())
        row_band = np.asarray(src_masters) // pc
        col = (np.asarray(dst_masters) + row_band) % pc
        return (row_band * pc + col).astype(np.int32)


class DegreeHashRule(EdgeRule):
    """Degree-based hashing (DBH [17]) — an extension policy.

    Each edge is assigned by hashing the id of its lower-out-degree
    endpoint, so hub vertices get replicated while low-degree vertices
    keep their edges together.  Demonstrates that CuSP's interface covers
    the remaining streaming vertex-cut family in Table I.
    """

    name = "DegreeHash"
    invariant = "vertex-cut"

    @staticmethod
    def _hash(ids: np.ndarray, k: int) -> np.ndarray:
        # Fibonacci hashing; cheap, deterministic, well-mixed.
        return ((np.asarray(ids, dtype=np.uint64) * np.uint64(11400714819323198485)) >> np.uint64(40)) % np.uint64(k)

    def owner(
        self,
        prop: GraphProp,
        src_id: int,
        dst_id: int,
        src_master: int,
        dst_master: int,
        estate: PartitioningState | None = None,
    ) -> int:
        k = prop.getNumPartitions()
        if prop.getNodeOutDegree(src_id) <= prop.getNodeOutDegree(dst_id):
            return int(self._hash(np.array([src_id]), k)[0])
        return int(self._hash(np.array([dst_id]), k)[0])

    def owner_batch(
        self,
        prop: GraphProp,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_masters: np.ndarray,
        dst_masters: np.ndarray,
        estate: PartitioningState | None = None,
    ) -> np.ndarray:
        k = prop.getNumPartitions()
        src_ids = np.asarray(src_ids)
        dst_ids = np.asarray(dst_ids)
        use_src = prop.out_degrees(src_ids) <= prop.out_degrees(dst_ids)
        chosen = np.where(use_src, src_ids, dst_ids)
        return self._hash(chosen, k).astype(np.int32)


EDGE_RULES = {
    "Source": SourceRule,
    "Dest": DestRule,
    "Hybrid": HybridRule,
    "Cartesian": CartesianRule,
    "Checkerboard": CheckerboardRule,
    "Jagged": JaggedRule,
    "DegreeHash": DegreeHashRule,
}


def _register_streaming_rules() -> None:
    # Deferred import: streaming_rules imports EdgeRule from this module.
    from .streaming_rules import GreedyVertexCut, HDRFRule

    EDGE_RULES.setdefault("Greedy", GreedyVertexCut)
    EDGE_RULES.setdefault("HDRF", HDRFRule)


def make_edge_rule(name: str, **kwargs: object) -> EdgeRule:
    """Instantiate an edge rule by its paper name."""
    _register_streaming_rules()
    if name not in EDGE_RULES:
        raise KeyError(f"unknown edge rule {name!r}; choose from {list(EDGE_RULES)}")
    return EDGE_RULES[name](**kwargs)
