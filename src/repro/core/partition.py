"""Partition containers: one host's subgraph and the distributed whole.

A partition is completely defined by (i) the assignment of edges to
subgraphs and (ii) the choice of master vertices (paper §II).  Each
:class:`LocalPartition` holds one host's proxies (masters first, then
mirrors) and its local-id CSR (and optionally CSC) graph;
:class:`DistributedGraph` aggregates them with the global master map and
the partitioning-time breakdown, and computes the paper's quality metrics
(replication factor, node/edge balance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.stats import TimeBreakdown

__all__ = ["LocalPartition", "DistributedGraph"]


@dataclass
class LocalPartition:
    """One host's share of the partitioned graph.

    Local node ids order masters first (ascending global id) followed by
    mirrors (ascending global id); ``local_graph`` (and ``local_csc`` when
    requested) are expressed in local ids.
    """

    host: int
    #: Global id of each local proxy, masters first.
    global_ids: np.ndarray
    #: Number of leading entries of ``global_ids`` that are masters.
    num_masters: int
    #: For each proxy, the partition holding its master.
    master_host: np.ndarray
    #: Local-id CSR graph of the edges this partition owns.
    local_graph: CSRGraph
    #: Optional CSC (transposed) view, built by in-memory transpose.
    local_csc: CSRGraph | None = None
    #: Dense global-id -> local-id map (-1 where the node has no proxy
    #: here).  Built by the construction phase / partition loader; call
    #: :meth:`build_lookup` for hand-assembled partitions.
    _lookup: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_proxies(self) -> int:
        return int(self.global_ids.size)

    @property
    def num_mirrors(self) -> int:
        return self.num_proxies - self.num_masters

    @property
    def num_edges(self) -> int:
        return self.local_graph.num_edges

    def is_master(self, local_id: int) -> bool:
        return local_id < self.num_masters

    @property
    def master_global_ids(self) -> np.ndarray:
        return self.global_ids[: self.num_masters]

    @property
    def mirror_global_ids(self) -> np.ndarray:
        return self.global_ids[self.num_masters :]

    def _require_lookup(self) -> np.ndarray:
        if self._lookup is None:
            raise RuntimeError(
                f"LocalPartition(host={self.host}) has no global->local lookup "
                "table: it was constructed by hand.  Call build_lookup("
                "num_global_nodes) first, or obtain partitions from "
                "CuSP.partition / load_partitions, which build it."
            )
        return self._lookup

    def build_lookup(self, num_global_nodes: int) -> None:
        """Build the dense global-id -> local-id map for this partition."""
        lookup = np.full(int(num_global_nodes), -1, dtype=np.int64)
        lookup[self.global_ids] = np.arange(self.global_ids.size, dtype=np.int64)
        self._lookup = lookup

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Local ids of the given global ids (-1 where absent)."""
        return self._require_lookup()[np.asarray(global_ids)]

    def has_proxy(self, global_id: int) -> bool:
        return bool(self._require_lookup()[global_id] >= 0)

    def global_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """This partition's edges in global ids."""
        src, dst = self.local_graph.edges()
        return self.global_ids[src], self.global_ids[dst]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"LocalPartition(host={self.host}, masters={self.num_masters}, "
            f"mirrors={self.num_mirrors}, edges={self.num_edges})"
        )


@dataclass
class DistributedGraph:
    """The partitioned graph: every host's local partition plus metadata."""

    partitions: list[LocalPartition]
    #: Global master map: masters[v] is the partition of v's master proxy.
    masters: np.ndarray
    num_global_nodes: int
    num_global_edges: int
    policy_name: str
    #: Structural invariant of the partitioning ("edge-cut", "2d-cut",
    #: "vertex-cut") — drives analytics communication optimizations.
    invariant: str = "vertex-cut"
    #: Simulated partitioning-time breakdown (None for external partitions).
    breakdown: TimeBreakdown | None = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    # ------------------------------------------------------------------
    # Quality metrics (paper §V-C)
    # ------------------------------------------------------------------
    def replication_factor(self) -> float:
        """Average number of proxies per original vertex."""
        if self.num_global_nodes == 0:
            return 0.0
        total = sum(p.num_proxies for p in self.partitions)
        return total / self.num_global_nodes

    def edge_counts(self) -> np.ndarray:
        return np.array([p.num_edges for p in self.partitions], dtype=np.int64)

    def master_counts(self) -> np.ndarray:
        return np.array([p.num_masters for p in self.partitions], dtype=np.int64)

    def edge_balance(self) -> float:
        """Max/mean ratio of per-partition edge counts (1.0 = perfect)."""
        counts = self.edge_counts()
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    def node_balance(self) -> float:
        """Max/mean ratio of per-partition master counts."""
        counts = self.master_counts()
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    # ------------------------------------------------------------------
    # Validation (used heavily by the test suite)
    # ------------------------------------------------------------------
    def validate(self, original: CSRGraph | None = None) -> None:
        """Check the partitioning invariants; raise AssertionError on any
        violation.

        * every vertex has exactly one master, on the partition the master
          map says;
        * mirrors never duplicate masters within a partition and proxies
          are unique;
        * every local edge's endpoints have proxies on that partition;
        * if ``original`` is given, the union of the partitions' edges is
          exactly the original edge multiset.
        """
        n = self.num_global_nodes
        master_seen = np.zeros(n, dtype=np.int64)
        for p in self.partitions:
            gids = p.global_ids
            assert gids.size == np.unique(gids).size, "duplicate proxies"
            m = p.master_global_ids
            master_seen[m] += 1
            assert np.all(self.masters[m] == p.host), "master map mismatch"
            mirrors = p.mirror_global_ids
            if mirrors.size:
                assert np.all(self.masters[mirrors] != p.host), (
                    "mirror mastered locally"
                )
            assert np.array_equal(
                p.master_host, self.masters[gids]
            ), "stale master_host"
            src, dst = p.local_graph.edges()
            assert src.size == 0 or src.max() < gids.size, "edge endpoint out of range"
            assert dst.size == 0 or dst.max() < gids.size, "edge endpoint out of range"
        assert np.all(master_seen == 1), "each vertex needs exactly one master"
        total_edges = int(sum(p.num_edges for p in self.partitions))
        assert total_edges == self.num_global_edges, (
            f"edge count mismatch: {total_edges} != {self.num_global_edges}"
        )
        if original is not None:
            mine = self._global_edge_matrix()
            theirs = np.stack(original.edges(), axis=1)
            mine = mine[np.lexsort((mine[:, 1], mine[:, 0]))]
            theirs = theirs[np.lexsort((theirs[:, 1], theirs[:, 0]))]
            assert np.array_equal(mine, theirs), "edge multiset differs from original"

    def _global_edge_matrix(self) -> np.ndarray:
        parts = []
        for p in self.partitions:
            src, dst = p.global_edges()
            parts.append(np.stack([src, dst], axis=1))
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def to_global_graph(self) -> CSRGraph:
        """Reassemble the original graph from the partitions (testing)."""
        edges = self._global_edge_matrix()
        data = None
        if self.partitions and self.partitions[0].local_graph.is_weighted:
            data = np.concatenate(
                [p.local_graph.edge_data for p in self.partitions]
            )
        return CSRGraph.from_edges(
            edges[:, 0], edges[:, 1], num_nodes=self.num_global_nodes, edge_data=data
        )

    def partition_of_master(self, global_id: int) -> LocalPartition:
        return self.partitions[int(self.masters[global_id])]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DistributedGraph(policy={self.policy_name}, k={self.num_partitions}, "
            f"|V|={self.num_global_nodes}, |E|={self.num_global_edges}, "
            f"rep={self.replication_factor():.2f})"
        )
