"""The CuSP partitioner: five phases over a simulated cluster (paper §IV).

:class:`CuSP` is the user-facing entry point of the reproduction.  Give it
the number of partitions and a policy — either a name from the paper's
Table II or a custom (:class:`~repro.core.master_rules.MasterRule`,
:class:`~repro.core.edge_rules.EdgeRule`) pair — and call
:meth:`CuSP.partition` on a graph (in memory or a ``.gr`` file on disk).
The result is a :class:`~repro.core.partition.DistributedGraph` whose
``breakdown`` attribute carries the simulated per-phase timing of
Figure 4.

As in the paper, CuSP runs on as many hosts as desired partitions.
"""

from __future__ import annotations

import logging
import os

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.formats import read_gr
from ..runtime.cluster import SimulatedCluster
from ..runtime.cost_model import STAMPEDE2, CostModel
from .assignment_phase import run_edge_assignment
from .construction_phase import run_allocation, run_construction
from .masters_phase import run_master_assignment
from .partition import DistributedGraph
from .policies import Policy, make_policy
from .prop import GraphProp
from .reading import compute_read_ranges, read_bytes_for_range

__all__ = ["CuSP", "PHASE_NAMES"]

logger = logging.getLogger("repro.cusp")

#: Figure 4's phase names, in execution order.
PHASE_NAMES = [
    "Graph Reading",
    "Master Assignment",
    "Edge Assignment",
    "Graph Allocation/Other",
    "Graph Construction",
]


class CuSP:
    """Customizable streaming edge partitioner.

    Parameters
    ----------
    num_partitions:
        Number of partitions; the simulated cluster has one host per
        partition (paper §III-A).
    policy:
        A :class:`~repro.core.policies.Policy` or a name from Table II
        (e.g. ``"CVC"``).
    cost_model:
        Machine parameters for simulated timing.
    buffer_size:
        Message-buffer threshold in bytes (paper default 8 MB, §IV-D3);
        0 sends every logical message immediately (Figure 7's 0 MB point).
    sync_rounds:
        Bulk-synchronous rounds for masters/state synchronization during
        master assignment (paper default 100; Tables VI/VII sweep it).
    node_balance_weight / edge_balance_weight:
        Importance of node vs edge counts when dividing the input among
        hosts for reading (§IV-B1's command-line knobs).
    """

    def __init__(
        self,
        num_partitions: int,
        policy: Policy | str,
        cost_model: CostModel = STAMPEDE2,
        buffer_size: int = 8 << 20,
        sync_rounds: int = 100,
        node_balance_weight: float = 0.0,
        edge_balance_weight: float = 1.0,
        elide_master_communication: bool = True,
        host_speeds=None,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.cost_model = cost_model
        self.buffer_size = buffer_size
        self.sync_rounds = sync_rounds
        self.node_balance_weight = node_balance_weight
        self.edge_balance_weight = edge_balance_weight
        #: §IV-D5 optimizations (replicated computation for pure rules,
        #: request-driven assignment exchange); disable only for ablation.
        self.elide_master_communication = elide_master_communication
        #: Optional per-host compute speed factors (straggler modeling).
        self.host_speeds = host_speeds

    def partition(
        self, graph: CSRGraph | str | os.PathLike, output: str = "csr"
    ) -> DistributedGraph:
        """Partition ``graph`` and return the distributed result.

        ``graph`` may be a :class:`CSRGraph` or a path to a binary ``.gr``
        file.  ``output`` selects the local format each host constructs
        ("csr" or "csc", §III-A).
        """
        if not isinstance(graph, CSRGraph):
            logger.info("reading graph from %s", graph)
            graph = read_gr(graph)
        original = graph
        logger.info(
            "partitioning |V|=%d |E|=%d into %d partitions with %s",
            graph.num_nodes, graph.num_edges, self.num_partitions,
            self.policy.name,
        )
        if self.policy.input_format == "csc":
            # Streaming the CSC image means streaming incoming edges: the
            # partitioner sees the transpose.  (On a real system the CSC
            # file already exists on disk; the transpose here stands in
            # for reading that file and is not charged to any phase.)
            graph = graph.transpose()

        cluster = SimulatedCluster(
            self.num_partitions,
            cost_model=self.cost_model,
            buffer_size=self.buffer_size,
            host_speeds=self.host_speeds,
        )
        prop = GraphProp(graph, self.num_partitions)

        # Phase 1: graph reading.
        ranges = compute_read_ranges(
            graph,
            self.num_partitions,
            node_weight=self.node_balance_weight,
            edge_weight=self.edge_balance_weight,
        )
        with cluster.phase(PHASE_NAMES[0]) as ph:
            for h, (start, stop) in enumerate(ranges):
                ph.add_disk(h, read_bytes_for_range(graph, start, stop))

        # Phase 2: master assignment.
        with cluster.phase(PHASE_NAMES[1]) as ph:
            ma = run_master_assignment(
                ph, prop, self.policy, ranges,
                sync_rounds=self.sync_rounds,
                elide_master_communication=self.elide_master_communication,
            )

        # Phase 3: edge assignment.
        with cluster.phase(PHASE_NAMES[2]) as ph:
            assignment = run_edge_assignment(ph, prop, self.policy, ranges, ma.masters)

        # Phase 4: graph allocation.  Partitioning state is reset so rule
        # re-evaluation during construction reproduces the same decisions.
        with cluster.phase(PHASE_NAMES[3]) as ph:
            ma.state.reset()
            proxies = run_allocation(ph, prop, assignment, ma.masters)

        # Phase 5: graph construction.
        with cluster.phase(PHASE_NAMES[4]) as ph:
            partitions = run_construction(
                ph, prop, self.policy, assignment, ma.masters, proxies, output=output
            )

        breakdown = cluster.breakdown()
        logger.info(
            "partitioned with %s in %.6f simulated seconds "
            "(%.0f KB exchanged)",
            self.policy.name, breakdown.total,
            breakdown.comm_bytes() / 1024,
        )
        return DistributedGraph(
            partitions=partitions,
            masters=ma.masters,
            num_global_nodes=original.num_nodes,
            num_global_edges=original.num_edges,
            policy_name=self.policy.name,
            invariant=self.policy.invariant,
            breakdown=breakdown,
        )
