"""The CuSP partitioner: five phases over a simulated cluster (paper §IV).

:class:`CuSP` is the user-facing entry point of the reproduction.  Give it
the number of partitions and a policy — either a name from the paper's
Table II or a custom (:class:`~repro.core.master_rules.MasterRule`,
:class:`~repro.core.edge_rules.EdgeRule`) pair — and call
:meth:`CuSP.partition` on a graph (in memory or a ``.gr`` file on disk).
The result is a :class:`~repro.core.partition.DistributedGraph` whose
``breakdown`` attribute carries the simulated per-phase timing of
Figure 4.

As in the paper, CuSP runs on as many hosts as desired partitions.

Unlike the paper, the partitioner is *crash-recoverable*: attach a
:class:`~repro.runtime.faults.FaultPlan` and the run survives transient
send failures (retried with backoff by the communicator), message
drops/duplication, slow hosts, and host crashes.  Every phase checkpoints
its output (:class:`~repro.core.partition_io.PartitionCheckpoint`); when
a host crashes, its read slice is handed to the least-loaded survivor —
the *logical* phase schedule never changes — the aborted phase is
replayed from the last checkpoint, and the survivor is charged the
re-read of the dead host's graph slice plus all replayed work.  Because
the schedule is preserved, the recovered partition is bit-identical to
the fault-free one (masters and edge assignment alike), which
:mod:`repro.core.validate` can prove after the fact.
"""

from __future__ import annotations

import logging
import os

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.formats import read_gr
from ..runtime.cluster import SimulatedCluster
from ..runtime.colfab import resolve_fabric
from ..runtime.cost_model import STAMPEDE2, CostModel
from ..runtime.executor import HostTask
from ..runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultReport,
    HostCrashError,
    RecoveryManager,
    UnrecoverableClusterError,
)
from ..runtime.stats import PhaseReport, TimeBreakdown
from ..runtime.supervisor import DeadlinePolicy, RunSupervisor
from .assignment_phase import assignment_from_owners, run_edge_assignment
from .construction_phase import run_allocation, run_construction
from .contracts import contract_context_for
from .masters_phase import run_master_assignment
from .partition import DistributedGraph
from .partition_io import PartitionCheckpoint
from .policies import Policy, make_policy
from .prop import GraphProp
from .reading import (
    compute_read_ranges,
    read_bytes_for_range,
    read_bytes_for_ranges,
)

__all__ = ["CuSP", "PHASE_NAMES"]

logger = logging.getLogger("repro.cusp")

#: Figure 4's phase names, in execution order.
PHASE_NAMES = [
    "Graph Reading",
    "Master Assignment",
    "Edge Assignment",
    "Graph Allocation/Other",
    "Graph Construction",
]


def _read_slice(view, nbytes: int) -> None:
    """Charge one host's share of the input file (task-payload seam)."""
    view.add_disk(nbytes)


class CuSP:
    """Customizable streaming edge partitioner.

    Parameters
    ----------
    num_partitions:
        Number of partitions; the simulated cluster has one host per
        partition (paper §III-A).
    policy:
        A :class:`~repro.core.policies.Policy` or a name from Table II
        (e.g. ``"CVC"``).
    cost_model:
        Machine parameters for simulated timing.
    buffer_size:
        Message-buffer threshold in bytes (paper default 8 MB, §IV-D3);
        0 sends every logical message immediately (Figure 7's 0 MB point).
    sync_rounds:
        Bulk-synchronous rounds for masters/state synchronization during
        master assignment (paper default 100; Tables VI/VII sweep it).
    node_balance_weight / edge_balance_weight:
        Importance of node vs edge counts when dividing the input among
        hosts for reading (§IV-B1's command-line knobs).
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan`; the run then
        injects (and survives) the planned faults, and
        :attr:`last_fault_report` describes what happened.
    checkpoint_dir:
        Directory for durable per-phase checkpoints (in-memory snapshots
        when ``None``).  Durable checkpoints are written atomically and
        digest-verified on every load.
    resume:
        Resume an interrupted run from ``checkpoint_dir``: the manifest
        is validated, completed stages are digest-verified in order
        (falling back to the longest verified prefix), the injector/
        recovery/supervisor state recorded with the last verified stage
        is restored, and only the remaining phases execute — producing a
        partition and :class:`~repro.runtime.stats.TimeBreakdown`
        bit-identical to an uninterrupted run.
    supervise:
        Run supervision (:class:`~repro.runtime.supervisor.
        RunSupervisor`): ``True`` derives per-phase soft/hard deadlines
        from the cost model with the default
        :class:`~repro.runtime.supervisor.DeadlinePolicy` (or pass a
        policy instance) and quarantines hosts breaching the hard
        deadline, migrating their read slices to healthy hosts; the
        migration's re-reads are charged to the cost model.
        ``last_supervisor_report`` exposes the deadline history.
    max_retries:
        Retry budget, both per send (transient failures/drops) and per
        phase (crash replays).
    executor:
        The per-host execution engine: ``"serial"`` (default, the
        deterministic reference), ``"parallel"`` (thread pool with
        deterministic ledger merging — same partitions, same simulated
        breakdown), ``"process"`` (forked worker processes shipping
        columnar batches and ledger deltas back over pipes — same
        guarantees, true multi-core), their ``"-checked"`` variants
        (isolation monitoring), or an
        :class:`~repro.runtime.executor.Executor`.
    sanitizer:
        Phase-communication auditing: ``True`` attaches a fresh
        :class:`~repro.analysis.contracts.CommSan` (bound to this run's
        configuration), or pass a preconstructed instance to inspect its
        accumulated :attr:`~repro.analysis.contracts.CommSan.violations`
        afterwards.  Any contract breach raises
        :class:`~repro.analysis.contracts.ContractViolationError` at the
        offending phase's barrier.
    fabric:
        Message fabric for the phase pipeline: ``"columnar"`` (default)
        moves typed :class:`~repro.runtime.colfab.MessageBatch` blocks
        with vectorized pack/unpack; ``"scalar"`` is the original
        object-per-message path, kept as a bit-identical compatibility
        baseline (see ``docs/PERFORMANCE.md``).
    """

    def __init__(
        self,
        num_partitions: int,
        policy: Policy | str,
        cost_model: CostModel = STAMPEDE2,
        buffer_size: int = 8 << 20,
        sync_rounds: int = 100,
        node_balance_weight: float = 0.0,
        edge_balance_weight: float = 1.0,
        elide_master_communication: bool = True,
        host_speeds=None,
        fault_plan: FaultPlan | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        max_retries: int = 3,
        executor=None,
        sanitizer=None,
        fabric: str | None = None,
        resume: bool = False,
        supervise: bool | DeadlinePolicy = False,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        self.num_partitions = num_partitions
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.cost_model = cost_model
        self.buffer_size = buffer_size
        self.sync_rounds = sync_rounds
        self.node_balance_weight = node_balance_weight
        self.edge_balance_weight = edge_balance_weight
        #: §IV-D5 optimizations (replicated computation for pure rules,
        #: request-driven assignment exchange); disable only for ablation.
        self.elide_master_communication = elide_master_communication
        #: Optional per-host compute speed factors (straggler modeling).
        self.host_speeds = host_speeds
        if fault_plan is not None:
            fault_plan.validate()
            for crash in fault_plan.crashes:
                if crash.host >= num_partitions:
                    raise ValueError(
                        f"fault plan crashes host {crash.host}, but only "
                        f"{num_partitions} hosts exist"
                    )
            for host in fault_plan.slow_hosts:
                if not (0 <= int(host) < num_partitions):
                    raise ValueError(
                        f"fault plan slows host {host}, but only "
                        f"{num_partitions} hosts exist"
                    )
        self.fault_plan = fault_plan
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        if isinstance(supervise, DeadlinePolicy):
            supervise.validate()
        self.supervise = supervise
        self.max_retries = max_retries
        self.executor = executor
        #: Message fabric: ``"columnar"`` (default) ships typed
        #: MessageBatch blocks through the phases; ``"scalar"`` keeps the
        #: original per-payload path.  Partitions and every comm/time
        #: counter are bit-identical between the two.
        self.fabric = resolve_fabric(fabric)
        if sanitizer is True:
            from ..analysis.contracts import CommSan

            sanitizer = CommSan()
        elif sanitizer is False:
            sanitizer = None
        self.sanitizer = sanitizer
        #: :class:`~repro.runtime.faults.FaultReport` of the most recent
        #: :meth:`partition` call (None before the first call, or when no
        #: fault plan is attached).
        self.last_fault_report: FaultReport | None = None
        #: :class:`~repro.runtime.supervisor.RunSupervisor` of the most
        #: recent :meth:`partition` call (None unless ``supervise``).
        self.last_supervisor_report: RunSupervisor | None = None

    def _effective_host_speeds(self):
        """Merge the straggler knob with the fault plan's slow hosts."""
        plan = self.fault_plan
        if plan is None or not plan.slow_hosts:
            return self.host_speeds
        speeds = (
            np.ones(self.num_partitions, dtype=np.float64)
            if self.host_speeds is None
            else np.asarray(self.host_speeds, dtype=np.float64).copy()
        )
        for host, factor in plan.slow_hosts.items():
            speeds[int(host)] *= float(factor)
        return speeds

    def partition(
        self, graph: CSRGraph | str | os.PathLike, output: str = "csr"
    ) -> DistributedGraph:
        """Partition ``graph`` and return the distributed result.

        ``graph`` may be a :class:`CSRGraph` or a path to a binary ``.gr``
        file.  ``output`` selects the local format each host constructs
        ("csr" or "csc", §III-A).
        """
        if not isinstance(graph, CSRGraph):
            logger.info("reading graph from %s", graph)
            graph = read_gr(graph)
        original = graph
        logger.info(
            "partitioning |V|=%d |E|=%d into %d partitions with %s",
            graph.num_nodes, graph.num_edges, self.num_partitions,
            self.policy.name,
        )
        if self.policy.input_format == "csc":
            # Streaming the CSC image means streaming incoming edges: the
            # partitioner sees the transpose.  (On a real system the CSC
            # file already exists on disk; the transpose here stands in
            # for reading that file and is not charged to any phase.)
            graph = graph.transpose()

        k = self.num_partitions
        injector = (
            FaultInjector(self.fault_plan) if self.fault_plan is not None else None
        )
        if self.sanitizer is not None:
            # Bind the sanitizer to this run's configuration so that
            # conditional contract clauses and expected round counts are
            # evaluated against what the phases will actually do.
            self.sanitizer.context = contract_context_for(
                self.policy,
                k,
                sync_rounds=self.sync_rounds,
                elide_master_communication=self.elide_master_communication,
            )
        cluster = SimulatedCluster(
            k,
            cost_model=self.cost_model,
            buffer_size=self.buffer_size,
            host_speeds=self._effective_host_speeds(),
            injector=injector,
            max_send_retries=self.max_retries,
            executor=self.executor,
            sanitizer=self.sanitizer,
        )
        recovery = RecoveryManager(k)
        checkpoint = PartitionCheckpoint(
            self.checkpoint_dir,
            meta={
                "policy": self.policy.name,
                "num_partitions": k,
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
            },
            injector=injector,
            resume=self.resume,
        )
        supervisor = None
        if self.supervise:
            supervisor = RunSupervisor(
                self.cost_model,
                recovery,
                policy=(
                    self.supervise
                    if isinstance(self.supervise, DeadlinePolicy)
                    else None
                ),
                injector=injector,
            )
        self.last_supervisor_report = supervisor

        try:
            return self._partition_with_cluster(
                graph, original, k, output, injector, cluster, recovery,
                checkpoint, supervisor,
            )
        finally:
            # Retire the executor's worker pool and every resident
            # shared-memory segment — including when a phase raises, so
            # failed runs never leak segments or zombie workers.
            cluster.close()

    def _partition_with_cluster(
        self,
        graph: CSRGraph,
        original: CSRGraph,
        k: int,
        output: str,
        injector: FaultInjector | None,
        cluster: SimulatedCluster,
        recovery: RecoveryManager,
        checkpoint: PartitionCheckpoint,
        supervisor: "RunSupervisor | None",
    ) -> DistributedGraph:
        """The five phases, against a live cluster (see :meth:`partition`)."""
        #: Reports of phases completed by the interrupted process (resume
        #: only); prepended to this process's breakdown at the end.
        prior_reports: list[PhaseReport] = []
        done: list[str] = []
        if self.resume:
            done = checkpoint.completed()
            if done:
                state = checkpoint.runtime_state(done[-1])
                if state is None:
                    raise ValueError(
                        f"cannot resume: stage {done[-1]!r} carries no "
                        "runtime state; the checkpoint predates resume "
                        "support"
                    )
                prior_reports = [
                    PhaseReport.from_dict(d) for d in state["phase_reports"]
                ]
                if injector is not None and state.get("injector") is not None:
                    injector.restore_state(state["injector"])
                recovery.restore_state(state["recovery"])
                if supervisor is not None and state.get("supervisor") is not None:
                    supervisor.restore_state(state["supervisor"])
            logger.info(
                "resuming from %s: %d stage(s) verified%s",
                self.checkpoint_dir, len(done),
                (
                    f" (fell back at {checkpoint.fallback_stage!r})"
                    if checkpoint.fallback_stage
                    else ""
                ),
            )
        # Graph residency: the pooled process executor exports the CSR
        # arrays into shared-memory segments its workers map zero-copy;
        # every other executor returns the object unchanged.
        prop = cluster.executor.publish("prop", GraphProp(graph, k))

        def snapshot_runtime(stage):
            """Record restorable run state alongside ``stage``'s arrays.

            Written into the same atomic manifest update as the stage
            save, so a resumed process restores state that is exactly
            consistent with the arrays it replays from.
            """
            reports = prior_reports + [
                s.report(self.cost_model) for s in cluster.phase_stats
            ]
            checkpoint.set_runtime_state(
                stage,
                {
                    "phase_reports": [r.to_dict() for r in reports],
                    "injector": (
                        None if injector is None else injector.state_dict()
                    ),
                    "recovery": recovery.state_dict(),
                    "supervisor": (
                        None if supervisor is None else supervisor.state_dict()
                    ),
                },
            )

        def recoverable(name, body, charge_reread=True):
            """Run one phase; on a host crash, reassign and replay.

            The replay re-executes the phase from checkpointed inputs on
            the surviving hosts.  ``charge_reread`` additionally bills
            the survivor the disk re-read of every adopted slice (the
            reading phase re-reads inside its own body, so it opts out).
            """
            attempt = 0
            while True:
                try:
                    with cluster.phase(name, host_map=recovery.executors()) as ph:
                        adopted = recovery.drain_rereads()
                        if charge_reread:
                            executors = recovery.executors()
                            for slot in adopted:
                                start, stop = ranges[slot]
                                ph.add_disk(
                                    int(executors[slot]),
                                    read_bytes_for_range(graph, start, stop),
                                )
                        result = body(ph)
                    if supervisor is not None:
                        quarantined = supervisor.after_phase(ph)
                        for host in quarantined:
                            logger.warning(
                                "host %d breached the hard deadline in %r; "
                                "quarantined, slices migrate to healthy "
                                "hosts", host, name,
                            )
                    return result
                except HostCrashError as exc:
                    attempt += 1
                    if attempt > self.max_retries:
                        raise UnrecoverableClusterError(
                            f"phase {name!r} crashed {attempt} times; "
                            f"retry budget ({self.max_retries}) exhausted"
                        ) from exc
                    recovery.on_crash(exc.host, name)
                    logger.warning(
                        "host %d crashed during %r; replaying from "
                        "checkpoint (%d host(s) dead, attempt %d/%d)",
                        exc.host, name, recovery.num_dead, attempt,
                        self.max_retries,
                    )

        # Phase 1: graph reading.
        ranges = compute_read_ranges(
            graph,
            k,
            node_weight=self.node_balance_weight,
            edge_weight=self.edge_balance_weight,
        )

        def phase_reading(ph):
            ph.executor.run(
                ph,
                [
                    HostTask(h, _read_slice, label="read-slice", payload=nbytes)
                    for h, nbytes in enumerate(read_bytes_for_ranges(graph, ranges))
                ],
            )

        if "reading" in done:
            ranges_blob = checkpoint.load("reading")["ranges"]
        else:
            recoverable(PHASE_NAMES[0], phase_reading, charge_reread=False)
            snapshot_runtime("reading")
            ranges_blob = checkpoint.roundtrip(
                "reading", ranges=np.asarray(ranges, dtype=np.int64)
            )["ranges"]
        ranges = [(int(start), int(stop)) for start, stop in ranges_blob]

        # Phase 2: master assignment.
        def phase_masters(ph):
            return run_master_assignment(
                ph, prop, self.policy, ranges,
                sync_rounds=self.sync_rounds,
                elide_master_communication=self.elide_master_communication,
                fabric=self.fabric,
            )

        ma = None
        if "masters" in done:
            # A fresh process's policy state equals the post-phase reset,
            # so no live MasterAssignment is needed past this stage.
            masters = checkpoint.load("masters")["masters"]
        else:
            ma = recoverable(PHASE_NAMES[1], phase_masters)
            snapshot_runtime("masters")
            masters = checkpoint.roundtrip("masters", masters=ma.masters)[
                "masters"
            ]
        # Publish the *post-roundtrip* array: it is what every later
        # phase reads, and (unlike the live one) provably immutable.
        masters = cluster.executor.publish("masters", masters)

        # Phase 3: edge assignment.
        def phase_edges(ph):
            return run_edge_assignment(
                ph, prop, self.policy, ranges, masters, fabric=self.fabric
            )

        if "assignment" in done:
            owner_blob = checkpoint.load("assignment")
            assignment = assignment_from_owners(
                prop, ranges, [owner_blob[f"owners_{h}"] for h in range(k)]
            )
        else:
            live_assignment = recoverable(PHASE_NAMES[2], phase_edges)
            snapshot_runtime("assignment")
            owner_blob = checkpoint.roundtrip(
                "assignment",
                **{f"owners_{h}": live_assignment.owners[h] for h in range(k)},
            )
            assignment = assignment_from_owners(
                prop, ranges, [owner_blob[f"owners_{h}"] for h in range(k)]
            )
            # The owner grouping is a pure function of (owners, edges),
            # both of which round-trip bit-identically through the
            # checkpoint, so phases 4/5 reuse the grouping phase 3
            # already computed.  (A resumed run recomputes it from the
            # same inputs, with the same result.)
            assignment.adopt_groups(live_assignment)
        assignment = cluster.executor.publish("assignment", assignment)

        # Phase 4: graph allocation.  Partitioning state is reset so rule
        # re-evaluation during construction reproduces the same decisions.
        def phase_alloc(ph):
            if ma is not None:
                ma.state.reset()
            return run_allocation(
                ph, prop, assignment, masters, fabric=self.fabric
            )

        if "allocation" in done:
            proxy_blob = checkpoint.load("allocation")
        else:
            proxies = recoverable(PHASE_NAMES[3], phase_alloc)
            snapshot_runtime("allocation")
            proxy_blob = checkpoint.roundtrip(
                "allocation", **{f"proxies_{h}": proxies[h] for h in range(k)}
            )
        proxies = cluster.executor.publish(
            "proxies", [proxy_blob[f"proxies_{h}"] for h in range(k)]
        )

        # Phase 5: graph construction.
        def phase_construct(ph):
            return run_construction(
                ph, prop, self.policy, assignment, masters, proxies,
                output=output, fabric=self.fabric,
            )

        partitions = recoverable(PHASE_NAMES[4], phase_construct)

        if injector is not None:
            self.last_fault_report = FaultReport(
                plan=self.fault_plan,
                events=tuple(injector.events),
                crash_log=tuple(recovery.crash_log),
                replays=recovery.replays,
                straggler_log=tuple(recovery.straggler_log),
                torn_repairs=checkpoint.torn_repairs,
            )
            if injector.events:
                logger.info("fault report: %s", self.last_fault_report.summary())
        else:
            self.last_fault_report = None
        if supervisor is not None and supervisor.mitigations:
            logger.info("supervisor: %s", supervisor.summary())

        breakdown = TimeBreakdown(
            prior_reports + cluster.breakdown().phases
        )
        logger.info(
            "partitioned with %s in %.6f simulated seconds "
            "(%.0f KB exchanged)",
            self.policy.name, breakdown.total,
            breakdown.comm_bytes() / 1024,
        )
        return DistributedGraph(
            partitions=partitions,
            masters=masters,
            num_global_nodes=original.num_nodes,
            num_global_edges=original.num_edges,
            policy_name=self.policy.name,
            invariant=self.policy.invariant,
            breakdown=breakdown,
        )
