"""Saving and loading partitioned graphs (paper §III-A).

CuSP can write the constructed partitions to disk so that applications
can load them later without re-partitioning (the workflow the paper uses
to feed XtraPulp partitions into D-Galois).  The layout is one directory:

```
<dir>/meta.json            global metadata (policy, sizes, invariant)
<dir>/masters.npy          global master map
<dir>/part<i>.gr           partition i's local graph, binary CSR
<dir>/part<i>.npz          partition i's proxy table (global ids, counts)
```
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..graph.formats import read_gr, write_gr
from .partition import DistributedGraph, LocalPartition

__all__ = ["save_partitions", "load_partitions"]

_FORMAT_VERSION = 1


def save_partitions(dg: DistributedGraph, directory: str | os.PathLike) -> None:
    """Write ``dg`` under ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "policy": dg.policy_name,
        "invariant": dg.invariant,
        "num_partitions": dg.num_partitions,
        "num_global_nodes": dg.num_global_nodes,
        "num_global_edges": dg.num_global_edges,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    np.save(directory / "masters.npy", dg.masters)
    for p in dg.partitions:
        write_gr(p.local_graph, directory / f"part{p.host}.gr")
        np.savez(
            directory / f"part{p.host}.npz",
            global_ids=p.global_ids,
            num_masters=np.int64(p.num_masters),
            has_csc=np.bool_(p.local_csc is not None),
        )
        if p.local_csc is not None:
            write_gr(p.local_csc, directory / f"part{p.host}.csc.gr")


def load_partitions(directory: str | os.PathLike) -> DistributedGraph:
    """Load a partitioned graph previously written by :func:`save_partitions`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(f"{meta_path} not found; not a partition directory")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported partition format version {meta.get('format_version')}"
        )
    masters = np.load(directory / "masters.npy")
    n = int(meta["num_global_nodes"])
    partitions = []
    for host in range(int(meta["num_partitions"])):
        local_graph = read_gr(directory / f"part{host}.gr")
        blob = np.load(directory / f"part{host}.npz")
        global_ids = blob["global_ids"]
        num_masters = int(blob["num_masters"])
        local_csc = None
        if bool(blob["has_csc"]):
            local_csc = read_gr(directory / f"part{host}.csc.gr")
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[global_ids] = np.arange(global_ids.size)
        partitions.append(
            LocalPartition(
                host=host,
                global_ids=global_ids,
                num_masters=num_masters,
                master_host=masters[global_ids].astype(np.int32),
                local_graph=local_graph,
                local_csc=local_csc,
                _lookup=lookup,
            )
        )
    return DistributedGraph(
        partitions=partitions,
        masters=masters,
        num_global_nodes=n,
        num_global_edges=int(meta["num_global_edges"]),
        policy_name=str(meta["policy"]),
        invariant=str(meta["invariant"]),
        breakdown=None,
    )
