"""Saving and loading partitioned graphs (paper §III-A).

CuSP can write the constructed partitions to disk so that applications
can load them later without re-partitioning (the workflow the paper uses
to feed XtraPulp partitions into D-Galois).  The layout is one directory:

```
<dir>/meta.json            global metadata (policy, sizes, invariant)
<dir>/masters.npy          global master map
<dir>/part<i>.gr           partition i's local graph, binary CSR
<dir>/part<i>.npz          partition i's proxy table (global ids, counts)
```

The same directory-of-numpy-blobs layout backs
:class:`PartitionCheckpoint`, the per-phase checkpoint store the
crash-recovery machinery replays from:

```
<dir>/checkpoint.json      run identity, completed stages, digests
<dir>/<stage>.npz          one stage's output arrays
```

Durable checkpoints are **corruption-proof**: every stage file is
written atomically (tmp file + fsync + ``os.replace``), its SHA-256 —
plus a per-array content digest — is recorded in the manifest, and the
manifest itself is written atomically and carries a self-digest.  Every
durable write is verified by reading the file back; every durable
:meth:`PartitionCheckpoint.load` re-verifies the digest first, so a torn
or bit-rotted file raises :class:`CheckpointCorruptionError` instead of
feeding garbage into a replay.  Opening a directory in *resume* mode
(:mod:`repro.core.framework`'s ``--resume``) verifies the completed
stages in order and falls back to the longest verified prefix.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..graph.formats import read_gr, write_gr
from .partition import DistributedGraph, LocalPartition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.faults import FaultInjector

__all__ = [
    "save_partitions",
    "load_partitions",
    "PartitionCheckpoint",
    "CheckpointCorruptionError",
]

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 2

#: Keys meta.json must carry for a directory to be a loadable partition.
_REQUIRED_META_KEYS = (
    "format_version",
    "policy",
    "invariant",
    "num_partitions",
    "num_global_nodes",
    "num_global_edges",
)


class CheckpointCorruptionError(RuntimeError):
    """A durable checkpoint file or manifest failed digest verification."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _array_digest(arr: np.ndarray) -> str:
    """Content digest of one array: dtype + shape + buffer bytes."""
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp file + fsync + ``os.replace``.

    A crash at any point leaves either the old file or the new one —
    never a torn mixture — which is the durability half of the
    corruption-proof checkpoint protocol (digests are the other half).
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _serialize_npz(arrays: dict[str, np.ndarray]) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def save_partitions(dg: DistributedGraph, directory: str | os.PathLike) -> None:
    """Write ``dg`` under ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "policy": dg.policy_name,
        "invariant": dg.invariant,
        "num_partitions": dg.num_partitions,
        "num_global_nodes": dg.num_global_nodes,
        "num_global_edges": dg.num_global_edges,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    np.save(directory / "masters.npy", dg.masters)
    for p in dg.partitions:
        write_gr(p.local_graph, directory / f"part{p.host}.gr")
        np.savez(
            directory / f"part{p.host}.npz",
            global_ids=p.global_ids,
            num_masters=np.int64(p.num_masters),
            has_csc=np.bool_(p.local_csc is not None),
        )
        if p.local_csc is not None:
            write_gr(p.local_csc, directory / f"part{p.host}.csc.gr")


def load_partitions(directory: str | os.PathLike) -> DistributedGraph:
    """Load a partitioned graph previously written by :func:`save_partitions`.

    The directory's ``meta.json`` is schema-validated before anything is
    read: a missing file, unparsable JSON, a missing required key, or a
    ``format_version`` this code does not understand each raise a
    :class:`ValueError` naming exactly what is wrong.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(f"{meta_path} not found; not a partition directory")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{meta_path} is not valid JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise ValueError(f"{meta_path} must hold a JSON object, got {type(meta).__name__}")
    missing = [k for k in _REQUIRED_META_KEYS if k not in meta]
    if missing:
        raise ValueError(
            f"{meta_path} is missing required key(s) {', '.join(missing)}; "
            "not a partition directory written by save_partitions"
        )
    if meta["format_version"] != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported partition format version {meta['format_version']!r} "
            f"in {meta_path} (this build reads version {_FORMAT_VERSION})"
        )
    masters = np.load(directory / "masters.npy")
    n = int(meta["num_global_nodes"])
    partitions = []
    for host in range(int(meta["num_partitions"])):
        local_graph = read_gr(directory / f"part{host}.gr")
        blob = np.load(directory / f"part{host}.npz")
        for key in ("global_ids", "num_masters", "has_csc"):
            if key not in blob.files:
                raise ValueError(
                    f"part{host}.npz is missing array {key!r}; the partition "
                    "directory is incomplete or was written by other code"
                )
        global_ids = blob["global_ids"]
        num_masters = int(blob["num_masters"])
        local_csc = None
        if bool(blob["has_csc"]):
            local_csc = read_gr(directory / f"part{host}.csc.gr")
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[global_ids] = np.arange(global_ids.size)
        partitions.append(
            LocalPartition(
                host=host,
                global_ids=global_ids,
                num_masters=num_masters,
                master_host=masters[global_ids].astype(np.int32),
                local_graph=local_graph,
                local_csc=local_csc,
                _lookup=lookup,
            )
        )
    return DistributedGraph(
        partitions=partitions,
        masters=masters,
        num_global_nodes=n,
        num_global_edges=int(meta["num_global_edges"]),
        policy_name=str(meta["policy"]),
        invariant=str(meta["invariant"]),
        breakdown=None,
    )


class PartitionCheckpoint:
    """Per-phase checkpoint store for crash-recoverable partitioning.

    Each completed phase saves its output arrays under a *stage* key;
    a crash replay reloads the inputs it needs from the last completed
    stage.  With a ``directory`` the store is durable on disk (same
    numpy-blob layout family as :func:`save_partitions`) and every load
    round-trips through the files; without one it degrades to an
    in-memory snapshot store (still copy-isolated, so a replay can never
    observe mutations made after the save).

    Durable writes follow the corruption-proof protocol: atomic
    tmp+fsync+replace writes, SHA-256 file and per-array digests in the
    manifest, read-back verification after every write and before every
    load.  An attached :class:`~repro.runtime.faults.FaultInjector` may
    *tear* a planned stage write (``torn_checkpoint`` fault family,
    simulating a kill -9 mid-write); the read-back verification detects
    the torn file and rewrites it from the in-memory arrays, counted in
    :attr:`torn_repairs`.

    A durable checkpoint directory records the run's identity (policy,
    partition count, graph size).  Re-opening a directory written by a
    *different* run — or carrying an older manifest format — discards
    the stale contents rather than replaying someone else's state.  With
    ``resume=True`` the directory is instead *required* to match: the
    manifest is validated, every completed stage's digest is verified in
    order, and the completed list falls back to the longest verified
    prefix (so a torn tail never poisons a resumed run).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        meta: dict | None = None,
        injector: "FaultInjector | None" = None,
        resume: bool = False,
    ):
        self.meta = {"checkpoint_version": _CHECKPOINT_VERSION, **(meta or {})}
        self.directory = Path(directory) if directory is not None else None
        self.injector = injector
        self._memory: dict[str, dict[str, np.ndarray]] = {}
        self._completed: list[str] = []
        self._digests: dict[str, dict[str, Any]] = {}
        self._runtime: dict[str, dict[str, Any]] = {}
        #: Torn stage writes detected by read-back verification and
        #: repaired from the in-memory arrays.
        self.torn_repairs = 0
        #: First previously-completed stage that failed verification on
        #: resume (``None`` when the whole prefix verified).
        self.fallback_stage: str | None = None
        if resume and self.directory is None:
            raise ValueError("resume=True requires a checkpoint directory")
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            if resume:
                self._open_for_resume()
            else:
                self._adopt_or_reset_directory()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        assert self.directory is not None
        return self.directory / "checkpoint.json"

    def _manifest_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "format_version": _CHECKPOINT_VERSION,
            "meta": self.meta,
            "completed": self._completed,
            "digests": self._digests,
            "runtime": self._runtime,
        }
        doc["manifest_sha256"] = _sha256(
            json.dumps(doc, sort_keys=True).encode()
        )
        return doc

    def _write_manifest(self) -> None:
        _atomic_write_bytes(
            self._manifest_path(),
            json.dumps(self._manifest_doc(), indent=2).encode(),
        )

    def _read_manifest(self) -> dict[str, Any] | None:
        """Parse and digest-verify the on-disk manifest (None if absent
        or unparsable; raises :class:`CheckpointCorruptionError` when it
        parses but fails its self-digest)."""
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict):
            return None
        recorded = doc.get("manifest_sha256")
        if recorded is not None:
            body = {k: v for k, v in doc.items() if k != "manifest_sha256"}
            if _sha256(json.dumps(body, sort_keys=True).encode()) != recorded:
                raise CheckpointCorruptionError(
                    f"checkpoint manifest {path} fails its self-digest; the "
                    "manifest was truncated or edited outside this store"
                )
        return doc

    def _adopt_or_reset_directory(self) -> None:
        try:
            doc = self._read_manifest()
        except CheckpointCorruptionError:
            doc = None  # a corrupt manifest is stale by definition
        if (
            doc is not None
            and doc.get("format_version") == _CHECKPOINT_VERSION
            and doc.get("meta") == self.meta
        ):
            digests = doc.get("digests", {})
            runtime = doc.get("runtime", {})
            kept: list[str] = []
            for stage in doc.get("completed", ()):
                try:
                    self._digests[stage] = digests[stage]
                    self._verify_durable(stage)
                except (KeyError, CheckpointCorruptionError):
                    self._digests.pop(stage, None)
                    continue
                kept.append(stage)
                if stage in runtime:
                    self._runtime[stage] = runtime[stage]
            self._completed = kept
            return
        # Stale, foreign, or older-format checkpoint: start fresh.
        assert self.directory is not None
        for stale in self.directory.glob("*.npz"):
            stale.unlink()
        for stale in self.directory.glob("*.npz.tmp"):
            stale.unlink()
        self._completed = []
        self._digests = {}
        self._runtime = {}
        self._write_manifest()

    def _open_for_resume(self) -> None:
        path = self._manifest_path()
        try:
            doc = self._read_manifest()
        except CheckpointCorruptionError:
            raise
        if doc is None:
            raise ValueError(
                f"cannot resume: {path} is missing or unreadable; pass the "
                "checkpoint directory of an interrupted run"
            )
        if doc.get("format_version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"cannot resume: {path} has manifest format "
                f"{doc.get('format_version')!r}, this build writes "
                f"{_CHECKPOINT_VERSION}"
            )
        their_meta = doc.get("meta")
        if their_meta != self.meta:
            diff = [
                k
                for k in sorted(set(self.meta) | set(their_meta or {}))
                if (their_meta or {}).get(k) != self.meta.get(k)
            ]
            raise ValueError(
                "cannot resume: checkpoint was written by a different run "
                f"(mismatched key(s): {', '.join(diff)}); re-run with the "
                "same graph, policy, and partition count"
            )
        self._digests = dict(doc.get("digests", {}))
        runtime = doc.get("runtime", {})
        verified: list[str] = []
        for stage in doc.get("completed", ()):
            try:
                self._verify_durable(stage, deep=True)
            except CheckpointCorruptionError:
                self.fallback_stage = stage
                break
            verified.append(stage)
        self._completed = verified
        self._digests = {s: self._digests[s] for s in verified}
        self._runtime = {s: runtime[s] for s in verified if s in runtime}
        if self.fallback_stage is not None:
            # Drop the unverified tail on disk too, so a second resume
            # (or a crash during this one) sees a consistent store.
            self._write_manifest()

    # ------------------------------------------------------------------
    # Stage persistence
    # ------------------------------------------------------------------
    def save(self, stage: str, **arrays: np.ndarray) -> None:
        """Record ``stage`` as completed with its output ``arrays``.

        Durable saves are atomic and verified by read-back; a write torn
        by the injector's ``torn_checkpoint`` fault is detected by the
        digest check and repaired from the in-memory arrays.
        """
        arrs = {k: np.asarray(v) for k, v in arrays.items()}
        if self.directory is not None:
            data = _serialize_npz(arrs)
            self._digests[stage] = {
                "file_sha256": _sha256(data),
                "nbytes": len(data),
                "arrays": {k: _array_digest(v) for k, v in arrs.items()},
            }
            path = self.directory / f"{stage}.npz"
            torn = self.injector is not None and self.injector.torn_checkpoint(
                stage
            )
            if torn:
                # Simulated kill -9 mid-write: a truncated file lands at
                # the final path (as a non-atomic writer would leave it).
                path.write_bytes(data[: len(data) // 2])
            else:
                _atomic_write_bytes(path, data)
            try:
                self._verify_durable(stage)
            except CheckpointCorruptionError:
                # Read-back verification caught the torn write while the
                # good arrays are still in memory: rewrite and re-verify.
                _atomic_write_bytes(path, data)
                self._verify_durable(stage)
                self.torn_repairs += 1
        else:
            self._memory[stage] = {k: v.copy() for k, v in arrs.items()}
        if stage not in self._completed:
            self._completed.append(stage)
        if self.directory is not None:
            self._write_manifest()

    def _verify_durable(self, stage: str, deep: bool = False) -> None:
        """Digest-verify one durable stage file.

        ``deep=True`` additionally re-hashes every array against its
        recorded content digest (used on resume, where the file-level
        hash alone cannot vouch for what a foreign writer stored).
        """
        assert self.directory is not None
        entry = self._digests.get(stage)
        path = self.directory / f"{stage}.npz"
        if entry is None:
            raise CheckpointCorruptionError(
                f"stage {stage!r} has no recorded digest in the manifest"
            )
        if not path.exists():
            raise CheckpointCorruptionError(
                f"stage file {path} is missing; the checkpoint was pruned "
                "or never fully written"
            )
        data = path.read_bytes()
        if _sha256(data) != entry["file_sha256"]:
            raise CheckpointCorruptionError(
                f"stage file {path} fails digest verification "
                f"({len(data)} byte(s) on disk, {entry['nbytes']} expected); "
                "the write was torn or the file was corrupted"
            )
        if deep:
            with np.load(io.BytesIO(data)) as blob:
                recorded = entry.get("arrays", {})
                for name in recorded:
                    if name not in blob.files or (
                        _array_digest(blob[name]) != recorded[name]
                    ):
                        raise CheckpointCorruptionError(
                            f"array {name!r} of stage {stage!r} fails its "
                            "content digest"
                        )

    def verify(self, stage: str, deep: bool = False) -> None:
        """Verify ``stage``'s stored bytes against the manifest digests.

        Raises :class:`KeyError` for a stage never checkpointed and
        :class:`CheckpointCorruptionError` on any mismatch.  In-memory
        stores are trivially verified (copies cannot tear).
        """
        if stage not in self._completed:
            raise KeyError(f"stage {stage!r} was never checkpointed")
        if self.directory is not None:
            self._verify_durable(stage, deep=deep)

    def load(self, stage: str) -> dict[str, np.ndarray]:
        """The arrays saved for ``stage`` (copies; mutation-safe).

        Durable loads digest-verify the file first, so a corrupted
        checkpoint raises :class:`CheckpointCorruptionError` instead of
        feeding damaged arrays into a replay.
        """
        if stage not in self._completed:
            raise KeyError(f"stage {stage!r} was never checkpointed")
        if self.directory is not None:
            self._verify_durable(stage)
            with np.load(self.directory / f"{stage}.npz") as blob:
                return {k: blob[k].copy() for k in blob.files}
        return {k: v.copy() for k, v in self._memory[stage].items()}

    def roundtrip(self, stage: str, **arrays: np.ndarray) -> dict[str, np.ndarray]:
        """Save ``stage`` and hand back the checkpointed copies.

        The partitioner feeds every phase from the round-tripped arrays,
        so a crash replay reads exactly what recovery would read — the
        checkpoint layer is exercised on every run, not only on failure.
        """
        self.save(stage, **arrays)
        return self.load(stage)

    def has(self, stage: str) -> bool:
        return stage in self._completed

    def completed(self) -> list[str]:
        return list(self._completed)

    # ------------------------------------------------------------------
    # Runtime state (cross-process resume)
    # ------------------------------------------------------------------
    def set_runtime_state(self, stage: str, state: dict[str, Any]) -> None:
        """Attach the run's restorable state as of ``stage``'s save.

        Call *before* :meth:`save`/:meth:`roundtrip` for the stage: the
        state rides in the same manifest write, so stage arrays and
        runtime state are always mutually consistent on disk.
        """
        self._runtime[stage] = state

    def runtime_state(self, stage: str) -> dict[str, Any] | None:
        """The runtime state recorded with ``stage`` (None if absent)."""
        return self._runtime.get(stage)
