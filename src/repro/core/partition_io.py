"""Saving and loading partitioned graphs (paper §III-A).

CuSP can write the constructed partitions to disk so that applications
can load them later without re-partitioning (the workflow the paper uses
to feed XtraPulp partitions into D-Galois).  The layout is one directory:

```
<dir>/meta.json            global metadata (policy, sizes, invariant)
<dir>/masters.npy          global master map
<dir>/part<i>.gr           partition i's local graph, binary CSR
<dir>/part<i>.npz          partition i's proxy table (global ids, counts)
```

The same directory-of-numpy-blobs layout backs
:class:`PartitionCheckpoint`, the per-phase checkpoint store the
crash-recovery machinery replays from:

```
<dir>/checkpoint.json      run identity + completed stages
<dir>/<stage>.npz          one stage's output arrays
```
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..graph.formats import read_gr, write_gr
from .partition import DistributedGraph, LocalPartition

__all__ = ["save_partitions", "load_partitions", "PartitionCheckpoint"]

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1


def save_partitions(dg: DistributedGraph, directory: str | os.PathLike) -> None:
    """Write ``dg`` under ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "policy": dg.policy_name,
        "invariant": dg.invariant,
        "num_partitions": dg.num_partitions,
        "num_global_nodes": dg.num_global_nodes,
        "num_global_edges": dg.num_global_edges,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    np.save(directory / "masters.npy", dg.masters)
    for p in dg.partitions:
        write_gr(p.local_graph, directory / f"part{p.host}.gr")
        np.savez(
            directory / f"part{p.host}.npz",
            global_ids=p.global_ids,
            num_masters=np.int64(p.num_masters),
            has_csc=np.bool_(p.local_csc is not None),
        )
        if p.local_csc is not None:
            write_gr(p.local_csc, directory / f"part{p.host}.csc.gr")


def load_partitions(directory: str | os.PathLike) -> DistributedGraph:
    """Load a partitioned graph previously written by :func:`save_partitions`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(f"{meta_path} not found; not a partition directory")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported partition format version {meta.get('format_version')}"
        )
    masters = np.load(directory / "masters.npy")
    n = int(meta["num_global_nodes"])
    partitions = []
    for host in range(int(meta["num_partitions"])):
        local_graph = read_gr(directory / f"part{host}.gr")
        blob = np.load(directory / f"part{host}.npz")
        global_ids = blob["global_ids"]
        num_masters = int(blob["num_masters"])
        local_csc = None
        if bool(blob["has_csc"]):
            local_csc = read_gr(directory / f"part{host}.csc.gr")
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[global_ids] = np.arange(global_ids.size)
        partitions.append(
            LocalPartition(
                host=host,
                global_ids=global_ids,
                num_masters=num_masters,
                master_host=masters[global_ids].astype(np.int32),
                local_graph=local_graph,
                local_csc=local_csc,
                _lookup=lookup,
            )
        )
    return DistributedGraph(
        partitions=partitions,
        masters=masters,
        num_global_nodes=n,
        num_global_edges=int(meta["num_global_edges"]),
        policy_name=str(meta["policy"]),
        invariant=str(meta["invariant"]),
        breakdown=None,
    )


class PartitionCheckpoint:
    """Per-phase checkpoint store for crash-recoverable partitioning.

    Each completed phase saves its output arrays under a *stage* key;
    a crash replay reloads the inputs it needs from the last completed
    stage.  With a ``directory`` the store is durable on disk (same
    numpy-blob layout family as :func:`save_partitions`) and every load
    round-trips through the files; without one it degrades to an
    in-memory snapshot store (still copy-isolated, so a replay can never
    observe mutations made after the save).

    A durable checkpoint directory records the run's identity (policy,
    partition count, graph size).  Re-opening a directory written by a
    *different* run discards the stale contents rather than replaying
    someone else's state.
    """

    def __init__(
        self, directory: str | os.PathLike | None = None, meta: dict | None = None
    ):
        self.meta = {"checkpoint_version": _CHECKPOINT_VERSION, **(meta or {})}
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, dict[str, np.ndarray]] = {}
        self._completed: list[str] = []
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._adopt_or_reset_directory()

    def _manifest_path(self) -> Path:
        return self.directory / "checkpoint.json"

    def _adopt_or_reset_directory(self) -> None:
        path = self._manifest_path()
        if not path.exists():
            self._write_manifest()
            return
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            doc = None
        if doc is not None and doc.get("meta") == self.meta:
            stages = [s for s in doc.get("completed", ())
                      if (self.directory / f"{s}.npz").exists()]
            self._completed = stages
            return
        # Stale or foreign checkpoint: start fresh.
        for stale in self.directory.glob("*.npz"):
            stale.unlink()
        self._write_manifest()

    def _write_manifest(self) -> None:
        self._manifest_path().write_text(
            json.dumps({"meta": self.meta, "completed": self._completed}, indent=2)
        )

    def save(self, stage: str, **arrays: np.ndarray) -> None:
        """Record ``stage`` as completed with its output ``arrays``."""
        arrays = {k: np.asarray(v) for k, v in arrays.items()}
        if self.directory is not None:
            np.savez(self.directory / f"{stage}.npz", **arrays)
        else:
            self._memory[stage] = {k: v.copy() for k, v in arrays.items()}
        if stage not in self._completed:
            self._completed.append(stage)
        if self.directory is not None:
            self._write_manifest()

    def load(self, stage: str) -> dict[str, np.ndarray]:
        """The arrays saved for ``stage`` (copies; mutation-safe)."""
        if stage not in self._completed:
            raise KeyError(f"stage {stage!r} was never checkpointed")
        if self.directory is not None:
            with np.load(self.directory / f"{stage}.npz") as blob:
                return {k: blob[k].copy() for k in blob.files}
        return {k: v.copy() for k, v in self._memory[stage].items()}

    def roundtrip(self, stage: str, **arrays: np.ndarray) -> dict[str, np.ndarray]:
        """Save ``stage`` and hand back the checkpointed copies.

        The partitioner feeds every phase from the round-tripped arrays,
        so a crash replay reads exactly what recovery would read — the
        checkpoint layer is exercised on every run, not only on failure.
        """
        self.save(stage, **arrays)
        return self.load(stage)

    def has(self, stage: str) -> bool:
        return stage in self._completed

    def completed(self) -> list[str]:
        return list(self._completed)
