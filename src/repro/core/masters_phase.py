"""Phase 2: master assignment (paper §IV-B2, §IV-D4, §IV-D5).

Each host assigns the master proxy of every vertex whose edges it read.
The phase's communication depends on the rule's capabilities:

* **Pure rules** (no state, no ``masters`` map — Contiguous/ContiguousEB):
  the assignment is a pure function, so no synchronization happens at all;
  hosts later *recompute* any assignment they need (replicating
  computation instead of communication, §IV-D5).

* **History-sensitive rules** (Fennel/FennelEB): the phase runs in
  ``sync_rounds`` bulk-synchronous rounds.  Before the first round each
  host *requests* the assignments it will need — the masters of the
  neighbors of its own nodes — from the hosts that will assign them
  (§IV-D5's request-driven elision: assignments nobody asked for are never
  sent).  At every round boundary the partitioning state is reconciled by
  a global reduction and each host ships the round's newly-made
  assignments to their requesters.

The paper notes this exchange is deliberately *not* deterministic on a
real cluster (hosts don't block for slow peers).  The simulation is
bulk-synchronous and therefore deterministic — a reproducibility-friendly
member of the family of schedules the real system may produce.

Under the default ``"columnar"`` fabric the request and shipping paths
move typed :class:`~repro.runtime.colfab.MessageBatch` blocks — shipping
goes through a per-host :class:`~repro.runtime.colfab.BatchAccumulator`
that flushes at the executor's phase barrier — with byte/message charges
identical to the ``"scalar"`` compatibility path.
"""

from __future__ import annotations

import numpy as np

from ..runtime.colfab import ColumnSchema, MessageBatch, resolve_fabric
from ..runtime.executor import HostTask, HostView
from ..runtime.stats import PhaseStats
from .assignment_phase import _mask_unique
from .policies import Policy
from .prop import GraphProp
from .state import PartitioningState

__all__ = ["run_master_assignment", "MasterAssignment"]

#: Serialized size of one (node id, partition) assignment entry.
_ASSIGNMENT_ENTRY_BYTES = 12
#: Serialized size of one requested node id.
_REQUEST_ENTRY_BYTES = 8

#: Columnar channel types for the request-driven exchange.
_REQUEST_SCHEMA = ColumnSchema((("ids", np.int64),))
_ASSIGNMENT_SCHEMA = ColumnSchema(
    (("ids", np.int64), ("masters", np.int32))
)


class MasterAssignment:
    """Result of the master-assignment phase."""

    def __init__(self, masters: np.ndarray, state: PartitioningState):
        #: Partition of every vertex's master proxy (global, fully known
        #: once the phase completes — each entry was computed by exactly
        #: one host).
        self.masters = masters
        #: The partitioning state after the phase (reset before reuse).
        self.state = state


def _owning_host(node_ids: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Which host reads (and therefore assigns) each node."""
    return np.searchsorted(bounds, node_ids, side="right") - 1


# -- Task bodies ---------------------------------------------------------
#
# Module-level so the pooled process executor can ship them by reference
# (a pickled dotted name) instead of forking the whole parent per
# barrier.  Everything a body needs travels in its payload tuple; the
# big immutable inputs (``prop``, ``masters``) resolve against the
# pool's shared-memory residents, so no graph bytes cross a pipe.
# Parent-side installs remain closures on ``run_master_assignment``'s
# locals — apply callbacks never ship.


def _pure_assign_body(view: HostView, payload: tuple) -> np.ndarray | None:
    """Assign one host's node slice under a pure (stateless) rule."""
    rule, prop, k, num_hosts, elide, h, start, stop = payload
    node_ids = np.arange(start, stop, dtype=np.int64)
    assigned = (
        rule.assign_batch(prop, node_ids, None) if node_ids.size else None
    )
    if elide:
        # No communication: each host recomputes neighbors'
        # assignments on demand (§IV-D5); charge the recomputation
        # for the neighbor set now.
        neighbor_count = int(
            prop.graph.indptr[stop] - prop.graph.indptr[start]
        )
        view.add_compute(
            rule.compute_units(node_ids.size, 0, k) + neighbor_count
        )
    else:
        # Ablation: naive broadcast of every assignment.  The payload
        # is accounting-only (None body), so there is nothing to
        # columnarize; it stays on the scalar verb under both fabrics.
        view.add_compute(rule.compute_units(node_ids.size, 0, k))
        for peer in range(num_hosts):
            if peer != h and node_ids.size:
                # repro-lint: disable-next-line=scalar-send-in-hot-loop -- accounting-only ablation broadcast, no payload to batch
                view.send(
                    peer, None, tag="master-broadcast",
                    nbytes=node_ids.size * _ASSIGNMENT_ENTRY_BYTES,
                    coalesce=True,
                )
    return assigned


def _request_masters_body(view: HostView, payload: tuple) -> list[np.ndarray]:
    """Columnar request pass: ask assigners for needed masters."""
    prop, bounds, num_hosts, j, start, stop = payload
    lo, hi = prop.graph.indptr[start], prop.graph.indptr[stop]
    # ``nbrs`` is sorted, so the per-assigner split is a searchsorted
    # against the host bounds instead of a boolean mask per assigner:
    # nbrs[cuts[a]:cuts[a+1]] == nbrs[_owning_host(nbrs, bounds) == a]
    # exactly.
    nbrs = _mask_unique(prop.getNumNodes(), prop.graph.indices[lo:hi])
    cuts = np.searchsorted(nbrs, bounds)
    per_assigner = []
    for assigner in range(num_hosts):
        wanted = nbrs[cuts[assigner] : cuts[assigner + 1]]
        per_assigner.append(wanted)
        if assigner != j and wanted.size:
            view.send_batch(
                assigner,
                MessageBatch(_REQUEST_SCHEMA, (wanted,)),
                tag="master-requests",
                nbytes=wanted.size * _REQUEST_ENTRY_BYTES,
                coalesce=True,
            )
    return per_assigner


def _request_masters_body_scalar(
    view: HostView, payload: tuple
) -> list[np.ndarray]:
    """Scalar-fabric request pass (compatibility path)."""
    prop, bounds, num_hosts, j, start, stop = payload
    lo, hi = prop.graph.indptr[start], prop.graph.indptr[stop]
    nbrs = np.unique(prop.graph.indices[lo:hi])
    owner = _owning_host(nbrs, bounds)
    per_assigner = []
    for assigner in range(num_hosts):
        wanted = nbrs[owner == assigner]
        per_assigner.append(wanted)
        if assigner != j and wanted.size:
            # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
            view.send(
                assigner, wanted, tag="master-requests",
                nbytes=wanted.size * _REQUEST_ENTRY_BYTES,
                coalesce=True,
            )
    return per_assigner


def _assign_chunk_body(view: HostView, payload: tuple):
    """Score one round's chunk of a host's nodes against frozen state."""
    rule, prop, k, state, masters_h, h, c0, c1 = payload
    node_ids = np.arange(c0, c1, dtype=np.int64)
    if node_ids.size == 0:
        return node_ids, None, None
    # Each host scores against the frozen snapshot plus its own pending
    # delta.  The rule's in-place updates (masters_h, state delta) are
    # scratch work in a worker; the body returns everything the parent
    # needs to install them.
    assigned = rule.assign_batch(prop, node_ids, state.host_view(h), masters_h)
    view.add_compute(
        rule.compute_units(
            node_ids.size,
            int(prop.graph.indptr[c1] - prop.graph.indptr[c0]),
            k,
        )
    )
    return node_ids, assigned, state.export_host_delta(h)


def _ship_assignments_body(
    view: HostView, payload: tuple
) -> list[tuple[int, np.ndarray]]:
    """Columnar shipping pass: send fresh assignments to requesters."""
    requests_h, masters, num_hosts, h, fresh = payload
    if fresh.size == 0:
        return []
    lo, hi = fresh[0], fresh[-1]
    acc = view.accumulator()
    shipped = []
    for j in range(num_hosts):
        if j == h:
            continue
        wanted = requests_h[j]
        ship = wanted[(wanted >= lo) & (wanted <= hi)]
        if ship.size:
            # One staged block per requester; the accumulator flushes
            # at the executor barrier, charging exactly the scalar
            # path's per-peer coalesced send.
            acc.append(
                j,
                MessageBatch(_ASSIGNMENT_SCHEMA, (ship, masters[ship])),
                tag="master-assignments",
                nbytes=ship.size * _ASSIGNMENT_ENTRY_BYTES,
                coalesce=True,
            )
            shipped.append((j, ship))
    return shipped


def _ship_assignments_body_scalar(
    view: HostView, payload: tuple
) -> list[tuple[int, np.ndarray]]:
    """Scalar-fabric shipping pass (compatibility path)."""
    requests_h, masters, num_hosts, h, fresh = payload
    if fresh.size == 0:
        return []
    lo, hi = fresh[0], fresh[-1]
    shipped = []
    for j in range(num_hosts):
        if j == h:
            continue
        wanted = requests_h[j]
        ship = wanted[(wanted >= lo) & (wanted <= hi)]
        if ship.size:
            # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
            view.send(
                j, (ship, masters[ship]), tag="master-assignments",
                nbytes=ship.size * _ASSIGNMENT_ENTRY_BYTES,
                coalesce=True,
            )
            shipped.append((j, ship))
    return shipped


def run_master_assignment(
    phase: PhaseStats,
    prop: GraphProp,
    policy: Policy,
    ranges: list[tuple[int, int]],
    sync_rounds: int = 10,
    elide_master_communication: bool = True,
    fabric: str | None = None,
) -> MasterAssignment:
    """Assign every vertex's master, with exact communication accounting.

    ``elide_master_communication=False`` disables the paper's §IV-D5
    optimizations — pure rules are *not* replicated (every assignment is
    broadcast instead of recomputed) — and exists for the ablation
    benchmark.
    """
    if sync_rounds < 1:
        raise ValueError("sync_rounds must be >= 1")
    fabric = resolve_fabric(fabric)
    rule = policy.master_rule
    k = prop.getNumPartitions()
    n = prop.getNumNodes()
    num_hosts = len(ranges)
    state = rule.make_state(k, num_hosts)
    masters = np.full(n, -1, dtype=np.int32)

    if rule.is_pure:
        # Pure rules are embarrassingly per-host: each task computes its
        # own node slice and the parent installs it at the barrier (the
        # task-payload seam — bodies never write shared state, so the
        # same code runs unchanged in a pooled worker).
        def pure_task(h: int, start: int, stop: int) -> HostTask:
            def install(assigned: np.ndarray | None) -> np.ndarray | None:
                if assigned is not None:
                    masters[start:stop] = assigned
                return assigned

            return HostTask(
                h, _pure_assign_body, label="assign-pure",
                payload=(
                    rule, prop, k, num_hosts,
                    elide_master_communication, h, start, stop,
                ),
                apply=install,
            )

        phase.executor.run(
            phase,
            [pure_task(h, start, stop) for h, (start, stop) in enumerate(ranges)],
        )
        return MasterAssignment(masters, state)

    # History-sensitive path: request-driven assignment exchange.
    bounds = np.array([r[0] for r in ranges] + [n], dtype=np.int64)
    # requested_from[h] = node ids host j requested from host h, per j.
    requests: list[list[np.ndarray]] = [
        [np.empty(0, dtype=np.int64) for _ in range(num_hosts)]
        for _ in range(num_hosts)
    ]
    # Each host's private view of the masters map (only synced entries).
    known = [np.full(n, -1, dtype=np.int32) for _ in range(num_hosts)]

    if elide_master_communication:
        # Request-driven exchange (§IV-D5): each host asks only for the
        # masters of its read-nodes' neighbors.  Task j computes column j
        # of the request table; the parent installs it at the barrier.
        request_body = (
            _request_masters_body
            if fabric == "columnar"
            else _request_masters_body_scalar
        )

        def request_task(j: int, start: int, stop: int) -> HostTask:
            def install(per_assigner: list[np.ndarray]) -> list[np.ndarray]:
                # The parent fills column j of the request table at the
                # barrier; bodies only compute and send.
                for assigner, wanted in enumerate(per_assigner):
                    requests[assigner][j] = wanted
                return per_assigner

            return HostTask(
                j, request_body, label="request-masters",
                payload=(prop, bounds, num_hosts, j, start, stop),
                apply=install,
            )

        phase.executor.run(
            phase,
            [request_task(j, start, stop) for j, (start, stop) in enumerate(ranges)],
        )
    else:
        # Ablation: every host "requests" everything, so each assignment
        # is shipped to all peers.
        for h, (start, stop) in enumerate(ranges):
            everything = np.arange(start, stop, dtype=np.int64)
            for j in range(num_hosts):
                requests[h][j] = everything

    # Round-robin over sync_rounds chunks of each host's node range.
    chunk_bounds = [
        np.linspace(start, stop, sync_rounds + 1).astype(np.int64)
        for (start, stop) in ranges
    ]
    masters_arg: list[np.ndarray | None]
    if rule.uses_masters:
        masters_arg = list(known)
    else:
        masters_arg = [None] * num_hosts

    def assign_task(h: int, r: int) -> HostTask:
        c0, c1 = int(chunk_bounds[h][r]), int(chunk_bounds[h][r + 1])

        def install(result) -> np.ndarray:
            node_ids, assigned, delta = result
            if assigned is not None:
                masters[c0:c1] = assigned
                known[h][c0:c1] = assigned  # own assignments visible at once
                state.import_host_delta(h, delta)
            return node_ids

        return HostTask(
            h, _assign_chunk_body, label="assign-chunk",
            payload=(rule, prop, k, state, masters_arg[h], h, c0, c1),
            apply=install,
        )

    ship_body = (
        _ship_assignments_body
        if fabric == "columnar"
        else _ship_assignments_body_scalar
    )

    def ship_task(h: int, fresh: np.ndarray) -> HostTask:
        def install(
            shipped: list[tuple[int, np.ndarray]],
        ) -> list[tuple[int, np.ndarray]]:
            # Requester j learns the shipped assignments at the barrier;
            # ``masters`` is frozen for the shipped ranges this round.
            for j, ship in shipped:
                known[j][ship] = masters[ship]
            return shipped

        return HostTask(
            h, ship_body, label="ship-assignments",
            payload=(requests[h], masters, num_hosts, h, fresh),
            apply=install,
        )

    for r in range(sync_rounds):
        newly = phase.executor.run(
            phase, [assign_task(h, r) for h in range(num_hosts)]
        )
        # Round boundary: reconcile state, ship requested assignments.
        # Master-assignment rounds never block on peers (paper §IV-D5).
        state.sync_round(phase.comm, blocking=False)
        phase.executor.run(
            phase, [ship_task(h, newly[h]) for h in range(num_hosts)]
        )

    return MasterAssignment(masters, state)
