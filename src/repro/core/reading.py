"""Phase 1: graph reading (paper §IV-B1).

The edge array of the on-disk CSR image is divided contiguously among
hosts so that each host reads roughly the same amount, *without splitting
any node's outgoing edges across hosts*.  Equivalently, each host gets a
contiguous range of vertices whose total cost — a weighted combination of
node count and edge count, the paper's command-line balance knobs — is
roughly equal.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["compute_read_ranges", "read_bytes_for_range", "read_bytes_for_ranges"]


def compute_read_ranges(
    graph: CSRGraph,
    num_hosts: int,
    node_weight: float = 0.0,
    edge_weight: float = 1.0,
) -> list[tuple[int, int]]:
    """Contiguous node ranges ``[(start, stop), ...]``, one per host.

    Host ``h`` reads the outgoing edges of nodes ``start <= v < stop``.
    Ranges cover ``[0, num_nodes)`` exactly, never split a node, and
    balance ``node_weight * nodes + edge_weight * edges`` per host.  With
    the default weights (0, 1) this is the paper's edge-balanced division.
    """
    if num_hosts < 1:
        raise ValueError("num_hosts must be >= 1")
    if node_weight < 0 or edge_weight < 0 or (node_weight == 0 and edge_weight == 0):
        raise ValueError("weights must be non-negative and not both zero")
    n = graph.num_nodes
    # Cumulative cost at each node boundary: cost[v] = cost of nodes [0, v).
    cum = node_weight * np.arange(n + 1, dtype=np.float64)
    cum += edge_weight * graph.indptr.astype(np.float64)
    total = cum[-1]
    if total == 0:
        # Degenerate (e.g. empty graph with edge_weight only): node-balanced.
        bounds = np.linspace(0, n, num_hosts + 1).astype(np.int64)
    else:
        # Block size uses the same ceil((total + 1) / k) arithmetic as the
        # ContiguousEB master rule, so that with the default edge-balanced
        # weights the read ranges coincide exactly with ContiguousEB's
        # master blocks — which is what makes EEC communication-free
        # (paper §V-A: "a host creates a partition from the nodes and
        # edges it reads from the disk").
        block = np.ceil((total + 1) / num_hosts)
        targets = block * np.arange(1, num_hosts, dtype=np.float64)
        inner = np.searchsorted(cum, targets, side="left")
        bounds = np.concatenate([[0], inner, [n]]).astype(np.int64)
        # Enforce monotonicity and validity (ties when many empty nodes;
        # the ceil'd block size can push targets past the final boundary).
        np.maximum.accumulate(bounds, out=bounds)
        np.minimum(bounds, n, out=bounds)
    return [(int(bounds[h]), int(bounds[h + 1])) for h in range(num_hosts)]


def read_bytes_for_range(graph: CSRGraph, start: int, stop: int) -> int:
    """Bytes host reads from disk for nodes [start, stop): its slice of the
    row-pointer array plus its slice of the destination (and weight) arrays.
    """
    nodes = stop - start + 1 if stop > start else 0
    edges = int(graph.indptr[stop] - graph.indptr[start]) if stop > start else 0
    per_edge = 16 if graph.is_weighted else 8
    return nodes * 8 + edges * per_edge


def read_bytes_for_ranges(
    graph: CSRGraph, ranges: list[tuple[int, int]]
) -> list[int]:
    """Per-host disk bytes for a full list of read ranges.

    Also used by crash recovery: when a host dies, its slice must be
    re-read from disk by whichever survivor adopts it.
    """
    return [read_bytes_for_range(graph, start, stop) for start, stop in ranges]
