"""Partitioning policies: (getMaster, getEdgeOwner) pairs (paper Table II).

A policy composes one master rule with one edge rule, plus the input
orientation ("csr" streams outgoing edges; "csc" streams incoming edges,
i.e. partitions the transpose — the paper's second variant of every
policy, §III-B).  The registry covers the six named policies the paper
evaluates plus the two Table II omissions and the DBH extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from .edge_rules import EdgeRule, make_edge_rule
from .master_rules import MasterRule, make_master_rule

__all__ = ["Policy", "make_policy", "policy_names", "PAPER_POLICIES", "POLICY_TABLE"]


@dataclass(frozen=True)
class Policy:
    """A complete partitioning policy."""

    name: str
    master_rule: MasterRule
    edge_rule: EdgeRule
    #: "csr" = stream outgoing edges, "csc" = stream incoming edges.
    input_format: str = "csr"

    def __post_init__(self) -> None:
        if self.input_format not in ("csr", "csc"):
            raise ValueError("input_format must be 'csr' or 'csc'")

    @property
    def invariant(self) -> str:
        """Structural invariant of the resulting partitions."""
        return self.edge_rule.invariant

    def describe(self) -> str:
        return (
            f"{self.name}: getMaster={self.master_rule.name}, "
            f"getEdgeOwner={self.edge_rule.name}, input={self.input_format}, "
            f"invariant={self.invariant}"
        )


#: Paper Table II: policy name -> (master rule, edge rule).
POLICY_TABLE: dict[str, tuple[str, str]] = {
    # The six evaluated policies.
    "EEC": ("ContiguousEB", "Source"),      # Gemini's edge-balanced edge-cut
    "HVC": ("ContiguousEB", "Hybrid"),      # PowerLyra's hybrid vertex-cut
    "CVC": ("ContiguousEB", "Cartesian"),   # Cartesian vertex-cut
    "FEC": ("FennelEB", "Source"),          # Fennel edge-cut
    "GVC": ("FennelEB", "Hybrid"),          # Ginger vertex-cut
    "SVC": ("FennelEB", "Cartesian"),       # Sugar vertex-cut (new in paper)
    # The two combinations Table II omits.
    "CEC": ("Contiguous", "Source"),        # plain contiguous edge-cut
    "FVC": ("Fennel", "Source"),            # plain Fennel edge-cut
    # Extensions: the remaining Table I streaming vertex-cuts.
    "DBH": ("ContiguousEB", "DegreeHash"),     # degree-based hashing [17]
    "PGC": ("ContiguousEB", "Greedy"),         # PowerGraph greedy [4]
    "HDRF": ("ContiguousEB", "HDRF"),          # high-degree replicated first [16]
    "BVC": ("ContiguousEB", "Checkerboard"),   # checkerboard vertex-cut [19]
    "JVC": ("ContiguousEB", "Jagged"),         # jagged vertex-cut [18]
    "LEC": ("LDG", "Source"),                  # linear deterministic greedy [12]
}

#: The policies the paper's evaluation sweeps (Figures 3-6).
PAPER_POLICIES = ["EEC", "HVC", "CVC", "FEC", "GVC", "SVC"]


def policy_names() -> list[str]:
    return list(POLICY_TABLE)


def make_policy(
    name: str,
    input_format: str = "csr",
    degree_threshold: int = 100,
    gamma: float = 1.5,
) -> Policy:
    """Instantiate a named policy.

    ``degree_threshold`` feeds both FennelEB's short-circuit and Hybrid's
    high-degree test (the paper uses 1000 at web-crawl scale; the default
    here is scaled to the stand-in datasets).  ``gamma`` is the Fennel
    exponent (paper: 1.5).
    """
    if name not in POLICY_TABLE:
        raise KeyError(f"unknown policy {name!r}; choose from {policy_names()}")
    master_name, edge_name = POLICY_TABLE[name]
    master_kwargs = {}
    if master_name in ("Fennel", "FennelEB"):
        master_kwargs["gamma"] = gamma
    if master_name == "FennelEB":
        master_kwargs["degree_threshold"] = degree_threshold
    edge_kwargs = {}
    if edge_name == "Hybrid":
        edge_kwargs["degree_threshold"] = degree_threshold
    return Policy(
        name=name,
        master_rule=make_master_rule(master_name, **master_kwargs),
        edge_rule=make_edge_rule(edge_name, **edge_kwargs),
        input_format=input_format,
    )
