"""History-sensitive partitioning state (paper §III-A, §IV-D4).

A partitioning rule may depend on decisions already made ("assign this
edge to the partition that currently has the fewest edges").  Each rule
declares the state type it needs; CuSP synchronizes that state across
hosts *periodically* — bulk-synchronous rounds with a global reduction at
each round boundary, not per-update coherence.

The reproduction models this exactly: every host holds a *snapshot* of
the globally-reconciled state plus a *local delta* of its own updates
since the last reconciliation.  ``sync_round`` folds all deltas into a new
snapshot through the communicator's allreduce (which the cost model
charges).  The number of rounds is a runtime parameter (Tables VI/VII).
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator

__all__ = ["PartitioningState", "VoidState", "PartitionLoadState"]


class PartitioningState:
    """Base class for user-defined partitioning state.

    Subclasses must be mergeable by summation of deltas.  The default
    implementation is stateless (``void`` in the paper's terms).
    """

    #: Whether the state carries any information (False => sync is a no-op).
    stateful: bool = False

    def host_view(self, host: int) -> "PartitioningState":
        """The state as host ``host`` currently sees it."""
        return self

    def sync_round(self, comm: Communicator, blocking: bool = True) -> None:
        """Reconcile all hosts' deltas (a round boundary)."""

    def reset(self) -> None:
        """Restore initial values.

        The paper resets partitioning state before graph construction so
        that re-invoking the rules yields the same decisions (§IV-B4).
        """

    def export_host_delta(self, host: int):
        """Picklable snapshot of ``host``'s unsynchronized delta.

        The process executor's task-payload seam: a worker's in-place
        state updates die with the worker, so the task body exports the
        delta and the parent replays it via :meth:`import_host_delta`.
        Stateless subclasses return ``None`` (nothing to ship).
        """
        return None

    def import_host_delta(self, host: int, delta) -> None:
        """Install a delta exported by :meth:`export_host_delta`.

        Set semantics (idempotent): applying a host's own exported delta
        on the serial path is a no-op re-assignment of identical values.
        """


class VoidState(PartitioningState):
    """No state: used by Contiguous/ContiguousEB and all edge rules here."""

    stateful = False


class _LoadView:
    """One host's current estimate of the global partition loads.

    Exposes the paper's ``mstate.numNodes[p]`` / ``mstate.numEdges[p]``
    fields.  Reads see snapshot + the host's own unsynchronized updates;
    writes accumulate into the host's delta.
    """

    def __init__(self, owner: "PartitionLoadState", host: int):
        self._owner = owner
        self._host = host

    @property
    def numNodes(self) -> np.ndarray:
        return self._owner._snapshot_nodes + self._owner._delta_nodes[self._host]

    @property
    def numEdges(self) -> np.ndarray:
        return self._owner._snapshot_edges + self._owner._delta_edges[self._host]

    def add_node(self, partition: int, count: int = 1) -> None:
        self._owner._delta_nodes[self._host][partition] += count

    def add_edges(self, partition: int, count: int) -> None:
        self._owner._delta_edges[self._host][partition] += count


class PartitionLoadState(PartitioningState):
    """Per-partition node and edge counts (Fennel/FennelEB mstate).

    ``num_hosts`` hosts update it concurrently; reconciliation sums every
    host's delta into the shared snapshot and clears the deltas, exactly
    one allreduce of ``2 * num_partitions`` int64 per round.
    """

    stateful = True

    def __init__(self, num_partitions: int, num_hosts: int):
        if num_partitions < 1 or num_hosts < 1:
            raise ValueError("num_partitions and num_hosts must be >= 1")
        self.num_partitions = num_partitions
        self.num_hosts = num_hosts
        self._snapshot_nodes = np.zeros(num_partitions, dtype=np.int64)
        self._snapshot_edges = np.zeros(num_partitions, dtype=np.int64)
        self._delta_nodes = [
            np.zeros(num_partitions, dtype=np.int64) for _ in range(num_hosts)
        ]
        self._delta_edges = [
            np.zeros(num_partitions, dtype=np.int64) for _ in range(num_hosts)
        ]

    def host_view(self, host: int) -> _LoadView:
        if not (0 <= host < self.num_hosts):
            raise ValueError(f"host {host} out of range")
        return _LoadView(self, host)

    def sync_round(self, comm: Communicator, blocking: bool = True) -> None:
        stacked = [
            np.concatenate([self._delta_nodes[h], self._delta_edges[h]])
            for h in range(self.num_hosts)
        ]
        total = comm.allreduce_sum(stacked, blocking=blocking)
        self._snapshot_nodes += total[: self.num_partitions]
        self._snapshot_edges += total[self.num_partitions :]
        for h in range(self.num_hosts):
            self._delta_nodes[h][:] = 0
            self._delta_edges[h][:] = 0
        if blocking:
            comm.barrier()

    def reset(self) -> None:
        self._snapshot_nodes[:] = 0
        self._snapshot_edges[:] = 0
        for h in range(self.num_hosts):
            self._delta_nodes[h][:] = 0
            self._delta_edges[h][:] = 0

    def export_host_delta(self, host: int) -> tuple[np.ndarray, np.ndarray]:
        return (
            self._delta_nodes[host].copy(),
            self._delta_edges[host].copy(),
        )

    def import_host_delta(self, host: int, delta) -> None:
        if delta is None:
            return
        nodes, edges = delta
        self._delta_nodes[host][:] = nodes
        self._delta_edges[host][:] = edges

    def totals(self) -> tuple[np.ndarray, np.ndarray]:
        """Fully-reconciled (nodes, edges) counts, ignoring sync boundaries."""
        nodes = self._snapshot_nodes + np.sum(self._delta_nodes, axis=0)
        edges = self._snapshot_edges + np.sum(self._delta_edges, axis=0)
        return nodes, edges
