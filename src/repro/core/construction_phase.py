"""Phases 4 and 5: graph allocation and graph construction (paper §IV-B4-5).

Allocation: with the edge-assignment metadata in hand, each host knows its
final proxy and edge counts; it allocates its local CSR arrays and builds
its global-id -> local-id map.  Partitioning state is reset so the rules
would return identical values if re-evaluated (§IV-B4).

Construction: each host streams its read edges out to their owners —
serialized per source node, buffered up to the message-buffer threshold
(§IV-D3) — and inserts received edges into its preallocated structure.
If a CSC partition is requested, each host finishes with a local
in-memory transpose, which needs no communication (Algorithm 4 line 13).

Under the default ``"columnar"`` fabric both phases share the
:class:`~repro.core.assignment_phase.HostGroups` owner grouping cached on
the :class:`~repro.core.assignment_phase.EdgeAssignment` (one stable sort
per host serves endpoint grouping, edge shipping and the per-peer unique
source counts), and edges travel as typed
:class:`~repro.runtime.colfab.MessageBatch` columns.  The ``"scalar"``
fabric keeps the original per-payload formulation with identical charges.

Task bodies live at module level so the pooled process executor can ship
them by reference; the phase inputs they share (``assignment``,
``masters``, ``proxies``) are published as shared-memory residents so
workers map them zero-copy.  The allocation pass's endpoint sets are
pure index *descriptors* into the assignment's group cache (see
``_group_endpoints_body``), so on the columnar path no endpoint arrays
are published or shipped at all; only the scalar compatibility path
still publishes materialized endpoint arrays.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.colfab import ColumnSchema, MessageBatch, resolve_fabric
from ..runtime.executor import HostTask, HostView
from ..runtime.stats import PhaseStats
from .assignment_phase import EdgeAssignment, _mask_unique
from .partition import LocalPartition
from .policies import Policy
from .prop import GraphProp

__all__ = ["run_allocation", "run_construction"]


# -- Task bodies ---------------------------------------------------------


def _group_endpoints_body(
    view: HostView, payload: tuple
) -> list[tuple[int, int, int, int, int, int]]:
    """Columnar endpoint grouping for one reading host.

    Returns *descriptors* — ``(j, h, usrc_lo, usrc_hi, cut_lo, cut_hi)``
    index ranges into host ``h``'s group cache — rather than the
    endpoint arrays themselves.  The consumer (``_build_proxies_body``)
    resolves them against its own view of the shared assignment, so no
    endpoint bytes ever cross the process boundary.
    """
    assignment, num_hosts, h = payload
    groups = assignment.host_groups(h)
    pieces: list[tuple[int, int, int, int, int, int]] = []
    for j in range(num_hosts):
        if groups.cuts[j + 1] > groups.cuts[j]:
            # Sources arrive already deduplicated from the group cache;
            # destinations stay raw views — the owner dedups once over
            # its whole union instead of per piece.
            pieces.append((
                j, h,
                int(groups.usrc_cuts[j]), int(groups.usrc_cuts[j + 1]),
                int(groups.cuts[j]), int(groups.cuts[j + 1]),
            ))
    return pieces


def _group_endpoints_body_scalar(
    view: HostView, payload: tuple
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Scalar-fabric endpoint grouping (compatibility path)."""
    assignment, num_hosts, h = payload
    src, dst, _w = assignment.host_edges(h)
    owner = assignment.owners[h]
    order = np.argsort(owner, kind="stable")
    sorted_owner = owner[order]
    cuts = np.searchsorted(sorted_owner, np.arange(num_hosts + 1))
    pieces: list[tuple[int, np.ndarray, np.ndarray]] = []
    for j in range(num_hosts):
        sl = order[cuts[j] : cuts[j + 1]]
        if sl.size:
            pieces.append((j, np.unique(src[sl]), np.unique(dst[sl])))
    return pieces


def _build_proxies_body(view: HostView, payload: tuple) -> np.ndarray:
    """Columnar proxy-table union for one owning host.

    ``endpoint_refs`` holds the pass-1 descriptors for this owner; each
    resolves to a zero-copy slice of the reading host's group cache on
    the (shared) assignment.
    """
    assignment, masters, endpoint_refs, n, j = payload
    pieces = []
    for h, u_lo, u_hi, c_lo, c_hi in endpoint_refs:
        groups = assignment.host_groups(h)
        pieces.append(groups.usrc[u_lo:u_hi])
        pieces.append(groups.dst_sorted[c_lo:c_hi])
    gids = _mask_unique(n, np.flatnonzero(masters == j), *pieces)
    # Allocation work: local arrays sized by proxies + expected edges,
    # plus the global-to-local map construction.
    view.add_compute(float(gids.size) + float(assignment.to_receive[j]))
    return gids


def _build_proxies_body_scalar(view: HostView, payload: tuple) -> np.ndarray:
    """Scalar-fabric proxy-table union (compatibility path)."""
    assignment, masters, endpoint_refs, n, j = payload
    mastered = np.flatnonzero(masters == j).astype(np.int64)
    pieces = list(endpoint_refs) + [mastered]
    gids = np.unique(np.concatenate(pieces))
    view.add_compute(float(gids.size) + float(assignment.to_receive[j]))
    return gids


def _ship_edges_body(view: HostView, payload: tuple) -> None:
    """Columnar edge shipping for one reading host."""
    assignment, schema, per_edge, num_hosts, h = payload
    src, dst, w = assignment.host_edges(h)
    groups = assignment.host_groups(h)
    for j in range(num_hosts):
        lo, hi = int(groups.cuts[j]), int(groups.cuts[j + 1])
        if hi == lo:
            continue
        s = groups.src_sorted[lo:hi]
        d = groups.dst_sorted[lo:hi]
        if w is not None:
            cols = (s, d, w[groups.order[lo:hi]])
        else:
            cols = (s, d)
        # Serialized per source node: node id + its edge list (paper
        # §IV-C3); the per-peer unique source count falls out of the
        # group cache instead of an np.unique here.
        unique_srcs = int(groups.usrc_cuts[j + 1] - groups.usrc_cuts[j])
        nbytes = unique_srcs * 8 + s.size * per_edge
        view.send_batch(
            j, MessageBatch(schema, cols), tag="edges",
            logical_messages=unique_srcs, nbytes=nbytes,
        )
    # Re-evaluating getEdgeOwner costs one unit per edge; remote edges
    # additionally pay serialization.  Local edges are constructed in
    # place (Algorithm 4 line 5) and are charged at the receiver only.
    local = int(groups.cuts[h + 1] - groups.cuts[h])
    remote = int(src.size) - local
    view.add_compute(float(src.size) + float(remote))


def _ship_edges_body_scalar(view: HostView, payload: tuple) -> None:
    """Scalar-fabric edge shipping (compatibility path)."""
    assignment, per_edge, weighted, num_hosts, h = payload
    src, dst, w = assignment.host_edges(h)
    owner = assignment.owners[h]
    order = np.argsort(owner, kind="stable")
    sorted_owner = owner[order]
    cuts = np.searchsorted(sorted_owner, np.arange(num_hosts + 1))
    for j in range(num_hosts):
        sl = order[cuts[j] : cuts[j + 1]]
        if sl.size == 0:
            continue
        s, d = src[sl], dst[sl]
        payload_j = (s, d, w[sl] if weighted else None)
        # Serialized per source node: node id + its edge list (paper
        # §IV-C3); the comm layer turns the byte volume into network
        # messages according to the buffer threshold.
        unique_srcs = int(np.unique(s).size)
        nbytes = unique_srcs * 8 + s.size * per_edge
        # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
        view.send(
            j, payload_j, tag="edges",
            logical_messages=unique_srcs, nbytes=nbytes,
        )
    # Re-evaluating getEdgeOwner costs one unit per edge; remote edges
    # additionally pay serialization.  Local edges are constructed in
    # place (Algorithm 4 line 5) and are charged at the receiver only.
    remote = int(src.size - (owner == h).sum())
    view.add_compute(float(src.size) + float(remote))


def _assemble_partition(
    view: HostView,
    j: int,
    all_src: np.ndarray,
    all_dst: np.ndarray,
    all_w: np.ndarray | None,
    proxies: list[np.ndarray],
    masters: np.ndarray,
    assignment: EdgeAssignment,
    n: int,
    output: str,
) -> LocalPartition:
    """Receiver-side assembly shared by both fabrics."""
    gids = proxies[j]
    lookup = np.full(n, -1, dtype=np.int64)
    mastered_mask = masters[gids] == j
    ordered = np.concatenate([gids[mastered_mask], gids[~mastered_mask]])
    num_masters = int(mastered_mask.sum())
    lookup[ordered] = np.arange(ordered.size, dtype=np.int64)
    assert all_src.size == assignment.to_receive[j], (
        "received edge count differs from edge-assignment metadata"
    )
    local_graph = CSRGraph.from_edges(
        lookup[all_src],
        lookup[all_dst],
        num_nodes=ordered.size,
        edge_data=all_w,
    )
    # Deserialization + parallel insertion: ~2 units/edge.
    view.add_compute(2.0 * all_src.size)
    local_csc = None
    if output == "csc":
        local_csc = local_graph.transpose()
        view.add_compute(float(local_graph.num_edges))
    return LocalPartition(
        host=j,
        global_ids=ordered,
        num_masters=num_masters,
        master_host=masters[ordered].astype(np.int32),
        local_graph=local_graph,
        local_csc=local_csc,
        _lookup=lookup,
    )


def _build_partition_body(view: HostView, payload: tuple) -> LocalPartition:
    """Columnar partition assembly for one owning host."""
    proxies, masters, assignment, schema, weighted, n, output, j = payload
    rb = view.recv_all_batch(tag="edges", schema=schema)
    all_w = rb.columns["w"] if weighted else None
    return _assemble_partition(
        view, j, rb.columns["src"], rb.columns["dst"], all_w,
        proxies, masters, assignment, n, output,
    )


def _build_partition_body_scalar(
    view: HostView, payload: tuple
) -> LocalPartition:
    """Scalar-fabric partition assembly (compatibility path)."""
    proxies, masters, assignment, schema, weighted, n, output, j = payload
    received = view.recv_all(tag="edges")
    srcs = [p[0] for _, p in received]
    dsts = [p[1] for _, p in received]
    ws = [p[2] for _, p in received] if weighted else None
    if srcs:
        all_src = np.concatenate(srcs)
        all_dst = np.concatenate(dsts)
        all_w = np.concatenate(ws) if weighted else None
    else:
        all_src = np.empty(0, dtype=np.int64)
        all_dst = np.empty(0, dtype=np.int64)
        all_w = np.empty(0, dtype=np.int64) if weighted else None
    return _assemble_partition(
        view, j, all_src, all_dst, all_w,
        proxies, masters, assignment, n, output,
    )


# -- Phase drivers -------------------------------------------------------


def run_allocation(
    phase: PhaseStats,
    prop: GraphProp,
    assignment: EdgeAssignment,
    masters: np.ndarray,
    fabric: str | None = None,
) -> list[np.ndarray]:
    """Build every host's proxy table and charge allocation work.

    Returns, per host, the sorted array of global ids with proxies there:
    every vertex mastered on the host plus every endpoint of an edge the
    host owns.
    """
    fabric = resolve_fabric(fabric)
    num_hosts = len(assignment.owners)
    n = prop.getNumNodes()
    group_body = (
        _group_endpoints_body
        if fabric == "columnar"
        else _group_endpoints_body_scalar
    )

    # Pass 1: each reading host groups its edge endpoints by owner.
    grouped = phase.executor.run(
        phase,
        [
            HostTask(
                h, group_body, label="group-endpoints",
                payload=(assignment, num_hosts, h),
            )
            for h in range(num_hosts)
        ],
    )
    endpoint_sets: list[list] = [[] for _ in range(num_hosts)]
    if fabric == "columnar":
        # Pass 1 returned index descriptors into each reading host's
        # group cache — a few ints per (reader, owner) pair.  They ride
        # in pass 2's task payloads directly; the endpoint arrays are
        # resolved inside the consumer against the shared assignment,
        # so nothing endpoint-sized needs publishing or shipping.
        for pieces in grouped:
            for piece in pieces:
                endpoint_sets[piece[0]].append(piece[1:])
    else:
        for pieces in grouped:
            for j, srcs, dsts in pieces:
                endpoint_sets[j].append(srcs)
                endpoint_sets[j].append(dsts)
        # Phase-local but immutable from here on: publish once so pass
        # 2's pooled workers map the endpoint arrays zero-copy instead
        # of re-pickling them into every task payload.
        endpoint_sets = phase.executor.publish("endpoint-sets", endpoint_sets)

    # Pass 2: each owner unions what lands on it with what it masters.
    proxy_body = (
        _build_proxies_body
        if fabric == "columnar"
        else _build_proxies_body_scalar
    )
    return phase.executor.run(
        phase,
        [
            HostTask(
                j, proxy_body, label="build-proxies",
                payload=(assignment, masters, endpoint_sets[j], n, j),
            )
            for j in range(num_hosts)
        ],
    )


def edge_stream_schema(prop: GraphProp) -> ColumnSchema:
    """The edges channel type: (src, dst[, w]) columns in global ids."""
    columns: list[tuple[str, np.dtype]] = [
        ("src", np.dtype(np.int64)),
        ("dst", np.dtype(np.int64)),
    ]
    if prop.graph.is_weighted:
        assert prop.graph.edge_data is not None
        columns.append(("w", prop.graph.edge_data.dtype))
    return ColumnSchema(columns)


def run_construction(
    phase: PhaseStats,
    prop: GraphProp,
    policy: Policy,
    assignment: EdgeAssignment,
    masters: np.ndarray,
    proxies: list[np.ndarray],
    output: str = "csr",
    fabric: str | None = None,
) -> list[LocalPartition]:
    """Exchange edges and build every host's local partition."""
    if output not in ("csr", "csc"):
        raise ValueError("output must be 'csr' or 'csc'")
    fabric = resolve_fabric(fabric)
    num_hosts = len(assignment.owners)
    n = prop.getNumNodes()
    weighted = prop.graph.is_weighted
    schema = edge_stream_schema(prop)
    per_edge = 16 if weighted else 8

    # Senders: group each host's edges by owner and ship them.
    if fabric == "columnar":
        send_tasks = [
            HostTask(
                h, _ship_edges_body, label="ship-edges",
                payload=(assignment, schema, per_edge, num_hosts, h),
            )
            for h in range(num_hosts)
        ]
    else:
        send_tasks = [
            HostTask(
                h, _ship_edges_body_scalar, label="ship-edges",
                payload=(assignment, per_edge, weighted, num_hosts, h),
            )
            for h in range(num_hosts)
        ]
    phase.executor.run(phase, send_tasks)

    # Receivers: deserialize, map to local ids, build the CSR partition.
    build_body = (
        _build_partition_body
        if fabric == "columnar"
        else _build_partition_body_scalar
    )
    return phase.executor.run(
        phase,
        [
            HostTask(
                j, build_body, label="build-partition",
                payload=(
                    proxies, masters, assignment, schema,
                    weighted, n, output, j,
                ),
            )
            for j in range(num_hosts)
        ],
    )
