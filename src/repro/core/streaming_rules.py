"""History-sensitive streaming vertex-cut edge rules from Table I.

The paper's Table I lists the streaming vertex-cut family — PowerGraph's
greedy heuristic [4], HDRF [16], and DBH [17] — and claims every one of
them is expressible in CuSP's two-function interface.  DBH is in
:mod:`repro.core.edge_rules` (stateless); this module adds the two
*stateful* members, which exercise the ``estate`` machinery end to end:

* :class:`GreedyVertexCut` — PowerGraph's oblivious greedy placement:
  prefer partitions already holding both endpoints, then either endpoint,
  then the least loaded;
* :class:`HDRFRule` — High-Degree Replicated First: like greedy, but an
  endpoint's vote is weighted by its *relative partial degree* so that
  low-degree vertices avoid replication and hubs absorb it, plus an
  explicit load-balance term.

Both maintain, in their partitioning state, the per-partition edge loads
and the set of partitions each vertex has been replicated to — the exact
state the original systems keep — updated locally and reconciled at
CuSP's periodic synchronization boundaries.
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator
from .edge_rules import EdgeRule
from .state import PartitioningState

__all__ = ["GreedyVertexCut", "HDRFRule", "ReplicationState"]


class ReplicationState(PartitioningState):
    """estate for streaming vertex-cuts: replica sets + loads + degrees.

    ``replicas`` is a (num_partitions, num_nodes) boolean presence map,
    ``edge_load`` the per-partition edge counts, ``partial_degree`` the
    number of stream edges seen per vertex so far.  Hosts update local
    deltas; ``sync_round`` ORs/sums them into the shared snapshot.
    """

    stateful = True

    def __init__(self, num_partitions: int, num_hosts: int, num_nodes: int):
        if num_partitions < 1 or num_hosts < 1 or num_nodes < 0:
            raise ValueError("invalid state dimensions")
        self.num_partitions = num_partitions
        self.num_hosts = num_hosts
        self.num_nodes = num_nodes
        self._snap_replicas = np.zeros((num_partitions, num_nodes), dtype=bool)
        self._snap_load = np.zeros(num_partitions, dtype=np.int64)
        self._snap_degree = np.zeros(num_nodes, dtype=np.int64)
        self._delta_replicas = [
            np.zeros((num_partitions, num_nodes), dtype=bool)
            for _ in range(num_hosts)
        ]
        self._delta_load = [
            np.zeros(num_partitions, dtype=np.int64) for _ in range(num_hosts)
        ]
        self._delta_degree = [
            np.zeros(num_nodes, dtype=np.int64) for _ in range(num_hosts)
        ]

    def host_view(self, host: int) -> "_ReplicationView":
        if not (0 <= host < self.num_hosts):
            raise ValueError(f"host {host} out of range")
        return _ReplicationView(self, host)

    def sync_round(self, comm: Communicator, blocking: bool = True) -> None:
        # Presence bitmaps reduce with OR, loads/degrees with sum; the
        # wire cost is one bitmap + two count vectors per host.
        payload_bytes = (
            self._snap_replicas.size / 8
            + self._snap_load.nbytes
            + self._snap_degree.nbytes
        )
        stacked = [
            np.concatenate(
                [
                    self._delta_load[h].astype(np.float64),
                    self._delta_degree[h].astype(np.float64),
                ]
            )
            for h in range(self.num_hosts)
        ]
        comm.allreduce_sum(stacked, blocking=blocking, nbytes=payload_bytes)
        # One reduction across the host axis per field (bit-equal to the
        # per-host fold: boolean OR and int64 sums are associative).
        self._snap_replicas |= np.logical_or.reduce(self._delta_replicas)
        self._snap_load += np.add.reduce(self._delta_load)
        self._snap_degree += np.add.reduce(self._delta_degree)
        for h in range(self.num_hosts):
            self._delta_replicas[h][:] = False
            self._delta_load[h][:] = 0
            self._delta_degree[h][:] = 0
        if blocking:
            comm.barrier()

    def reset(self) -> None:
        self._snap_replicas[:] = False
        self._snap_load[:] = 0
        self._snap_degree[:] = 0
        for h in range(self.num_hosts):
            self._delta_replicas[h][:] = False
            self._delta_load[h][:] = 0
            self._delta_degree[h][:] = 0


class _ReplicationView:
    """One host's view: snapshot + its own pending updates."""

    def __init__(self, owner: ReplicationState, host: int):
        self._owner = owner
        self._host = host

    def replicas_of(self, node: int) -> np.ndarray:
        return (
            self._owner._snap_replicas[:, node]
            | self._owner._delta_replicas[self._host][:, node]
        )

    @property
    def load(self) -> np.ndarray:
        return self._owner._snap_load + self._owner._delta_load[self._host]

    def degree(self, node: int) -> int:
        return int(
            self._owner._snap_degree[node]
            + self._owner._delta_degree[self._host][node]
        )

    def place(self, partition: int, src: int, dst: int) -> None:
        d = self._owner._delta_replicas[self._host]
        d[partition, src] = True
        d[partition, dst] = True
        self._owner._delta_load[self._host][partition] += 1
        self._owner._delta_degree[self._host][src] += 1
        self._owner._delta_degree[self._host][dst] += 1

    # Vectorized accessors for chunked batch scoring -------------------
    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return (
            self._owner._snap_degree[nodes]
            + self._owner._delta_degree[self._host][nodes]
        ).astype(np.float64)

    def replicas_matrix(self, nodes: np.ndarray) -> np.ndarray:
        """(num_partitions, len(nodes)) presence matrix."""
        return (
            self._owner._snap_replicas[:, nodes]
            | self._owner._delta_replicas[self._host][:, nodes]
        )

    def place_batch(self, partitions: np.ndarray, src: np.ndarray,
                    dst: np.ndarray) -> None:
        d = self._owner._delta_replicas[self._host]
        d[partitions, src] = True
        d[partitions, dst] = True
        self._owner._delta_load[self._host] += np.bincount(
            partitions, minlength=self._owner.num_partitions
        )
        deg = self._owner._delta_degree[self._host]
        np.add.at(deg, src, 1)
        np.add.at(deg, dst, 1)


class GreedyVertexCut(EdgeRule):
    """PowerGraph's oblivious greedy vertex-cut heuristic [4].

    Case analysis per edge (classic formulation): if some partition holds
    both endpoints, use the least-loaded such partition; if the endpoints'
    replica sets are disjoint (and non-empty), place with the endpoint
    that has more unseen edges (higher partial degree -> keep spreading
    the hub); if only one endpoint is placed, follow it; else least
    loaded.
    """

    name = "Greedy"
    stateful = True
    invariant = "vertex-cut"

    def __init__(self, balance_cap: float = 1.25):
        # On a connected graph a purely affinity-driven sequential stream
        # cascades onto one partition (every edge shares an endpoint with
        # an already-placed edge).  Real deployments keep balance through
        # parallel loaders with stale state; the sequential formulation
        # needs an explicit overload guard: when the affinity choice is
        # more than ``balance_cap`` times the average load, fall back to
        # the least-loaded partition.
        if balance_cap < 1.0:
            raise ValueError("balance_cap must be >= 1")
        self.balance_cap = balance_cap

    def make_state(self, num_partitions, num_hosts, num_nodes=None):
        if num_nodes is None:
            raise ValueError("GreedyVertexCut needs num_nodes for its state")
        return ReplicationState(num_partitions, num_hosts, num_nodes)

    def owner(self, prop, src_id, dst_id, src_master, dst_master, estate=None):
        if estate is None:
            raise ValueError("GreedyVertexCut requires estate")
        a = estate.replicas_of(src_id)
        b = estate.replicas_of(dst_id)
        load = estate.load
        both = a & b
        if both.any():
            choice = _least_loaded(both, load)
        elif a.any() and b.any():
            # Disjoint: follow the endpoint with the larger remaining
            # degree (spread the hub's replicas).
            if estate.degree(src_id) >= estate.degree(dst_id):
                choice = _least_loaded(a, load)
            else:
                choice = _least_loaded(b, load)
        elif a.any():
            choice = _least_loaded(a, load)
        elif b.any():
            choice = _least_loaded(b, load)
        else:
            choice = int(np.argmin(load))
        cap = self.balance_cap * (load.sum() / load.size + 1.0)
        if load[choice] + 1 > cap and load[choice] - load.min() >= 4:
            # Overloaded relative to the average *and* by a real margin
            # (the margin keeps start-up noise from overriding affinity).
            choice = int(np.argmin(load))
        estate.place(choice, src_id, dst_id)
        return choice


class HDRFRule(EdgeRule):
    """High-Degree Replicated First [16].

    Per-edge score for partition p:
        C_rep(p) = g(src) * [src in p] + g(dst) * [dst in p]
        C_bal(p) = lam * (max_load - load[p]) / (1 + max_load - min_load)
    with g(v) = 1 + (1 - theta(v)) and theta(v) the vertex's share of the
    edge's combined partial degree — so the *lower*-degree endpoint's
    presence counts more, pushing replication onto hubs.
    """

    name = "HDRF"
    stateful = True
    invariant = "vertex-cut"

    def __init__(self, balance_lambda: float = 4.0, chunk_size: int = 256):
        # The replication score is bounded by g(src) + g(dst) = 3, so a
        # lambda above 3 guarantees the balance term can override affinity
        # once partitions drift apart (the HDRF paper notes quality is
        # insensitive to lambda while balance improves with it).
        if balance_lambda < 0:
            raise ValueError("balance_lambda must be >= 0")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.balance_lambda = balance_lambda
        self.chunk_size = chunk_size

    def make_state(self, num_partitions, num_hosts, num_nodes=None):
        if num_nodes is None:
            raise ValueError("HDRFRule needs num_nodes for its state")
        return ReplicationState(num_partitions, num_hosts, num_nodes)

    def owner(self, prop, src_id, dst_id, src_master, dst_master, estate=None):
        if estate is None:
            raise ValueError("HDRFRule requires estate")
        d_src = estate.degree(src_id) + 1
        d_dst = estate.degree(dst_id) + 1
        theta_src = d_src / (d_src + d_dst)
        g_src = 1.0 + (1.0 - theta_src)
        g_dst = 1.0 + theta_src
        load = estate.load.astype(np.float64)
        max_load = load.max()
        min_load = load.min()
        c_rep = (
            g_src * estate.replicas_of(src_id)
            + g_dst * estate.replicas_of(dst_id)
        )
        c_bal = (
            self.balance_lambda
            * (max_load - load)
            / (1.0 + max_load - min_load)
        )
        choice = int(np.argmax(c_rep + c_bal))
        estate.place(choice, src_id, dst_id)
        return choice

    def owner_batch(self, prop, src_ids, dst_ids, src_masters, dst_masters,
                    estate=None):
        """Chunked vectorized scoring.

        Edges are processed in chunks of ``chunk_size``; within a chunk
        every edge scores against the same (frozen) replica/load/degree
        snapshot, and the state is updated once per chunk.  That is the
        same staleness CuSP's periodic synchronization already accepts
        *between hosts* (§IV-D4), applied within one host's stream for a
        ~100x speedup.  ``chunk_size=1`` reproduces the exact per-edge
        semantics.
        """
        if estate is None:
            raise ValueError("HDRFRule requires estate")
        n_edges = len(src_ids)
        out = np.empty(n_edges, dtype=np.int32)
        src_ids = np.asarray(src_ids)
        dst_ids = np.asarray(dst_ids)
        if self.chunk_size <= 1:
            return super().owner_batch(
                prop, src_ids, dst_ids, src_masters, dst_masters, estate
            )
        for lo in range(0, n_edges, self.chunk_size):
            hi = min(lo + self.chunk_size, n_edges)
            s = src_ids[lo:hi]
            d = dst_ids[lo:hi]
            deg_s = estate.degrees_of(s) + 1.0
            deg_d = estate.degrees_of(d) + 1.0
            theta = deg_s / (deg_s + deg_d)
            g_src = 2.0 - theta  # 1 + (1 - theta)
            g_dst = 1.0 + theta
            load = estate.load.astype(np.float64)
            c_bal = (
                self.balance_lambda
                * (load.max() - load)
                / (1.0 + load.max() - load.min())
            )
            scores = (
                g_src[None, :] * estate.replicas_matrix(s)
                + g_dst[None, :] * estate.replicas_matrix(d)
                + c_bal[:, None]
            )
            choice = np.argmax(scores, axis=0).astype(np.int32)
            out[lo:hi] = choice
            estate.place_batch(choice, s, d)
        return out


def _least_loaded(mask: np.ndarray, load: np.ndarray) -> int:
    candidates = np.flatnonzero(mask)
    return int(candidates[np.argmin(load[candidates])])
