"""The five CuSP phase-communication contracts (paper §III, Fig. 2).

Each :class:`~repro.analysis.contracts.model.PhaseContract` declares
everything a phase is allowed to say on the wire: its point-to-point
tags (with topology and payload kind), its collectives with exact
expected round counts as functions of the run configuration, and which
source modules implement the phase.  The static extractor
(``repro contracts`` / :func:`repro.analysis.contracts.check_contracts`)
diffs these declarations against the code; the runtime sanitizer
(:class:`repro.analysis.contracts.CommSan`) audits real runs against
them.

Phase names are string literals rather than imports from
:mod:`.framework` so this module stays import-light (the lint rules
load it from inside check functions); ``tests/test_contracts.py``
asserts they match ``PHASE_NAMES`` exactly.
"""

from __future__ import annotations

from ..analysis.contracts.model import (
    ContractContext,
    ContractSet,
    OpSpec,
    PhaseContract,
)

__all__ = [
    "READING_CONTRACT",
    "MASTERS_CONTRACT",
    "EDGES_CONTRACT",
    "ALLOCATION_CONTRACT",
    "CONSTRUCTION_CONTRACT",
    "PHASE_CONTRACTS",
    "contract_context_for",
]


READING_CONTRACT = PhaseContract(
    phase="Graph Reading",
    modules=("core/framework.py", "core/reading.py"),
    entry_points=("phase_reading",),
    ops=(),
    description=(
        "Each host reads its on-disk edge slice independently; the phase "
        "performs no communication at all (paper §IV-A: reading is "
        "embarrassingly parallel by construction)."
    ),
)


MASTERS_CONTRACT = PhaseContract(
    phase="Master Assignment",
    modules=("core/masters_phase.py", "core/state.py", "core/master_rules.py"),
    entry_points=("run_master_assignment",),
    ops=(
        # Request-driven exchange for impure rules under communication
        # elision (§IV-D5): each host asks the assigning host only for
        # the node ids it actually needs.
        OpSpec(
            "p2p",
            tag="master-requests",
            payload="requested node ids (8 B/entry)",
            batched=True,
            when=lambda ctx: not ctx.master_pure
            and ctx.elide_master_communication,
        ),
        # Assignments shipped back to requesters (elided runs) or to
        # every host (ablation): (node id, partition) pairs.
        OpSpec(
            "p2p",
            tag="master-assignments",
            payload="(node id, partition) pairs (12 B/entry)",
            batched=True,
            when=lambda ctx: not ctx.master_pure,
        ),
        # Ablation of §IV-D5 for *pure* rules: broadcast every local
        # assignment instead of replicating the pure computation.
        OpSpec(
            "p2p",
            tag="master-broadcast",
            topology="broadcast",
            payload="(node id, partition) pairs (12 B/entry)",
            when=lambda ctx: ctx.master_pure
            and not ctx.elide_master_communication,
        ),
        # Stateful rules (Fennel/FennelEB/LDG) reconcile partition loads
        # once per assignment round: exactly sync_rounds async allreduces.
        OpSpec(
            "allreduce-async",
            payload="2k int64 partition load deltas",
            rounds=lambda ctx: ctx.sync_rounds if ctx.master_stateful else 0,
            when=lambda ctx: ctx.master_stateful,
        ),
    ),
    description=(
        "Pure rules assign masters with zero communication (replicated "
        "computation); impure rules exchange requests/assignments and, "
        "when stateful, reconcile loads every round.  Request/assignment "
        "queues are applied at the merge barrier, not drained."
    ),
)


EDGES_CONTRACT = PhaseContract(
    phase="Edge Assignment",
    modules=(
        "core/assignment_phase.py",
        "core/state.py",
        "core/streaming_rules.py",
        "core/edge_rules.py",
    ),
    entry_points=("run_edge_assignment",),
    ops=(
        # Per-host prefix metadata: edge counts per assigned node plus
        # mirror ids (or an 8 B empty-slice notification).
        OpSpec(
            "p2p",
            tag="edge-counts",
            payload="per-node edge counts + mirror ids (8 B empty marker)",
            drained=True,
            batched=True,
        ),
        # Stateful edge rules (GreedyVertexCut/HDRF) reconcile replica
        # sets and loads once per host chunk on the chain() path.
        OpSpec(
            "allreduce-async",
            payload="replica bitmap + load/degree vectors",
            rounds=lambda ctx: ctx.num_hosts if ctx.edge_stateful else 0,
            when=lambda ctx: ctx.edge_stateful,
        ),
    ),
    description=(
        "Hosts assign their read edges and exchange per-node count "
        "prefixes all-to-all; the tally drains every message before the "
        "phase barrier."
    ),
)


ALLOCATION_CONTRACT = PhaseContract(
    phase="Graph Allocation/Other",
    modules=("core/construction_phase.py",),
    entry_points=("run_allocation",),
    ops=(),
    description=(
        "Local CSR sizing and proxy bookkeeping only; the counts needed "
        "were already exchanged during edge assignment."
    ),
)


CONSTRUCTION_CONTRACT = PhaseContract(
    phase="Graph Construction",
    modules=("core/construction_phase.py",),
    entry_points=("run_construction",),
    ops=(
        # The only phase that moves edge payloads, including a host's
        # own slice (self-sends are free but keep the code uniform).
        OpSpec(
            "p2p",
            tag="edges",
            payload="serialized (src, dst[, weight]) bundles per source",
            drained=True,
            batched=True,
        ),
    ),
    description=(
        "Edges shuffle to their owning hosts and every receiver drains "
        "its queue while building the local CSR."
    ),
)


PHASE_CONTRACTS = ContractSet(
    [
        READING_CONTRACT,
        MASTERS_CONTRACT,
        EDGES_CONTRACT,
        ALLOCATION_CONTRACT,
        CONSTRUCTION_CONTRACT,
    ]
)


def contract_context_for(
    policy: object,
    num_hosts: int,
    sync_rounds: int = 1,
    elide_master_communication: bool = True,
) -> ContractContext:
    """The :class:`ContractContext` describing one ``CuSP.partition`` run.

    ``policy`` is a resolved :class:`~repro.core.policies.Policy` (any
    object with ``master_rule``/``edge_rule`` attributes works, which
    keeps test harnesses free to stub it).
    """
    master_rule = policy.master_rule  # type: ignore[attr-defined]
    edge_rule = policy.edge_rule  # type: ignore[attr-defined]
    return ContractContext(
        num_hosts=int(num_hosts),
        sync_rounds=int(sync_rounds),
        master_pure=bool(master_rule.is_pure),
        master_stateful=bool(master_rule.stateful),
        edge_stateful=bool(edge_rule.stateful),
        elide_master_communication=bool(elide_master_communication),
    )
