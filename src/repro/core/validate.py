"""End-to-end partition invariant checking.

:meth:`~repro.core.partition.DistributedGraph.validate` asserts and is
aimed at tests; this module is the *reporting* checker the CLI and the
crash-recovery machinery use: it evaluates every invariant, collects
human-readable violations instead of stopping at the first, and returns a
:class:`ValidationReport` suitable for exit-code plumbing.

Checked invariants (paper §II's definition of a partition):

* every edge is assigned to exactly one partition (count, and — when the
  original graph is supplied — exact edge-multiset equality);
* every vertex has exactly one master proxy, on the partition the global
  master map names;
* every mirror's ``master_host`` agrees with the global master map, and
  no mirror is mastered locally;
* every local graph (and CSC view) is a well-formed CSR structure whose
  endpoints stay inside the partition's proxy table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from .partition import DistributedGraph

__all__ = ["ValidationReport", "check_csr", "check_partition"]


@dataclass
class ValidationReport:
    """Outcome of a partition validation run."""

    errors: list[str] = field(default_factory=list)
    #: Number of invariants evaluated (for "N invariants checked" output).
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise AssertionError("; ".join(self.errors))

    def summary(self) -> str:
        if self.ok:
            return f"OK ({self.checks_run} invariants checked)"
        return (
            f"INVALID ({len(self.errors)} violation(s) in "
            f"{self.checks_run} invariants): " + "; ".join(self.errors)
        )


def check_csr(graph: CSRGraph, label: str = "graph") -> list[str]:
    """Violations of CSR well-formedness for ``graph`` (empty = valid)."""
    errors: list[str] = []
    indptr = graph.indptr
    indices = graph.indices
    if indptr.size != graph.num_nodes + 1:
        errors.append(
            f"{label}: indptr has {indptr.size} entries for "
            f"{graph.num_nodes} nodes (want num_nodes + 1)"
        )
        return errors  # the remaining checks would mis-index
    if indptr.size and indptr[0] != 0:
        errors.append(f"{label}: indptr[0] == {indptr[0]}, want 0")
    if np.any(np.diff(indptr) < 0):
        errors.append(f"{label}: indptr is not non-decreasing")
    if indptr.size and indptr[-1] != indices.size:
        errors.append(
            f"{label}: indptr[-1] == {indptr[-1]} but {indices.size} edges stored"
        )
    if indices.size:
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= graph.num_nodes:
            errors.append(
                f"{label}: edge endpoints span [{lo}, {hi}], outside "
                f"[0, {graph.num_nodes})"
            )
    if graph.is_weighted and graph.edge_data.size != indices.size:
        errors.append(
            f"{label}: {graph.edge_data.size} weights for {indices.size} edges"
        )
    return errors


def check_partition(
    dg: DistributedGraph, original: CSRGraph | None = None
) -> ValidationReport:
    """Evaluate every partition invariant of ``dg``; never raises."""
    report = ValidationReport()
    errors = report.errors
    n = dg.num_global_nodes
    k = dg.num_partitions

    # Global master map shape and range.
    report.checks_run += 2
    if dg.masters.shape != (n,):
        errors.append(
            f"master map has shape {dg.masters.shape}, want ({n},)"
        )
        return report  # everything below indexes through it
    if n and (dg.masters.min() < 0 or dg.masters.max() >= k):
        errors.append(
            f"master map names partitions outside [0, {k})"
        )

    master_seen = np.zeros(n, dtype=np.int64)
    for p in dg.partitions:
        who = f"partition {p.host}"
        gids = p.global_ids

        # Proxy table sanity.
        report.checks_run += 3
        if gids.size and (gids.min() < 0 or gids.max() >= n):
            errors.append(f"{who}: proxy global ids outside [0, {n})")
            continue
        if gids.size != np.unique(gids).size:
            errors.append(f"{who}: duplicate proxies")
        if not (0 <= p.num_masters <= gids.size):
            errors.append(
                f"{who}: num_masters {p.num_masters} outside [0, {gids.size}]"
            )
            continue

        # Exactly one master per vertex, where the master map says.
        report.checks_run += 2
        m = p.master_global_ids
        master_seen[m] += 1
        if not np.all(dg.masters[m] == p.host):
            errors.append(f"{who}: holds masters the master map places elsewhere")
        mirrors = p.mirror_global_ids
        if mirrors.size and np.any(dg.masters[mirrors] == p.host):
            errors.append(f"{who}: mirror proxies mastered locally")

        # Mirror/master host consistency.
        report.checks_run += 1
        if not np.array_equal(p.master_host, dg.masters[gids]):
            errors.append(f"{who}: master_host disagrees with the master map")

        # Local graphs are well-formed CSR with in-range endpoints.
        report.checks_run += 2
        errors.extend(check_csr(p.local_graph, f"{who} local graph"))
        if p.local_csc is not None:
            errors.extend(check_csr(p.local_csc, f"{who} local csc"))
            if p.local_csc.num_edges != p.local_graph.num_edges:
                errors.append(f"{who}: csc edge count differs from csr")
        if p.local_graph.num_nodes != gids.size:
            errors.append(
                f"{who}: local graph has {p.local_graph.num_nodes} nodes "
                f"for {gids.size} proxies"
            )

        # Lookup consistency (when built).
        if p._lookup is not None:
            report.checks_run += 1
            if (
                p._lookup.size != n
                or not np.array_equal(
                    p._lookup[gids], np.arange(gids.size, dtype=np.int64)
                )
                or int((p._lookup >= 0).sum()) != gids.size
            ):
                errors.append(f"{who}: global->local lookup is inconsistent")

    report.checks_run += 1
    if n and not np.all(master_seen == 1):
        missing = int((master_seen == 0).sum())
        extra = int((master_seen > 1).sum())
        errors.append(
            f"master coverage broken: {missing} vertices without a master, "
            f"{extra} with more than one"
        )

    # Every edge assigned exactly once (count; multiset with original).
    report.checks_run += 1
    total_edges = int(sum(p.num_edges for p in dg.partitions))
    if total_edges != dg.num_global_edges:
        errors.append(
            f"edge count mismatch: partitions hold {total_edges}, "
            f"graph has {dg.num_global_edges}"
        )
    if original is not None:
        report.checks_run += 2
        if original.num_nodes != n or original.num_edges != dg.num_global_edges:
            errors.append(
                f"reference graph is |V|={original.num_nodes} "
                f"|E|={original.num_edges}, partition metadata says "
                f"|V|={n} |E|={dg.num_global_edges}"
            )
        elif not errors:
            mine = dg._global_edge_matrix()
            theirs = np.stack(original.edges(), axis=1)
            mine = mine[np.lexsort((mine[:, 1], mine[:, 0]))]
            theirs = theirs[np.lexsort((theirs[:, 1], theirs[:, 0]))]
            if not np.array_equal(mine, theirs):
                errors.append("edge multiset differs from the original graph")
    return report
