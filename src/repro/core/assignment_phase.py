"""Phase 3: edge assignment (paper §IV-B3, Algorithm 3).

Each host scans the edges it read, calls ``getEdgeOwner`` on every edge
(vectorized through the rule's batch interface) and compiles, per peer:

* how many outgoing edges of each of its read nodes the peer will receive
  (a positional vector — no node ids on the wire, §IV-D2), and
* which destination proxies the peer must create as *mirrors*, with their
  master assignments (the "(Master/)Mirror Info" flow of Figure 2).

Hosts with nothing to send to a peer send a small "empty" message instead
(§IV-D2).  The computed owner array is retained for the construction
phase: the paper instead *re-evaluates* the rules there, which is
equivalent because rules are required to be deterministic (§III-A) — we
memoize rather than recompute, and charge the re-evaluation work to the
construction phase as the paper's system would incur it.

Two message fabrics are supported (``fabric=``): the default
``"columnar"`` path ships typed :class:`~repro.runtime.colfab.MessageBatch`
blocks and vectorizes the mirror-set computation through the per-host
:class:`HostGroups` cache; the ``"scalar"`` path is the original
tuple-per-message formulation, kept bit-identical as a compatibility
baseline.  Both charge the same bytes/messages/compute.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.colfab import ColumnSchema, MessageBatch, resolve_fabric
from ..runtime.executor import HostTask, HostView
from ..runtime.stats import PhaseStats
from .policies import Policy
from .prop import GraphProp

__all__ = [
    "run_edge_assignment",
    "EdgeAssignment",
    "HostGroups",
    "assignment_from_owners",
    "host_edge_slice",
]

_EMPTY_MESSAGE_BYTES = 8
_MIRROR_ENTRY_BYTES = 12  # node id + master partition


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of ``values``.

    Equivalent to ``np.unique`` but ~2x faster at phase sizes: one
    stable sort plus a boundary mask instead of NumPy's hash path.
    """
    out = np.sort(values, kind="stable")
    if out.size == 0:
        return out
    keep = np.empty(out.size, dtype=bool)
    keep[0] = True
    np.not_equal(out[1:], out[:-1], out=keep[1:])
    return out[keep]


def _mask_unique(num_nodes: int, *id_arrays: np.ndarray) -> np.ndarray:
    """Sorted distinct node ids across ``id_arrays``, by presence mask.

    For ids bounded by ``num_nodes`` this replaces sort-based dedup with
    an O(num_nodes + total ids) scatter + ``flatnonzero`` — the output
    is identical to ``np.unique(np.concatenate(id_arrays))``.
    """
    mark = np.zeros(num_nodes, dtype=bool)
    for ids in id_arrays:
        mark[ids] = True
    return np.flatnonzero(mark)


class HostGroups:
    """One host's edges grouped by owner, with per-group unique sources.

    Built from a single stable ``argsort`` of the owner array.  Because
    the host's ``src`` column is non-decreasing (it comes from the CSR
    ``indptr`` walk) and the sort is stable, ``src`` stays non-decreasing
    *within* each owner group, so the per-group sorted-unique source
    lists fall out of one O(n) boundary scan instead of a ``np.unique``
    per peer.  The same grouping serves edge assignment (mirror sets),
    allocation (endpoint sets) and construction (edge shipping), so it
    is computed once per host and cached on :class:`EdgeAssignment`.
    """

    __slots__ = (
        "order", "cuts", "src_sorted", "dst_sorted", "usrc", "usrc_cuts"
    )

    def __init__(
        self,
        owner: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        num_hosts: int,
        order: np.ndarray | None = None,
    ):
        if order is None:
            order = np.argsort(owner, kind="stable")
        self.order = order
        self.cuts = np.searchsorted(
            owner[order], np.arange(num_hosts + 1)
        )
        self._fill(src, dst)

    def _fill(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Gather the sorted columns from the host's edge arrays."""
        order = self.order
        cuts = self.cuts
        s = src[order]
        n = s.size
        if n:
            keep = np.empty(n, dtype=bool)
            keep[0] = True
            np.not_equal(s[1:], s[:-1], out=keep[1:])
            starts = cuts[:-1]
            keep[starts[starts < n]] = True
            usrc = s[keep]
            usrc_cuts = np.concatenate(([0], np.cumsum(keep)))[cuts]
        else:
            usrc = s
            usrc_cuts = np.zeros(cuts.size, dtype=np.int64)
        self.src_sorted = s
        self.dst_sorted = dst[order]
        self.usrc = usrc
        self.usrc_cuts = usrc_cuts

    def __getstate__(self):
        # Only the sort permutation and group boundaries cross process
        # boundaries: the sorted columns are O(n) gathers of the host's
        # edge arrays (themselves derived from the shared-memory
        # resident graph) and are rehydrated on first use at the other
        # side, so a pickled grouping is ~3x smaller than a live one.
        return self.order, self.cuts

    def __setstate__(self, state) -> None:
        self.order, self.cuts = state
        self.src_sorted = None
        self.dst_sorted = None
        self.usrc = None
        self.usrc_cuts = None

    def hydrate(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Rebuild the sorted columns after a skeleton unpickle."""
        if self.src_sorted is None:
            self._fill(src, dst)

    def group_rows(self, j: int) -> np.ndarray:
        """Row indices (into the host's edge arrays) owned by host ``j``."""
        return self.order[self.cuts[j] : self.cuts[j + 1]]

    def group_src(self, j: int) -> np.ndarray:
        """``src`` restricted to host ``j``'s group (non-decreasing)."""
        return self.src_sorted[self.cuts[j] : self.cuts[j + 1]]

    def group_dst(self, j: int) -> np.ndarray:
        """``dst`` restricted to host ``j``'s group (a zero-copy view)."""
        return self.dst_sorted[self.cuts[j] : self.cuts[j + 1]]

    def unique_src(self, j: int) -> np.ndarray:
        """Sorted distinct sources among host ``j``'s edges."""
        return self.usrc[self.usrc_cuts[j] : self.usrc_cuts[j + 1]]


#: Worker-local carry-over of the full group caches built by
#: ``_assign_edges_body``: a resident pool worker keeps the groupings it
#: computed during edge assignment so later phases adopt them instead of
#: regathering from the resident skeleton.  Guarded by a bitwise owner
#: comparison (the grouping is a pure function of the owner array and
#: the resident graph), populated only inside pool workers (the flag is
#: set in ``_pool_worker_main``), and dies with the worker.
_group_stash: dict[int, tuple[np.ndarray, HostGroups]] = {}


def _stash_groups(h: int, owner: np.ndarray, groups: HostGroups) -> None:
    from ..runtime import executor as _executor

    if _executor._IN_POOL_WORKER:
        # repro-lint: disable-next-line=deep-unshippable-task-capture -- worker-local recompute cache: lost with the worker, revalidated bitwise against the owner array before reuse
        _group_stash[h] = (owner, groups)


class EdgeAssignment:
    """Result of the edge-assignment phase.

    The per-host ``(src, dst, weight)`` edge arrays and the owner
    grouping's sorted columns are pure functions of the graph, the read
    ranges and the owner decisions, so neither ever crosses a process
    boundary: consumers rebuild them lazily from the (shared-memory
    resident) graph on first use.  Only the owner arrays, the sort
    permutations and the count matrices are real state.
    """

    def __init__(
        self,
        num_hosts: int,
        prop: GraphProp | None = None,
        ranges: list[tuple[int, int]] | None = None,
    ) -> None:
        #: Per reading host: owner partition of each of its edges
        #: (``None`` until that host's task has run).
        self.owners: list[np.ndarray | None] = [None] * num_hosts
        #: Per reading host: its (src, dst, weight) edge arrays, a lazy
        #: cache over :func:`host_edge_slice` (see :meth:`host_edges`).
        self.edges: list[
            tuple[np.ndarray, np.ndarray, np.ndarray | None] | None
        ] = [None] * num_hosts
        #: edges_to[h][j] = number of edges host h will send to host j.
        self.edges_to = np.zeros((num_hosts, num_hosts), dtype=np.int64)
        #: toReceive[j] = total edges host j expects (Algorithm 3 line 13).
        self.to_receive = np.zeros(num_hosts, dtype=np.int64)
        #: Graph + read ranges backing the lazy edge rebuild.
        self._prop = prop
        self.ranges = list(ranges) if ranges is not None else None
        # Lazy per-host owner-group cache shared by phases 3-5.  The
        # assignment phase's barrier callback installs each host's
        # grouping; a cache miss inside a task recomputes the (pure,
        # deterministic) grouping without relying on the cached write
        # surviving the task — it may run in a forked worker.
        self._groups: list[HostGroups | None] = [None] * num_hosts

    def host_edges(
        self, h: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Host ``h``'s (src, dst, weights) arrays (rebuilt on miss)."""
        edges = self.edges[h]
        if edges is None:
            if self._prop is None or self.ranges is None:
                raise ValueError(f"host {h}: edge assignment not yet run")
            start, stop = self.ranges[h]
            edges = host_edge_slice(self._prop.graph, start, stop)
            # repro-lint: disable-next-line=deep-unshippable-task-capture -- recompute-on-miss cache (see class docstring): a worker-local write that is lost with the fork is recomputed identically on the next miss
            self.edges[h] = edges
        return edges

    def host_groups(self, h: int) -> HostGroups:
        """The owner grouping of host ``h``'s edges (computed once)."""
        groups = self._groups[h]
        if groups is None:
            owner = self.owners[h]
            if owner is None:
                raise ValueError(f"host {h}: edge assignment not yet run")
            src, dst, _weights = self.host_edges(h)
            groups = HostGroups(
                owner, src, dst, self.edges_to.shape[0]
            )
            # repro-lint: disable-next-line=deep-unshippable-task-capture -- recompute-on-miss cache (see class docstring): a worker-local write that is lost with the fork is recomputed identically on the next miss
            self._groups[h] = groups
        elif groups.src_sorted is None:
            # Skeleton from a cross-process unpickle.  A resident pool
            # worker that ran this host's assignment task still holds
            # the full grouping it built there; adopt it when the owner
            # array matches bitwise (the grouping is a pure function of
            # the owner array and the resident graph).  Otherwise gather
            # the sorted columns from the locally rebuilt edge arrays
            # (pure and deterministic, so hydrating in-place is
            # recompute-on-miss with the argsort skipped).
            owner = self.owners[h]
            stashed = _group_stash.get(h)
            if (
                stashed is not None
                and owner is not None
                and np.array_equal(stashed[0], owner)
            ):
                groups = stashed[1]
                # repro-lint: disable-next-line=deep-unshippable-task-capture -- recompute-on-miss cache (see class docstring): a lost worker-local write is redone identically
                self._groups[h] = groups
            else:
                src, dst, _weights = self.host_edges(h)
                # repro-lint: disable-next-line=deep-unshippable-task-capture -- recompute-on-miss cache (see class docstring): hydration is a pure gather; a lost worker-local write is redone identically
                groups.hydrate(src, dst)
        return groups

    def __getstate__(self):
        state = dict(self.__dict__)
        # The edge arrays are derivable from (graph, ranges); shipping
        # them would roughly double the graph bytes on the wire.
        state["edges"] = [None] * len(self.edges)
        return state

    def adopt_groups(self, other: "EdgeAssignment") -> None:
        """Carry ``other``'s group cache onto this (rebuilt) assignment.

        Used when the framework reconstructs the assignment from its
        checkpoint: the grouping is a pure function of (owners, edges),
        both of which round-trip bit-identically, so the cache computed
        by the live phase remains valid for the rebuilt object.
        """
        self._groups = list(other._groups)


def host_edge_slice(
    graph: CSRGraph, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """The (src, dst, weights) arrays a host reads for nodes [start, stop)."""
    lo, hi = int(graph.indptr[start]), int(graph.indptr[stop])
    dst = graph.indices[lo:hi]
    src = np.repeat(
        np.arange(start, stop, dtype=np.int64),
        np.diff(graph.indptr[start : stop + 1]),
    )
    weights = graph.edge_data[lo:hi] if graph.is_weighted else None
    return src, dst, weights


def assignment_from_owners(
    prop: GraphProp,
    ranges: list[tuple[int, int]],
    owners: list[np.ndarray],
) -> EdgeAssignment:
    """Rebuild the edge-assignment result from checkpointed owner arrays.

    The per-host edge arrays are a pure function of the graph and the
    read ranges, so only the owner decisions need to be persisted; this
    reconstructs the same :class:`EdgeAssignment` the live phase
    produced (used when replaying phases 4/5 from a checkpoint).  The
    edge arrays themselves stay lazy — consumers rebuild them from the
    graph on first use.
    """
    num_hosts = len(ranges)
    result = EdgeAssignment(num_hosts, prop=prop, ranges=ranges)
    graph = prop.graph
    for h, (start, stop) in enumerate(ranges):
        expected = int(graph.indptr[stop]) - int(graph.indptr[start])
        owner = np.asarray(owners[h])
        if owner.size != expected:
            raise ValueError(
                f"host {h}: checkpointed {owner.size} owners for "
                f"{expected} edges"
            )
        result.owners[h] = owner
        result.edges_to[h, :] = np.bincount(
            owner, minlength=num_hosts
        ).astype(np.int64)
    result.to_receive[:] = result.edges_to.sum(axis=0)
    return result


def mirror_info_schema(masters_dtype: np.dtype) -> ColumnSchema:
    """The edge-counts channel type: mirror (id, master) rows + a count."""
    return ColumnSchema(
        (("ids", np.dtype(np.int64)), ("masters", masters_dtype)),
        scalars=("count",),
    )


# -- Task bodies ---------------------------------------------------------
#
# Module-level so the pooled process executor can ship them by reference;
# payload tuples carry everything a body reads, with the big immutable
# inputs (``prop``, ``masters``) resolving against shared-memory
# residents.  Parent-side installs stay closures in
# ``run_edge_assignment`` — apply callbacks never ship.


def _assign_edges_common(
    view: HostView,
    rule,
    prop: GraphProp,
    masters: np.ndarray,
    estate,
    comm,
    num_hosts: int,
    h: int,
    start: int,
    stop: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Owner evaluation + bookkeeping shared by both fabrics.

    Pure with respect to shared state: the owner/count arrays are
    returned and the task's ``apply`` callback installs them into the
    :class:`EdgeAssignment` at the barrier (task-payload seam).
    """
    src, dst, _weights = host_edge_slice(prop.graph, start, stop)
    estate_view = estate.host_view(h) if estate is not None else None
    owner = rule.owner_batch(
        prop, src, dst, masters[src], masters[dst], estate_view
    )
    counts = np.bincount(owner, minlength=num_hosts).astype(np.int64)
    # Two abstract units per edge: owner evaluation + count update.
    view.add_compute(2.0 * src.size)
    if estate is not None:
        # Periodic estate reconciliation (§IV-D4), one round per
        # host's streamed chunk, non-blocking like master rounds.
        # Safe despite living in a task body: stateful rules are
        # dispatched through chain(), which runs hosts sequentially
        # on the main thread (no task context), so this collective
        # never executes inside a mapped task.
        # repro-lint: disable-next-line=comm-in-task,deep-comm-in-task -- chain()-only path, sequential by construction
        estate.sync_round(comm, blocking=False)
    return src, dst, owner, counts


def _assign_edges_body(view: HostView, payload: tuple):
    """Columnar edge-assignment pass for one host."""
    (rule, prop, masters, schema, estate, comm, num_hosts,
     h, start, stop) = payload
    src, dst, owner, counts = _assign_edges_common(
        view, rule, prop, masters, estate, comm, num_hosts, h, start, stop
    )
    groups = HostGroups(owner, src, dst, num_hosts)
    nodes_read = stop - start
    mark = np.empty(prop.getNumNodes(), dtype=bool)
    for j in range(num_hosts):
        if j == h:
            continue
        if counts[j] == 0:
            # Paper §IV-D2: "nothing to send" notification.
            view.send_batch(j, MessageBatch.empty(schema),
                            tag="edge-counts",
                            nbytes=_EMPTY_MESSAGE_BYTES)
            continue
        # Mirror info: destination proxies on j whose master is
        # elsewhere, plus source proxies on j whose master is
        # elsewhere.  A presence mask + flatnonzero yields the scalar
        # path's sorted-unique endpoints (minus the j-mastered ones)
        # without any per-peer sort.
        mark[:] = False
        mark[groups.unique_src(j)] = True
        mark[groups.group_dst(j)] = True
        mirror_ids = np.flatnonzero(mark & (masters != j))
        payload_bytes = (
            nodes_read * 8 + mirror_ids.size * _MIRROR_ENTRY_BYTES
        )
        view.send_batch(
            j,
            MessageBatch(
                schema,
                (mirror_ids, masters[mirror_ids]),
                scalars=(int(counts[j]),),
            ),
            tag="edge-counts",
            nbytes=payload_bytes,
        )
    _stash_groups(h, owner, groups)
    return owner, counts, groups


def _assign_edges_body_scalar(view: HostView, payload: tuple):
    """Scalar-fabric edge-assignment pass (compatibility path)."""
    (rule, prop, masters, schema, estate, comm, num_hosts,
     h, start, stop) = payload
    src, dst, owner, counts = _assign_edges_common(
        view, rule, prop, masters, estate, comm, num_hosts, h, start, stop
    )
    nodes_read = stop - start
    for j in range(num_hosts):
        if j == h:
            continue
        if counts[j] == 0:
            # Paper §IV-D2: "nothing to send" notification.
            # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
            view.send(j, None, tag="edge-counts",
                      nbytes=_EMPTY_MESSAGE_BYTES)
            continue
        mask = owner == j
        # Mirror info: destination proxies on j whose master is
        # elsewhere, plus source proxies on j whose master is
        # elsewhere.
        endpoints = np.unique(np.concatenate([src[mask], dst[mask]]))
        mirror_ids = endpoints[masters[endpoints] != j]
        payload_bytes = (
            nodes_read * 8 + mirror_ids.size * _MIRROR_ENTRY_BYTES
        )
        # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
        view.send(
            j,
            (counts[j], mirror_ids, masters[mirror_ids]),
            tag="edge-counts",
            nbytes=payload_bytes,
        )
    # The scalar path never groups by owner here; construction's scalar
    # tasks argsort locally, so the cache stays lazy.
    return owner, counts, None


def _tally_counts_body(view: HostView, schema: ColumnSchema) -> int:
    """Columnar tally of one host's incoming edge totals."""
    incoming = view.recv_all_batch(tag="edge-counts", schema=schema)
    view.add_compute(float(incoming.num_blocks))
    return int(incoming.scalars["count"].sum())


def _tally_counts_body_scalar(view: HostView) -> int:
    """Scalar-fabric tally (compatibility path)."""
    incoming = view.recv_all(tag="edge-counts")
    view.add_compute(float(len(incoming)))
    return int(sum(
        payload[0] for _, payload in incoming if payload is not None
    ))


def run_edge_assignment(
    phase: PhaseStats,
    prop: GraphProp,
    policy: Policy,
    ranges: list[tuple[int, int]],
    masters: np.ndarray,
    fabric: str | None = None,
) -> EdgeAssignment:
    """Run edge assignment for all hosts with exact comm accounting."""
    fabric = resolve_fabric(fabric)
    rule = policy.edge_rule
    num_hosts = len(ranges)
    k = prop.getNumPartitions()
    result = EdgeAssignment(num_hosts, prop=prop, ranges=ranges)
    schema = mirror_info_schema(masters.dtype)
    estate = None
    if rule.stateful:
        try:
            estate = rule.make_state(k, num_hosts, prop.getNumNodes())
        except TypeError:
            # User rules written to the paper's two-argument signature.
            estate = rule.make_state(k, num_hosts)

    def install_assignment(h: int, start: int, stop: int):
        """Parent-side barrier callback installing one host's results.

        The edge arrays are a pure function of (graph, range) and stay
        lazy on the assignment; the grouping (when the columnar body
        built one) rides along by reference on the serial/thread paths
        and as an order-only skeleton on the process path, rehydrated
        by whoever touches it next.
        """
        def install(outcome):
            owner, counts, groups = outcome
            result.owners[h] = owner
            result.edges_to[h, :] = counts
            if groups is not None:
                result._groups[h] = groups
            return owner

        return install

    assign_body = (
        _assign_edges_body if fabric == "columnar" else _assign_edges_body_scalar
    )
    # The communicator only rides in the payload for stateful rules,
    # whose tasks go through chain() and are never pickled; stateless
    # payloads stay shippable.
    comm_arg = phase.comm if estate is not None else None

    def assign_task(h: int, start: int, stop: int) -> HostTask:
        return HostTask(
            h, assign_body, label="assign-edges",
            # repro-lint: disable-next-line=deep-unshippable-payload -- comm_arg is None unless the rule is stateful, and stateful tasks go through chain(), which never pickles
            payload=(
                rule, prop, masters, schema, estate, comm_arg,
                num_hosts, h, start, stop,
            ),
            apply=install_assignment(h, start, stop),
        )

    tasks = [assign_task(h, start, stop) for h, (start, stop) in enumerate(ranges)]
    if estate is not None:
        # Stateful rules are a *cross-host-sequential* stream: host h+1
        # scores against the estate host h just synced, so no executor
        # may legally overlap them (doing so would change the partition).
        phase.executor.chain(phase, tasks)
    else:
        phase.executor.run(phase, tasks)

    # Every host tallies what it will receive (Algorithm 3 lines 10-14).
    def install_tally(j: int):
        def install(received: int) -> int:
            result.to_receive[j] = received + result.edges_to[j, j]
            return received

        return install

    def tally_task(j: int) -> HostTask:
        if fabric == "columnar":
            return HostTask(
                j, _tally_counts_body, label="tally-counts",
                payload=schema, apply=install_tally(j),
            )
        return HostTask(
            j, _tally_counts_body_scalar, label="tally-counts",
            apply=install_tally(j),
        )

    phase.executor.run(phase, [tally_task(j) for j in range(num_hosts)])

    return result
