"""Phase 3: edge assignment (paper §IV-B3, Algorithm 3).

Each host scans the edges it read, calls ``getEdgeOwner`` on every edge
(vectorized through the rule's batch interface) and compiles, per peer:

* how many outgoing edges of each of its read nodes the peer will receive
  (a positional vector — no node ids on the wire, §IV-D2), and
* which destination proxies the peer must create as *mirrors*, with their
  master assignments (the "(Master/)Mirror Info" flow of Figure 2).

Hosts with nothing to send to a peer send a small "empty" message instead
(§IV-D2).  The computed owner array is retained for the construction
phase: the paper instead *re-evaluates* the rules there, which is
equivalent because rules are required to be deterministic (§III-A) — we
memoize rather than recompute, and charge the re-evaluation work to the
construction phase as the paper's system would incur it.

Two message fabrics are supported (``fabric=``): the default
``"columnar"`` path ships typed :class:`~repro.runtime.colfab.MessageBatch`
blocks and vectorizes the mirror-set computation through the per-host
:class:`HostGroups` cache; the ``"scalar"`` path is the original
tuple-per-message formulation, kept bit-identical as a compatibility
baseline.  Both charge the same bytes/messages/compute.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.colfab import ColumnSchema, MessageBatch, resolve_fabric
from ..runtime.executor import HostTask, HostView
from ..runtime.stats import PhaseStats
from .policies import Policy
from .prop import GraphProp

__all__ = [
    "run_edge_assignment",
    "EdgeAssignment",
    "HostGroups",
    "assignment_from_owners",
    "host_edge_slice",
]

_EMPTY_MESSAGE_BYTES = 8
_MIRROR_ENTRY_BYTES = 12  # node id + master partition


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of ``values``.

    Equivalent to ``np.unique`` but ~2x faster at phase sizes: one
    stable sort plus a boundary mask instead of NumPy's hash path.
    """
    out = np.sort(values, kind="stable")
    if out.size == 0:
        return out
    keep = np.empty(out.size, dtype=bool)
    keep[0] = True
    np.not_equal(out[1:], out[:-1], out=keep[1:])
    return out[keep]


def _mask_unique(num_nodes: int, *id_arrays: np.ndarray) -> np.ndarray:
    """Sorted distinct node ids across ``id_arrays``, by presence mask.

    For ids bounded by ``num_nodes`` this replaces sort-based dedup with
    an O(num_nodes + total ids) scatter + ``flatnonzero`` — the output
    is identical to ``np.unique(np.concatenate(id_arrays))``.
    """
    mark = np.zeros(num_nodes, dtype=bool)
    for ids in id_arrays:
        mark[ids] = True
    return np.flatnonzero(mark)


class HostGroups:
    """One host's edges grouped by owner, with per-group unique sources.

    Built from a single stable ``argsort`` of the owner array.  Because
    the host's ``src`` column is non-decreasing (it comes from the CSR
    ``indptr`` walk) and the sort is stable, ``src`` stays non-decreasing
    *within* each owner group, so the per-group sorted-unique source
    lists fall out of one O(n) boundary scan instead of a ``np.unique``
    per peer.  The same grouping serves edge assignment (mirror sets),
    allocation (endpoint sets) and construction (edge shipping), so it
    is computed once per host and cached on :class:`EdgeAssignment`.
    """

    __slots__ = (
        "order", "cuts", "src_sorted", "dst_sorted", "usrc", "usrc_cuts"
    )

    def __init__(
        self,
        owner: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        num_hosts: int,
    ):
        order = np.argsort(owner, kind="stable")
        cuts = np.searchsorted(owner[order], np.arange(num_hosts + 1))
        s = src[order]
        n = s.size
        if n:
            keep = np.empty(n, dtype=bool)
            keep[0] = True
            np.not_equal(s[1:], s[:-1], out=keep[1:])
            starts = cuts[:-1]
            keep[starts[starts < n]] = True
            usrc = s[keep]
            usrc_cuts = np.concatenate(([0], np.cumsum(keep)))[cuts]
        else:
            usrc = s
            usrc_cuts = np.zeros(num_hosts + 1, dtype=np.int64)
        self.order = order
        self.cuts = cuts
        self.src_sorted = s
        self.dst_sorted = dst[order]
        self.usrc = usrc
        self.usrc_cuts = usrc_cuts

    def group_rows(self, j: int) -> np.ndarray:
        """Row indices (into the host's edge arrays) owned by host ``j``."""
        return self.order[self.cuts[j] : self.cuts[j + 1]]

    def group_src(self, j: int) -> np.ndarray:
        """``src`` restricted to host ``j``'s group (non-decreasing)."""
        return self.src_sorted[self.cuts[j] : self.cuts[j + 1]]

    def group_dst(self, j: int) -> np.ndarray:
        """``dst`` restricted to host ``j``'s group (a zero-copy view)."""
        return self.dst_sorted[self.cuts[j] : self.cuts[j + 1]]

    def unique_src(self, j: int) -> np.ndarray:
        """Sorted distinct sources among host ``j``'s edges."""
        return self.usrc[self.usrc_cuts[j] : self.usrc_cuts[j + 1]]


class EdgeAssignment:
    """Result of the edge-assignment phase."""

    def __init__(self, num_hosts: int) -> None:
        #: Per reading host: owner partition of each of its edges
        #: (``None`` until that host's task has run).
        self.owners: list[np.ndarray | None] = [None] * num_hosts
        #: Per reading host: its (src, dst, weight) edge arrays
        #: (``None`` until that host's task has run).
        self.edges: list[
            tuple[np.ndarray, np.ndarray, np.ndarray | None] | None
        ] = [None] * num_hosts
        #: edges_to[h][j] = number of edges host h will send to host j.
        self.edges_to = np.zeros((num_hosts, num_hosts), dtype=np.int64)
        #: toReceive[j] = total edges host j expects (Algorithm 3 line 13).
        self.to_receive = np.zeros(num_hosts, dtype=np.int64)
        # Lazy per-host owner-group cache shared by phases 3-5.  The
        # assignment phase's barrier callback installs each host's
        # grouping; a cache miss inside a task recomputes the (pure,
        # deterministic) grouping without relying on the cached write
        # surviving the task — it may run in a forked worker.
        self._groups: list[HostGroups | None] = [None] * num_hosts

    def host_groups(self, h: int) -> HostGroups:
        """The owner grouping of host ``h``'s edges (computed once)."""
        groups = self._groups[h]
        if groups is None:
            owner = self.owners[h]
            edges = self.edges[h]
            if owner is None or edges is None:
                raise ValueError(f"host {h}: edge assignment not yet run")
            groups = HostGroups(
                owner, edges[0], edges[1], self.edges_to.shape[0]
            )
            # repro-lint: disable-next-line=deep-unshippable-task-capture -- recompute-on-miss cache (see class docstring): a worker-local write that is lost with the fork is recomputed identically on the next miss
            self._groups[h] = groups
        return groups

    def adopt_groups(self, other: "EdgeAssignment") -> None:
        """Carry ``other``'s group cache onto this (rebuilt) assignment.

        Used when the framework reconstructs the assignment from its
        checkpoint: the grouping is a pure function of (owners, edges),
        both of which round-trip bit-identically, so the cache computed
        by the live phase remains valid for the rebuilt object.
        """
        self._groups = list(other._groups)


def host_edge_slice(
    graph: CSRGraph, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """The (src, dst, weights) arrays a host reads for nodes [start, stop)."""
    lo, hi = int(graph.indptr[start]), int(graph.indptr[stop])
    dst = graph.indices[lo:hi]
    src = np.repeat(
        np.arange(start, stop, dtype=np.int64),
        np.diff(graph.indptr[start : stop + 1]),
    )
    weights = graph.edge_data[lo:hi] if graph.is_weighted else None
    return src, dst, weights


def assignment_from_owners(
    prop: GraphProp,
    ranges: list[tuple[int, int]],
    owners: list[np.ndarray],
) -> EdgeAssignment:
    """Rebuild the edge-assignment result from checkpointed owner arrays.

    The per-host edge arrays are a pure function of the graph and the
    read ranges, so only the owner decisions need to be persisted; this
    reconstructs the same :class:`EdgeAssignment` the live phase
    produced (used when replaying phases 4/5 from a checkpoint).
    """
    num_hosts = len(ranges)
    result = EdgeAssignment(num_hosts)
    for h, (start, stop) in enumerate(ranges):
        src, dst, weights = host_edge_slice(prop.graph, start, stop)
        owner = np.asarray(owners[h])
        if owner.size != src.size:
            raise ValueError(
                f"host {h}: checkpointed {owner.size} owners for "
                f"{src.size} edges"
            )
        result.owners[h] = owner
        result.edges[h] = (src, dst, weights)
        result.edges_to[h, :] = np.bincount(
            owner, minlength=num_hosts
        ).astype(np.int64)
    result.to_receive[:] = result.edges_to.sum(axis=0)
    return result


def mirror_info_schema(masters_dtype: np.dtype) -> ColumnSchema:
    """The edge-counts channel type: mirror (id, master) rows + a count."""
    return ColumnSchema(
        (("ids", np.dtype(np.int64)), ("masters", masters_dtype)),
        scalars=("count",),
    )


def run_edge_assignment(
    phase: PhaseStats,
    prop: GraphProp,
    policy: Policy,
    ranges: list[tuple[int, int]],
    masters: np.ndarray,
    fabric: str | None = None,
) -> EdgeAssignment:
    """Run edge assignment for all hosts with exact comm accounting."""
    fabric = resolve_fabric(fabric)
    rule = policy.edge_rule
    num_hosts = len(ranges)
    k = prop.getNumPartitions()
    graph = prop.graph
    result = EdgeAssignment(num_hosts)
    schema = mirror_info_schema(masters.dtype)
    estate = None
    if rule.stateful:
        try:
            estate = rule.make_state(k, num_hosts, prop.getNumNodes())
        except TypeError:
            # User rules written to the paper's two-argument signature.
            estate = rule.make_state(k, num_hosts)

    def assign_common(view: HostView, h: int, start: int, stop: int) -> tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray
    ]:
        """Owner evaluation + bookkeeping shared by both fabrics.

        Pure with respect to shared state: the owner/count arrays are
        returned and the task's ``apply`` callback installs them into
        ``result`` at the barrier (task-payload seam).
        """
        src, dst, _weights = host_edge_slice(graph, start, stop)
        estate_view = estate.host_view(h) if estate is not None else None
        owner = rule.owner_batch(
            prop, src, dst, masters[src], masters[dst], estate_view
        )
        counts = np.bincount(owner, minlength=num_hosts).astype(np.int64)
        # Two abstract units per edge: owner evaluation + count update.
        view.add_compute(2.0 * src.size)
        if estate is not None:
            # Periodic estate reconciliation (§IV-D4), one round per
            # host's streamed chunk, non-blocking like master rounds.
            # Safe despite living in a task body: stateful rules are
            # dispatched through chain() below, which runs hosts
            # sequentially on the main thread (no task context), so
            # this collective never executes inside a mapped task.
            # repro-lint: disable-next-line=comm-in-task,deep-comm-in-task -- chain()-only path, sequential by construction
            estate.sync_round(phase.comm, blocking=False)
        return src, dst, owner, counts

    def install_assignment(h: int, start: int, stop: int):
        """Parent-side barrier callback installing one host's results.

        The edge arrays are a pure function of (graph, range), so they
        are recomputed here instead of shipped across the process
        boundary; the grouping (when the columnar body built one) rides
        along by reference on the serial/thread paths and by pickle on
        the process path.
        """
        def install(outcome):
            owner, counts, groups = outcome
            src, dst, weights = host_edge_slice(graph, start, stop)
            result.owners[h] = owner
            result.edges[h] = (src, dst, weights)
            result.edges_to[h, :] = counts
            if groups is not None:
                result._groups[h] = groups
            return owner

        return install

    num_nodes = prop.getNumNodes()

    def assign_task(h: int, start: int, stop: int) -> HostTask:
        def body(view: HostView):
            src, dst, owner, counts = assign_common(view, h, start, stop)
            groups = HostGroups(owner, src, dst, num_hosts)
            nodes_read = stop - start
            mark = np.empty(num_nodes, dtype=bool)
            for j in range(num_hosts):
                if j == h:
                    continue
                if counts[j] == 0:
                    # Paper §IV-D2: "nothing to send" notification.
                    view.send_batch(j, MessageBatch.empty(schema),
                                    tag="edge-counts",
                                    nbytes=_EMPTY_MESSAGE_BYTES)
                    continue
                # Mirror info: destination proxies on j whose master is
                # elsewhere, plus source proxies on j whose master is
                # elsewhere.  A presence mask + flatnonzero yields the
                # scalar path's sorted-unique endpoints (minus the
                # j-mastered ones) without any per-peer sort.
                mark[:] = False
                mark[groups.unique_src(j)] = True
                mark[groups.group_dst(j)] = True
                mirror_ids = np.flatnonzero(mark & (masters != j))
                payload_bytes = (
                    nodes_read * 8 + mirror_ids.size * _MIRROR_ENTRY_BYTES
                )
                view.send_batch(
                    j,
                    MessageBatch(
                        schema,
                        (mirror_ids, masters[mirror_ids]),
                        scalars=(int(counts[j]),),
                    ),
                    tag="edge-counts",
                    nbytes=payload_bytes,
                )
            return owner, counts, groups

        return HostTask(
            h, body, label="assign-edges",
            apply=install_assignment(h, start, stop),
        )

    def assign_task_scalar(h: int, start: int, stop: int) -> HostTask:
        def body(view: HostView):
            src, dst, owner, counts = assign_common(view, h, start, stop)
            nodes_read = stop - start
            for j in range(num_hosts):
                if j == h:
                    continue
                if counts[j] == 0:
                    # Paper §IV-D2: "nothing to send" notification.
                    # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
                    view.send(j, None, tag="edge-counts",
                              nbytes=_EMPTY_MESSAGE_BYTES)
                    continue
                mask = owner == j
                # Mirror info: destination proxies on j whose master is
                # elsewhere, plus source proxies on j whose master is
                # elsewhere.
                endpoints = np.unique(np.concatenate([src[mask], dst[mask]]))
                mirror_ids = endpoints[masters[endpoints] != j]
                payload_bytes = (
                    nodes_read * 8 + mirror_ids.size * _MIRROR_ENTRY_BYTES
                )
                # repro-lint: disable-next-line=scalar-send-in-hot-loop -- scalar fabric compatibility path
                view.send(
                    j,
                    (counts[j], mirror_ids, masters[mirror_ids]),
                    tag="edge-counts",
                    nbytes=payload_bytes,
                )
            # The scalar path never groups by owner here; construction's
            # scalar tasks argsort locally, so the cache stays lazy.
            return owner, counts, None

        return HostTask(
            h, body, label="assign-edges",
            apply=install_assignment(h, start, stop),
        )

    make_assign = assign_task if fabric == "columnar" else assign_task_scalar
    tasks = [make_assign(h, start, stop) for h, (start, stop) in enumerate(ranges)]
    if estate is not None:
        # Stateful rules are a *cross-host-sequential* stream: host h+1
        # scores against the estate host h just synced, so no executor
        # may legally overlap them (doing so would change the partition).
        phase.executor.chain(phase, tasks)
    else:
        phase.executor.run(phase, tasks)

    # Every host tallies what it will receive (Algorithm 3 lines 10-14).
    def install_tally(j: int):
        def install(received: int) -> int:
            result.to_receive[j] = received + result.edges_to[j, j]
            return received

        return install

    def tally_task(j: int) -> HostTask:
        def body(view: HostView) -> int:
            incoming = view.recv_all_batch(tag="edge-counts", schema=schema)
            view.add_compute(float(incoming.num_blocks))
            return int(incoming.scalars["count"].sum())

        return HostTask(j, body, label="tally-counts", apply=install_tally(j))

    def tally_task_scalar(j: int) -> HostTask:
        def body(view: HostView) -> int:
            incoming = view.recv_all(tag="edge-counts")
            view.add_compute(float(len(incoming)))
            return int(sum(
                payload[0] for _, payload in incoming if payload is not None
            ))

        return HostTask(j, body, label="tally-counts", apply=install_tally(j))

    make_tally = tally_task if fabric == "columnar" else tally_task_scalar
    phase.executor.run(phase, [make_tally(j) for j in range(num_hosts)])

    return result
