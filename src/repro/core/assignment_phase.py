"""Phase 3: edge assignment (paper §IV-B3, Algorithm 3).

Each host scans the edges it read, calls ``getEdgeOwner`` on every edge
(vectorized through the rule's batch interface) and compiles, per peer:

* how many outgoing edges of each of its read nodes the peer will receive
  (a positional vector — no node ids on the wire, §IV-D2), and
* which destination proxies the peer must create as *mirrors*, with their
  master assignments (the "(Master/)Mirror Info" flow of Figure 2).

Hosts with nothing to send to a peer send a small "empty" message instead
(§IV-D2).  The computed owner array is retained for the construction
phase: the paper instead *re-evaluates* the rules there, which is
equivalent because rules are required to be deterministic (§III-A) — we
memoize rather than recompute, and charge the re-evaluation work to the
construction phase as the paper's system would incur it.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.executor import HostTask, HostView
from ..runtime.stats import PhaseStats
from .policies import Policy
from .prop import GraphProp

__all__ = [
    "run_edge_assignment",
    "EdgeAssignment",
    "assignment_from_owners",
    "host_edge_slice",
]

_EMPTY_MESSAGE_BYTES = 8
_MIRROR_ENTRY_BYTES = 12  # node id + master partition


class EdgeAssignment:
    """Result of the edge-assignment phase."""

    def __init__(self, num_hosts: int) -> None:
        #: Per reading host: owner partition of each of its edges
        #: (``None`` until that host's task has run).
        self.owners: list[np.ndarray | None] = [None] * num_hosts
        #: Per reading host: its (src, dst, weight) edge arrays
        #: (``None`` until that host's task has run).
        self.edges: list[
            tuple[np.ndarray, np.ndarray, np.ndarray | None] | None
        ] = [None] * num_hosts
        #: edges_to[h][j] = number of edges host h will send to host j.
        self.edges_to = np.zeros((num_hosts, num_hosts), dtype=np.int64)
        #: toReceive[j] = total edges host j expects (Algorithm 3 line 13).
        self.to_receive = np.zeros(num_hosts, dtype=np.int64)


def host_edge_slice(
    graph: CSRGraph, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """The (src, dst, weights) arrays a host reads for nodes [start, stop)."""
    lo, hi = int(graph.indptr[start]), int(graph.indptr[stop])
    dst = graph.indices[lo:hi]
    src = np.repeat(
        np.arange(start, stop, dtype=np.int64),
        np.diff(graph.indptr[start : stop + 1]),
    )
    weights = graph.edge_data[lo:hi] if graph.is_weighted else None
    return src, dst, weights


def assignment_from_owners(
    prop: GraphProp,
    ranges: list[tuple[int, int]],
    owners: list[np.ndarray],
) -> EdgeAssignment:
    """Rebuild the edge-assignment result from checkpointed owner arrays.

    The per-host edge arrays are a pure function of the graph and the
    read ranges, so only the owner decisions need to be persisted; this
    reconstructs the same :class:`EdgeAssignment` the live phase
    produced (used when replaying phases 4/5 from a checkpoint).
    """
    num_hosts = len(ranges)
    result = EdgeAssignment(num_hosts)
    for h, (start, stop) in enumerate(ranges):
        src, dst, weights = host_edge_slice(prop.graph, start, stop)
        owner = np.asarray(owners[h])
        if owner.size != src.size:
            raise ValueError(
                f"host {h}: checkpointed {owner.size} owners for "
                f"{src.size} edges"
            )
        result.owners[h] = owner
        result.edges[h] = (src, dst, weights)
        result.edges_to[h, :] = np.bincount(
            owner, minlength=num_hosts
        ).astype(np.int64)
    result.to_receive[:] = result.edges_to.sum(axis=0)
    return result


def run_edge_assignment(
    phase: PhaseStats,
    prop: GraphProp,
    policy: Policy,
    ranges: list[tuple[int, int]],
    masters: np.ndarray,
) -> EdgeAssignment:
    """Run edge assignment for all hosts with exact comm accounting."""
    rule = policy.edge_rule
    num_hosts = len(ranges)
    k = prop.getNumPartitions()
    graph = prop.graph
    result = EdgeAssignment(num_hosts)
    estate = None
    if rule.stateful:
        try:
            estate = rule.make_state(k, num_hosts, prop.getNumNodes())
        except TypeError:
            # User rules written to the paper's two-argument signature.
            estate = rule.make_state(k, num_hosts)

    def assign_task(h: int, start: int, stop: int) -> HostTask:
        def body(view: HostView) -> None:
            src, dst, weights = host_edge_slice(graph, start, stop)
            estate_view = estate.host_view(h) if estate is not None else None
            owner = rule.owner_batch(
                prop, src, dst, masters[src], masters[dst], estate_view
            )
            result.owners[h] = owner
            result.edges[h] = (src, dst, weights)
            counts = np.bincount(owner, minlength=num_hosts).astype(np.int64)
            result.edges_to[h, :] = counts
            # Two abstract units per edge: owner evaluation + count update.
            view.add_compute(2.0 * src.size)
            if estate is not None:
                # Periodic estate reconciliation (§IV-D4), one round per
                # host's streamed chunk, non-blocking like master rounds.
                # Safe despite living in a task body: stateful rules are
                # dispatched through chain() below, which runs hosts
                # sequentially on the main thread (no task context), so
                # this collective never executes inside a mapped task.
                # repro-lint: disable-next-line=comm-in-task -- chain()-only path, sequential by construction
                estate.sync_round(phase.comm, blocking=False)

            nodes_read = stop - start
            for j in range(num_hosts):
                if j == h:
                    continue
                if counts[j] == 0:
                    # Paper §IV-D2: "nothing to send" notification.
                    view.send(j, None, tag="edge-counts",
                              nbytes=_EMPTY_MESSAGE_BYTES)
                    continue
                mask = owner == j
                # Mirror info: destination proxies on j whose master is
                # elsewhere, plus source proxies on j whose master is
                # elsewhere.
                endpoints = np.unique(np.concatenate([src[mask], dst[mask]]))
                mirror_ids = endpoints[masters[endpoints] != j]
                payload_bytes = (
                    nodes_read * 8 + mirror_ids.size * _MIRROR_ENTRY_BYTES
                )
                view.send(
                    j,
                    (counts[j], mirror_ids, masters[mirror_ids]),
                    tag="edge-counts",
                    nbytes=payload_bytes,
                )

        return HostTask(h, body, label="assign-edges")

    tasks = [assign_task(h, start, stop) for h, (start, stop) in enumerate(ranges)]
    if estate is not None:
        # Stateful rules are a *cross-host-sequential* stream: host h+1
        # scores against the estate host h just synced, so no executor
        # may legally overlap them (doing so would change the partition).
        phase.executor.chain(phase, tasks)
    else:
        phase.executor.run(phase, tasks)

    # Every host tallies what it will receive (Algorithm 3 lines 10-14).
    def tally_task(j: int) -> HostTask:
        def body(view: HostView) -> None:
            incoming = view.recv_all(tag="edge-counts")
            received = sum(
                payload[0] for _, payload in incoming if payload is not None
            )
            result.to_receive[j] = received + result.edges_to[j, j]
            view.add_compute(float(len(incoming)))

        return HostTask(j, body, label="tally-counts")

    phase.executor.run(phase, [tally_task(j) for j in range(num_hosts)])

    return result
