"""CuSP core: the customizable streaming edge partitioning framework."""

from .edge_rules import (
    CartesianRule,
    CheckerboardRule,
    JaggedRule,
    DegreeHashRule,
    DestRule,
    EDGE_RULES,
    EdgeRule,
    HybridRule,
    SourceRule,
    grid_shape,
    make_edge_rule,
)
from .contracts import PHASE_CONTRACTS, contract_context_for
from .framework import PHASE_NAMES, CuSP
from .partition_io import (
    CheckpointCorruptionError,
    PartitionCheckpoint,
    load_partitions,
    save_partitions,
)
from .window import WindowedPartitioner
from .master_rules import (
    LDG,
    Contiguous,
    ContiguousEB,
    Fennel,
    FennelEB,
    MASTER_RULES,
    MasterRule,
    make_master_rule,
)
from .partition import DistributedGraph, LocalPartition
from .policies import PAPER_POLICIES, POLICY_TABLE, Policy, make_policy, policy_names
from .prop import GraphProp
from .reading import (
    compute_read_ranges,
    read_bytes_for_range,
    read_bytes_for_ranges,
)
from .state import PartitioningState, PartitionLoadState, VoidState
from .streaming_rules import GreedyVertexCut, HDRFRule, ReplicationState
from .validate import ValidationReport, check_csr, check_partition

__all__ = [
    "CuSP",
    "PHASE_NAMES",
    "PHASE_CONTRACTS",
    "contract_context_for",
    "WindowedPartitioner",
    "save_partitions",
    "load_partitions",
    "Policy",
    "make_policy",
    "policy_names",
    "PAPER_POLICIES",
    "POLICY_TABLE",
    "GraphProp",
    "MasterRule",
    "Contiguous",
    "ContiguousEB",
    "Fennel",
    "FennelEB",
    "MASTER_RULES",
    "make_master_rule",
    "EdgeRule",
    "SourceRule",
    "DestRule",
    "HybridRule",
    "CartesianRule",
    "CheckerboardRule",
    "JaggedRule",
    "LDG",
    "DegreeHashRule",
    "EDGE_RULES",
    "make_edge_rule",
    "grid_shape",
    "DistributedGraph",
    "LocalPartition",
    "PartitioningState",
    "PartitionLoadState",
    "VoidState",
    "GreedyVertexCut",
    "HDRFRule",
    "ReplicationState",
    "compute_read_ranges",
    "read_bytes_for_range",
    "read_bytes_for_ranges",
    "PartitionCheckpoint",
    "CheckpointCorruptionError",
    "ValidationReport",
    "check_csr",
    "check_partition",
]
