"""The ``prop`` structure queried by partitioning rules (paper §III-A).

A :class:`GraphProp` exposes the static properties of the input graph that
user-defined ``getMaster`` / ``getEdgeOwner`` functions may query: number
of nodes, edges, and partitions, a node's out-degree and out-neighbors,
and the global id of a node's first outgoing edge.  The paper's examples
(Algorithms 1 and 2) use exactly this interface.

In the real system every host materializes these properties for the nodes
whose edges it read from disk; here the backing arrays are shared
read-only (they model the on-disk CSR image), and access still goes
through the interface so rules remain oblivious to the simulation.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["GraphProp"]


class GraphProp:
    """Static graph properties available to partitioning rules."""

    def __init__(self, graph: CSRGraph, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self._graph = graph
        self._num_partitions = int(num_partitions)

    # Paper-named accessors -------------------------------------------------
    def getNumNodes(self) -> int:
        return self._graph.num_nodes

    def getNumEdges(self) -> int:
        return self._graph.num_edges

    def getNumPartitions(self) -> int:
        return self._num_partitions

    def getNodeOutDegree(self, node_id: int) -> int:
        return int(self._graph.indptr[node_id + 1] - self._graph.indptr[node_id])

    def getNodeOutNeighbors(self, node_id: int) -> np.ndarray:
        return self._graph.neighbors(node_id)

    def getNodeOutEdge(self, node_id: int, k: int) -> int:
        """Global edge id of the ``k``-th outgoing edge of ``node_id``."""
        base = int(self._graph.indptr[node_id])
        if k >= self.getNodeOutDegree(node_id) and not (
            k == 0 and self.getNodeOutDegree(node_id) == 0
        ):
            raise IndexError(f"node {node_id} has no out-edge {k}")
        return base + k

    # Vectorized accessors (framework internals) ----------------------------
    def out_degrees(self, node_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(node_ids)
        return self._graph.indptr[ids + 1] - self._graph.indptr[ids]

    def first_out_edges(self, node_ids: np.ndarray) -> np.ndarray:
        """Global id of the first out-edge of each node (== indptr value).

        For nodes with no outgoing edges this is still well-defined (the
        position where their edges would start), matching the paper's
        ContiguousEB which calls ``getNodeOutEdge(nodeid, 0)``.
        """
        return self._graph.indptr[np.asarray(node_ids)]

    @property
    def graph(self) -> CSRGraph:
        return self._graph
